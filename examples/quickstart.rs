//! Quickstart: build a hierarchical system, describe a multi-join query,
//! execute it under all three strategies and print the reports.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use hierdb::{AdHocQuery, ExecutionReport, HierarchicalSystem, Strategy};

fn print_report(label: &str, r: &ExecutionReport) {
    println!(
        "{label:<4} response={:>10}  utilization={:>5.1}%  messages={:>6}  net={:>8} KiB  lb={:>6} KiB",
        format!("{}", r.response_time),
        r.utilization * 100.0,
        r.messages,
        r.network_bytes / 1024,
        r.lb_bytes / 1024,
    );
}

fn main() {
    // A decision-support style star-ish join: one fact table, three
    // dimensions plus a bridge table, on a 2-node x 8-processor cluster.
    let system = HierarchicalSystem::builder()
        .nodes(2)
        .processors_per_node(8)
        .build();

    let query = AdHocQuery::new("sales_analysis")
        .relation("sales", 200_000)
        .relation("products", 20_000)
        .relation("stores", 2_000)
        .relation("customers", 50_000)
        .relation("regions", 500)
        .join("sales", "products")
        .join("sales", "stores")
        .join("sales", "customers")
        .join("stores", "regions")
        .keep_best(2);

    println!("== hierdb quickstart ==");
    println!(
        "machine: {} SM-nodes x {} processors ({} total), 40 MIPS each\n",
        system.nodes(),
        system.processors_per_node(),
        system.total_processors()
    );

    let plans = query.compile(&system).expect("query compiles");
    println!("optimizer produced {} bushy plan(s)", plans.len());
    for (i, plan) in plans.iter().enumerate() {
        println!(
            "  plan {i}: {} operators, {} pipeline chains, estimated result {} tuples",
            plan.tree.operators().len(),
            plan.chains().len(),
            plan.tree.result_tuples()
        );
    }
    println!();

    let plan = &plans[0];

    // Dynamic Processing (the paper's model) vs Fixed Processing on the
    // hierarchical machine.
    let dp = system.run(plan, Strategy::dynamic()).expect("DP runs");
    let fp = system.run(plan, Strategy::fixed(0.0)).expect("FP runs");
    print_report("DP", &dp);
    print_report("FP", &fp);

    // Synchronous Pipelining needs shared memory: compare on a single node
    // with the same total number of processors.
    let sm = HierarchicalSystem::shared_memory(system.total_processors());
    let sm_plans = query
        .compile(&sm)
        .expect("query compiles for shared memory");
    let sp = sm
        .run(&sm_plans[0], Strategy::synchronous())
        .expect("SP runs");
    let dp_sm = sm.run(&sm_plans[0], Strategy::dynamic()).expect("DP runs");
    println!(
        "\nshared-memory reference ({} processors):",
        sm.total_processors()
    );
    print_report("SP", &sp);
    print_report("DP", &dp_sm);

    println!(
        "\nDP vs FP on the hierarchical machine: {:.2}x",
        fp.response_secs() / dp.response_secs()
    );
    println!(
        "DP overhead vs SP in shared memory:    {:.2}x",
        dp_sm.response_secs() / sp.response_secs()
    );
}
