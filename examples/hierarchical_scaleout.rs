//! Hierarchical scale-out: DP versus FP across cluster shapes.
//!
//! Mirrors the paper's Figure 10: the same skewed workload is executed on
//! 4-node clusters with 8, 12 and 16 processors per node, comparing Dynamic
//! Processing with Fixed Processing and reporting the volume of data shipped
//! by global load balancing.
//!
//! Run with:
//! ```text
//! cargo run --release --example hierarchical_scaleout
//! ```

use hierdb::{
    relative_performance, Experiment, HierarchicalSystem, Strategy, Summary, WorkloadParams,
};

fn main() {
    let skew = 0.6;
    let workload = WorkloadParams {
        queries: 3,
        relations_per_query: 8,
        scale: 0.02,
        ..WorkloadParams::default()
    };

    println!("== DP vs FP on hierarchical configurations (skew {skew}) ==");
    println!(
        "{:>8}  {:>10}  {:>14}  {:>14}  {:>12}",
        "config", "FP/DP", "DP lb bytes", "FP lb bytes", "DP idle"
    );

    for &procs in &[8u32, 12, 16] {
        let system = HierarchicalSystem::hierarchical(4, procs).with_skew(skew);
        let experiment = Experiment::builder()
            .system(system)
            .workload(workload)
            .build()
            .expect("workload compiles");

        let dp = experiment.run(Strategy::dynamic()).expect("DP runs");
        let fp = experiment.run(Strategy::fixed(0.0)).expect("FP runs");

        let ratio = relative_performance(&fp, &dp);
        let dp_summary = Summary::from_runs(&dp);
        let fp_summary = Summary::from_runs(&fp);

        println!(
            "{:>8}  {:>10.3}  {:>12} K  {:>12} K  {:>11.1}%",
            format!("4x{procs}"),
            ratio,
            dp_summary.total_lb_bytes / 1024,
            fp_summary.total_lb_bytes / 1024,
            dp_summary.mean_idle_fraction * 100.0,
        );
    }

    println!(
        "\nExpected shape (paper §5.3): FP is 14-39% slower than DP, ships 2-4x more data\n\
         for global load balancing, and leaves processors idle while DP does not."
    );
}
