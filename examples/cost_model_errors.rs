//! Cost-model error study: how estimation errors hurt Fixed Processing.
//!
//! Mirrors the paper's Figure 7: Fixed Processing allocates processors to
//! operators using cost estimates; this example distorts the cardinality
//! estimates by an increasing error rate and reports the degradation, while
//! Dynamic Processing (which ignores the estimates at run time) stays flat.
//!
//! Run with:
//! ```text
//! cargo run --release --example cost_model_errors
//! ```

use hierdb::{relative_performance, Experiment, HierarchicalSystem, Strategy, WorkloadParams};

fn main() {
    let processors = 16;
    let system = HierarchicalSystem::shared_memory(processors);
    let workload = WorkloadParams {
        queries: 3,
        relations_per_query: 8,
        scale: 0.02,
        ..WorkloadParams::default()
    };
    let experiment = Experiment::builder()
        .system(system)
        .workload(workload)
        .build()
        .expect("workload compiles");

    let reference = experiment.run(Strategy::fixed(0.0)).expect("exact FP runs");
    let dp = experiment.run(Strategy::dynamic()).expect("DP runs");

    println!("== impact of cost-model errors on FP ({processors} processors) ==");
    println!("{:>10}  {:>20}", "error", "FP degradation");
    for &rate in &[0.0, 0.05, 0.10, 0.20, 0.30] {
        let runs = experiment.run(Strategy::fixed(rate)).expect("FP runs");
        let degradation = relative_performance(&runs, &reference);
        println!("{:>9.0}%  {degradation:>20.3}", rate * 100.0);
    }

    println!(
        "\nDP does not rely on the estimates at all; its response time relative to exact FP is {:.3}.",
        relative_performance(&dp, &reference)
    );
    println!(
        "The paper's conclusion: static (fixed) allocation degrades significantly as the error\n\
         rate grows, which motivates dynamic load balancing."
    );
}
