//! Skew study: how redistribution skew affects Dynamic Processing.
//!
//! Reproduces the spirit of the paper's Figure 9 on a user-defined workload:
//! the same plans are executed with increasing Zipf skew factors and the
//! response time degradation relative to the unskewed run is printed.
//!
//! Run with:
//! ```text
//! cargo run --release --example skew_study
//! ```

use hierdb::{relative_performance, Experiment, HierarchicalSystem, Strategy, WorkloadParams};

fn main() {
    let processors = 16;
    let base_system = HierarchicalSystem::shared_memory(processors);
    let workload = WorkloadParams {
        queries: 4,
        relations_per_query: 8,
        scale: 0.02,
        ..WorkloadParams::default()
    };

    let experiment = Experiment::builder()
        .system(base_system.clone())
        .workload(workload)
        .build()
        .expect("workload compiles");

    println!("== impact of redistribution skew on DP ({processors} processors) ==");
    println!(
        "{:>6}  {:>22}  {:>12}",
        "skew", "relative degradation", "mean resp"
    );

    let reference = experiment.run(Strategy::dynamic()).expect("baseline runs");

    for &skew in &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let skewed_system = base_system.clone().with_skew(skew);
        let skewed = experiment.on_system(skewed_system);
        let runs = skewed.run(Strategy::dynamic()).expect("skewed run");
        let degradation = relative_performance(&runs, &reference);
        let mean_resp: f64 =
            runs.iter().map(|r| r.report.response_secs()).sum::<f64>() / runs.len() as f64;
        println!("{skew:>6.1}  {degradation:>22.3}  {mean_resp:>10.2}s");
    }

    println!(
        "\nThe paper's finding: the impact of redistribution skew on DP is insignificant\n\
         (a few percent at most), because any thread can consume any queue of its node."
    );
}
