//! Differential pinning of the pluggable-strategy refactor (the `Policy`
//! trait + zoo PR):
//!
//! * **thread-count determinism** — every bundled spec (closed, mix and
//!   open, including the new `strategy-tournament`) renders byte-identically
//!   at 1 and 4 harness threads in every emission format. The sweep fan-out
//!   is the only parallelism; the engine event loop stays sequential and
//!   seeded, whatever policy drives its balancing decisions.
//! * **tuple conservation** — every registered queue-based policy processes
//!   exactly the same tuples on randomized workloads: balancing moves work
//!   between nodes (steal pulls, Threshold pushes), it never drops or
//!   duplicates it.
//!
//! Lives in its own test binary: `hierdb::set_threads` reconfigures a global
//! pool, and the plain determinism suite asserts its own thread counts.

use hierdb::scenario;
use hierdb::{AdHocQuery, HierarchicalSystem, Strategy};
use proptest::prelude::*;

/// Every bundled scenario — the three paper strategies and the related-work
/// policies alike — renders byte-identically at 1 and 4 harness threads.
/// This is the old DP/FP/SP determinism diff, generalized: it now covers
/// every policy the registry's specs reference, so a policy whose hooks
/// leaked nondeterminism (an unseeded choice, an iteration-order dependence)
/// fails here by name.
#[test]
fn every_bundled_spec_renders_identically_at_1_and_4_threads() {
    for name in scenario::names() {
        let spec = scenario::find(&name)
            .expect("bundled spec")
            .with_generated_workload(2, 5, 0.01, 0xD1B_1996);
        assert!(hierdb::set_threads(1), "rayon shim reconfigures");
        let single = scenario::run_scenario(&spec).unwrap();
        assert!(hierdb::set_threads(4));
        let quad = scenario::run_scenario(&spec).unwrap();
        for (fmt, a, b) in [
            (
                "text",
                scenario::render_text(&single),
                scenario::render_text(&quad),
            ),
            (
                "json",
                scenario::render_json(&single),
                scenario::render_json(&quad),
            ),
            (
                "csv",
                scenario::render_csv(&single),
                scenario::render_csv(&quad),
            ),
        ] {
            assert_eq!(a, b, "{name} {fmt} rendering depends on thread count");
        }
    }
}

/// The registered queue-based policies, at their default parameters.
fn queue_based_zoo() -> Vec<Strategy> {
    hierdb::policies()
        .iter()
        .filter(|p| p.queue_based())
        .map(|p| Strategy::from_name(p.name()).expect("registered name resolves"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tuple conservation across the zoo: on a randomized join query and
    /// machine shape, every registered queue-based policy processes exactly
    /// the same number of tuples and produces exactly the same result
    /// cardinality as DP. Balancing relocates activations; a policy that
    /// dropped a queue on a steal, double-shipped a push, or starved an
    /// operator to a hang would break the equality (or the run itself).
    #[test]
    fn every_queue_based_policy_conserves_tuples_on_random_workloads(
        nodes in 2u32..5,
        procs in 2u32..5,
        build in 5_000u64..20_000,
        probe in 20_000u64..60_000,
        skew in 0.0f64..1.0,
    ) {
        let system = HierarchicalSystem::builder()
            .nodes(nodes)
            .processors_per_node(procs)
            .build()
            .with_skew(skew);
        let query = AdHocQuery::new("conserve")
            .relation("a", build)
            .relation("b", probe)
            .relation("c", probe / 2)
            .join("a", "b")
            .join("b", "c");
        let plans = query.compile(&system).expect("query compiles");
        let baseline = system
            .run(&plans[0], Strategy::dynamic())
            .expect("DP runs");
        prop_assert!(baseline.tuples_processed > 0);
        for strategy in queue_based_zoo() {
            let report = system
                .run(&plans[0], strategy)
                .unwrap_or_else(|e| panic!("{} failed: {e}", strategy.label()));
            prop_assert!(
                report.tuples_processed == baseline.tuples_processed,
                "{} lost or invented tuples ({} vs {})",
                strategy.label(),
                report.tuples_processed,
                baseline.tuples_processed
            );
            prop_assert!(
                report.result_tuples == baseline.result_tuples,
                "{} changed the result cardinality ({} vs {})",
                strategy.label(),
                report.result_tuples,
                baseline.result_tuples
            );
            prop_assert!(report.response_time.as_secs_f64() > 0.0);
        }
    }
}
