//! Integration coverage of the declarative scenario API:
//!
//! * **golden tests** — each bundled figure spec, run through
//!   `run_scenario` + `render_text`, reproduces output byte-identical to the
//!   pre-scenario figure binaries (captured in `tests/golden/` with
//!   `HIERDB_QUERIES=2 HIERDB_RELATIONS=5 HIERDB_SCALE=0.01`),
//! * **serde round-trips** — every bundled spec and a hand-written partial
//!   spec survive `to_json` / `from_json` unchanged,
//! * **cross-system run cache** — systems differing only in fields the old
//!   per-experiment `RunKey` ignored (steal tuning, execution seed) never
//!   share cache entries, while identical configurations do,
//! * **spec files** — the shipped example specs exercise axis combinations
//!   no bundled figure covers (a node-count sweep, a concurrent-queries mix
//!   sweep),
//! * **mix scenarios** — the bundled `mix-contention` / `mix-memory`
//!   specs are golden-pinned, their schedules surface in JSON/CSV, and
//!   unsupported axis/workload combinations fail with `DlbError`s instead
//!   of panicking (the `--export` regression of this PR),
//! * **open scenarios** — the bundled `open-poisson` / `open-burst` arrival
//!   streams are golden-pinned and their latency percentiles surface in
//!   every emission format,
//! * **front-end scenarios** — the bundled `open-cache` / `open-cache-skew`
//!   specs pin the single-flight + result-cache layer: goldens, the
//!   hit-ratio/effective-QPS acceptance bars, and the `classes > 1` gating
//!   of the per-class JSON fields (see also `tests/frontend_differential.rs`
//!   for the bit-identical inert-path harness).

use hierdb::scenario::{self, Axis, ScenarioSpec, WorkloadSpec};
use hierdb::{ExecOptions, Experiment, HierarchicalSystem, MixPolicy, Strategy, WorkloadParams};
use std::sync::Arc;

/// The workload the golden files were captured with (see the capture recipe
/// in `EXPERIMENTS.md`).
fn golden(spec: ScenarioSpec) -> ScenarioSpec {
    spec.with_generated_workload(2, 5, 0.01, 0xD1B_1996)
}

fn rendered(name: &str) -> String {
    let spec = golden(scenario::find(name).expect("bundled spec"));
    let report = scenario::run_scenario(&spec).expect("scenario runs");
    scenario::render_text(&report)
}

/// Compares `actual` against the pinned capture of `tests/golden/<file>`.
///
/// Run `UPDATE_GOLDENS=1 cargo test --test scenario_api` to regenerate every
/// golden file in place instead of hand-copying output — the blessing pass
/// rewrites the file and passes; rerun without the variable to verify.
fn assert_golden(file: &str, actual: &str, pinned: &str) {
    if std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(file);
        std::fs::write(&path, actual)
            .unwrap_or_else(|e| panic!("cannot bless {}: {e}", path.display()));
        if actual != pinned {
            eprintln!("blessed {} (content changed)", path.display());
        }
        return;
    }
    assert_eq!(
        actual, pinned,
        "tests/golden/{file} drifted; regenerate with \
         UPDATE_GOLDENS=1 cargo test --test scenario_api"
    );
}

#[test]
fn fig6_spec_reproduces_the_pre_refactor_binary_output() {
    assert_golden(
        "fig6.txt",
        &rendered("fig6"),
        include_str!("golden/fig6.txt"),
    );
}

#[test]
fn fig7_spec_reproduces_the_pre_refactor_binary_output() {
    assert_golden(
        "fig7.txt",
        &rendered("fig7"),
        include_str!("golden/fig7.txt"),
    );
}

#[test]
fn fig8_spec_reproduces_the_pre_refactor_binary_output() {
    assert_golden(
        "fig8.txt",
        &rendered("fig8"),
        include_str!("golden/fig8.txt"),
    );
}

#[test]
fn fig9_spec_reproduces_the_pre_refactor_binary_output() {
    assert_golden(
        "fig9.txt",
        &rendered("fig9"),
        include_str!("golden/fig9.txt"),
    );
}

#[test]
fn fig10_and_chain_specs_reproduce_the_pre_refactor_binary_output() {
    // The pre-refactor fig10 binary printed Figure 10 followed by a blank
    // line and the §5.3 chain experiment.
    let combined = format!("{}\n{}", rendered("fig10"), rendered("chain53"));
    assert_golden("fig10.txt", &combined, include_str!("golden/fig10.txt"));
}

#[test]
fn mix_contention_spec_matches_its_golden_capture() {
    assert_golden(
        "mix_contention.txt",
        &rendered("mix-contention"),
        include_str!("golden/mix_contention.txt"),
    );
}

#[test]
fn mix_memory_spec_matches_its_golden_capture() {
    assert_golden(
        "mix_memory.txt",
        &rendered("mix-memory"),
        include_str!("golden/mix_memory.txt"),
    );
}

#[test]
fn mix_cosim_spec_matches_its_golden_capture() {
    assert_golden(
        "mix_cosim.txt",
        &rendered("mix-cosim"),
        include_str!("golden/mix_cosim.txt"),
    );
}

#[test]
fn mix_cosim_placement_spec_matches_its_golden_capture() {
    assert_golden(
        "mix_cosim_placement.txt",
        &rendered("mix-cosim-placement"),
        include_str!("golden/mix_cosim_placement.txt"),
    );
}

#[test]
fn mix_cosim_memory_spec_matches_its_golden_capture() {
    assert_golden(
        "mix_cosim_memory.txt",
        &rendered("mix-cosim-memory"),
        include_str!("golden/mix_cosim_memory.txt"),
    );
}

#[test]
fn mix_failover_spec_matches_its_golden_capture() {
    assert_golden(
        "mix_failover.txt",
        &rendered("mix-failover"),
        include_str!("golden/mix_failover.txt"),
    );
}

#[test]
fn mix_failover_frac_spec_matches_its_golden_capture() {
    assert_golden(
        "mix_failover_frac.txt",
        &rendered("mix-failover-frac"),
        include_str!("golden/mix_failover_frac.txt"),
    );
}

#[test]
fn open_poisson_spec_matches_its_golden_capture() {
    assert_golden(
        "open_poisson.txt",
        &rendered("open-poisson"),
        include_str!("golden/open_poisson.txt"),
    );
}

#[test]
fn open_burst_spec_matches_its_golden_capture() {
    assert_golden(
        "open_burst.txt",
        &rendered("open-burst"),
        include_str!("golden/open_burst.txt"),
    );
}

/// Open-system cells surface in every emission: percentile columns in the
/// text table, latency summaries in JSON, trailing open columns in CSV —
/// while closed-workload renderings stay free of them.
#[test]
fn open_reports_emit_latency_percentiles_in_every_format() {
    let spec = golden(scenario::find("open-poisson").unwrap());
    let report = scenario::run_scenario(&spec).unwrap();
    for point in &report.points {
        for cell in &point.cells {
            let open = cell.open.as_ref().expect("open cells carry a report");
            assert_eq!(open.completed, 120, "every generated arrival retires");
            assert!(open.peak_live <= 4, "live state bounded by concurrency");
            assert!(cell.value.is_finite() && cell.value > 0.0);
            let summary = open
                .response_summary()
                .expect("completed arrivals recorded responses");
            assert!(summary.p50 <= summary.p95 && summary.p95 <= summary.p99);
            // Percentiles are bucket midpoints, within √growth (1.02) of the
            // exact order statistic — the estimate may just overshoot max.
            assert!(summary.p99 <= summary.max * 1.02);
        }
    }
    // Text: percentile and throughput columns plus the open banner.
    let text = scenario::render_text(&report);
    for col in ["p50 s", "p95 s", "p99 s", "wait s", "slow", "qps"] {
        assert!(text.contains(col), "missing open column {col:?}:\n{text}");
    }
    assert!(text.contains("workload: open poisson arrivals"));
    // JSON: latency summaries and throughput per cell.
    let json = scenario::render_json(&report);
    let doc = hierdb::raw::common::Json::parse(&json).unwrap();
    let points = doc.get("points").unwrap().as_array().unwrap();
    assert_eq!(points.len(), 3 * 2, "3 arrival rates x 2 strategies");
    for p in points {
        assert_eq!(p.get("open_completed").unwrap().as_u64(), Some(120));
        assert!(p.get("open_throughput_qps").unwrap().as_f64().unwrap() > 0.0);
        let resp = p.get("open_response").unwrap();
        assert_eq!(resp.get("count").unwrap().as_u64(), Some(120));
        for key in ["mean_secs", "p50_secs", "p95_secs", "p99_secs", "max_secs"] {
            assert!(resp.get(key).unwrap().as_f64().unwrap() > 0.0);
        }
    }
    // CSV: the trailing open columns, filled on every line.
    let csv = scenario::render_csv(&report);
    assert!(csv
        .lines()
        .next()
        .unwrap()
        .ends_with("open_mean_wait_secs,open_mean_slowdown"));
    assert!(csv.lines().nth(1).unwrap().contains(",120,"));
    // Closed scenarios keep their historical header.
    let plain = scenario::render_csv(
        &scenario::run_scenario(&golden(scenario::find("fig9").unwrap())).unwrap(),
    );
    assert!(plain
        .lines()
        .next()
        .unwrap()
        .ends_with("mix_vs_composed_response"));
}

#[test]
fn failover_reports_carry_degradation_accounting_and_split_dp_from_fp() {
    // The acceptance scenario: a node dies mid-mix, the run completes, and
    // the report carries rebalance cost plus response inflation per query,
    // with DP and FP degrading differently.
    let spec = golden(scenario::find("mix-failover").expect("bundled spec"));
    let report = scenario::run_scenario(&spec).expect("failover scenario completes");
    let text = scenario::render_text(&report);
    for col in ["vs clean", "rebal KB", "redone"] {
        assert!(text.contains(col), "missing fault column {col:?}:\n{text}");
    }
    let json = scenario::render_json(&report);
    for key in [
        "\"fault_stats\"",
        "\"rebalance_bytes\"",
        "\"mix_vs_fault_free_response\"",
        "\"mix_query_response_inflation\"",
    ] {
        assert!(json.contains(key), "missing JSON key {key}:\n{json}");
    }
    let csv = scenario::render_csv(&report);
    let header = csv.lines().next().unwrap();
    assert!(
        header.ends_with(
            "mix_vs_fault_free_response,fault_rebalance_bytes,\
             fault_tuples_lost,fault_tuples_redone"
        ),
        "faulted CSV header misses the fault suffix: {header}"
    );
    // DP re-homes and resumes where FP's rigid placements force restarts, so
    // the two strategies must not degrade identically: at some swept failure
    // time their faulted schedules (and hence inflation vs the clean run)
    // diverge.
    let mut divergent = false;
    for point in &report.points {
        assert_eq!(point.cells.len(), 2, "DP and FP cells expected");
        let (dp, fp) = (&point.cells[0], &point.cells[1]);
        assert!(
            dp.faults.is_some() && fp.faults.is_some(),
            "faulted cells must carry fault stats"
        );
        assert!(
            dp.mix_fault_free.is_some() && fp.mix_fault_free.is_some(),
            "faulted cells must carry the clean baseline"
        );
        let (Some(dm), Some(fm)) = (&dp.mix, &fp.mix) else {
            panic!("co-simulated mix cells must carry schedules");
        };
        if (dm.mean_response_secs - fm.mean_response_secs).abs() > 1e-9 {
            divergent = true;
        }
    }
    assert!(divergent, "DP and FP degraded identically under failover");
}

#[test]
fn strategy_tournament_spec_matches_its_golden_capture() {
    assert_golden(
        "strategy_tournament.txt",
        &rendered("strategy-tournament"),
        include_str!("golden/strategy_tournament.txt"),
    );
}

/// The tournament is registry-driven: every queue-based policy of the zoo
/// appears in it (SP cannot — it only defines itself on one shared-memory
/// node), its column labels are unique (the `FP@0.2` disambiguation), and DP
/// is the reference column pinned at 1.0.
#[test]
fn strategy_tournament_covers_the_registered_zoo_with_unique_labels() {
    let spec = scenario::find("strategy-tournament").expect("bundled spec");
    for policy in hierdb::policies() {
        assert_eq!(
            spec.strategies.iter().any(|s| s.name() == policy.name()),
            policy.queue_based(),
            "policy {} missing from (or illegal in) the tournament",
            policy.name()
        );
    }
    let mut labels: Vec<String> = spec.strategies.iter().map(|s| s.label()).collect();
    labels.sort();
    let before = labels.len();
    labels.dedup();
    assert_eq!(labels.len(), before, "tournament column labels collide");

    let report = scenario::run_scenario(&golden(spec)).expect("tournament runs");
    for point in &report.points {
        assert_eq!(point.cells.len(), 6);
        assert!(
            (point.cells[0].value - 1.0).abs() < 1e-12,
            "DP is the reference column"
        );
        for cell in &point.cells {
            assert!(cell.value.is_finite() && cell.value > 0.0);
        }
    }
}

#[test]
fn params_table_reproduces_the_pre_refactor_binary_output() {
    assert_golden(
        "fig_params.txt",
        &dlb_bench::params_table(),
        include_str!("golden/fig_params.txt"),
    );
}

#[test]
fn bundled_specs_round_trip_through_json() {
    for spec in scenario::registry() {
        let text = spec.to_json();
        let back = ScenarioSpec::from_json(&text)
            .unwrap_or_else(|e| panic!("{} failed to reparse: {e}", spec.name));
        assert_eq!(back, spec, "{} did not round-trip", spec.name);
    }
}

#[test]
fn partial_user_specs_round_trip_with_defaults() {
    let text = r#"{
        "name": "user-sweep",
        "machine": {"nodes": 2},
        "options": {"skew": 0.3, "steal": {"fraction": 0.25}},
        "strategies": ["DP", {"FP": 0.2}],
        "sweep": {"axis": "processors_per_node", "values": [2, 4]}
    }"#;
    let spec = ScenarioSpec::from_json(text).unwrap();
    assert_eq!(spec.machine.nodes, 2);
    assert_eq!(spec.options.steal.fraction, 0.25);
    // Untouched knobs keep their defaults.
    assert_eq!(
        spec.options.steal.min_tuples,
        ExecOptions::default().steal.min_tuples
    );
    assert_eq!(spec.workload, WorkloadSpec::default());
    // And the reparsed form equals the reserialized form.
    assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
}

/// Two systems that differ only in steal tuning — fields the old
/// per-experiment `RunKey` (strategy, skew, machine shape) did not cover —
/// must not share entries in a shared run cache.
#[test]
fn cross_system_cache_distinguishes_steal_tuning() {
    let workload = WorkloadParams {
        queries: 2,
        relations_per_query: 4,
        scale: 0.01,
        skew: 0.0,
        seed: 21,
    };
    let base = Experiment::builder()
        .system(HierarchicalSystem::hierarchical(2, 2).with_skew(0.5))
        .workload(workload)
        .build()
        .unwrap();
    let baseline = base.run(Strategy::dynamic()).unwrap();

    // Same strategy, same skew, same machine shape; only the steal policy
    // (and then only the execution seed) differ.
    let tuned = base.on_system(
        base.system()
            .clone()
            .with_options(ExecOptions::builder().skew(0.5).steal_fraction(0.1).build()),
    );
    let tuned_runs = tuned.run(Strategy::dynamic()).unwrap();
    assert!(
        !Arc::ptr_eq(&baseline, &tuned_runs),
        "steal tuning must separate cache entries"
    );

    let reseeded = base.on_system(
        base.system()
            .clone()
            .with_options(ExecOptions::builder().skew(0.5).seed(0xBAD).build()),
    );
    let reseeded_runs = reseeded.run(Strategy::dynamic()).unwrap();
    assert!(
        !Arc::ptr_eq(&baseline, &reseeded_runs),
        "the execution seed must separate cache entries"
    );

    // All three configurations coexist in the one shared cache...
    assert_eq!(base.cache().len(), 3);
    // ...and a repeat of the identical configuration is a pointer-equal hit.
    let again = base
        .on_system(base.system().clone())
        .run(Strategy::dynamic())
        .unwrap();
    assert!(Arc::ptr_eq(&baseline, &again));
}

/// The shipped example spec file parses, sweeps an axis no bundled figure
/// sweeps (node count), and runs end to end.
#[test]
fn example_spec_file_runs_an_uncovered_axis_combination() {
    let text = include_str!("../examples/scenarios/hier_nodes_sweep.json");
    let spec = ScenarioSpec::from_json(text).unwrap();
    assert_eq!(spec.rows.axis, Axis::Nodes);
    for bundled in scenario::registry() {
        assert_ne!(
            bundled.rows.axis,
            Axis::Nodes,
            "{} already sweeps nodes",
            bundled.name
        );
        assert!(bundled
            .columns
            .as_ref()
            .is_none_or(|c| c.axis != Axis::Nodes));
    }
    // Shrink the workload so the 8-node point stays test-sized.
    let spec = spec.with_generated_workload(1, 4, 0.005, 5);
    let report = scenario::run_scenario(&spec).unwrap();
    assert_eq!(report.points.len(), 4);
    for point in &report.points {
        assert_eq!(point.cells.len(), 2);
        for cell in &point.cells {
            assert!(cell.value.is_finite() && cell.value > 0.0);
        }
    }
    // The FP strategy kept its authored error rate.
    assert_eq!(report.points[0].cells[1].strategy, Strategy::fixed(0.1));
}

/// The shipped mix spec file parses, exercises the concurrent-queries axis,
/// and runs end to end with per-query schedules in every cell.
#[test]
fn example_mix_spec_file_runs_end_to_end() {
    let text = include_str!("../examples/scenarios/query_mix.json");
    let spec = ScenarioSpec::from_json(text).unwrap();
    assert_eq!(spec.rows.axis, Axis::ConcurrentQueries);
    let WorkloadSpec::Mix(mix) = &spec.workload else {
        panic!("expected a mix workload");
    };
    assert_eq!(mix.policy, MixPolicy::RoundRobin);
    assert_eq!(mix.arrival_gap_secs, 0.5);
    let report = scenario::run_scenario(&spec).unwrap();
    assert_eq!(report.points.len(), 2);
    for (pi, point) in report.points.iter().enumerate() {
        let queries = spec.rows.values[pi] as usize;
        for cell in &point.cells {
            assert!(cell.value.is_finite() && cell.value > 0.0);
            let schedule = cell.mix.as_ref().expect("mix cells carry a schedule");
            assert_eq!(schedule.queries.len(), queries);
            assert_eq!(cell.runs.len(), queries, "one solo run per query");
            // Arrival offsets and priorities took effect.
            assert_eq!(schedule.queries[1].arrival_secs, 0.5);
            assert!(schedule.makespan_secs >= schedule.max_response_secs);
        }
    }
    // DP is the same-point reference: its ratio column is pinned at 1.
    assert!((report.points[0].cells[0].value - 1.0).abs() < 1e-12);
}

/// The MemoryPerNode axis reaches the running system and the mix scheduler
/// end to end: the machine override lands in the built system's config, and
/// a sweep row tight enough for the mix's real working sets produces
/// admission waits that the generous row does not.
#[test]
fn memory_axis_reaches_the_mix_scheduler_end_to_end() {
    use hierdb::raw::query::cost::CostModel;
    use hierdb::scenario::{Metric, MixSpec, Presentation, Reference, TableStyle};
    use hierdb::{CompiledWorkload, MixEntry, QueryMix};

    // (a) The machine-level memory override reaches the built system.
    let spec = ScenarioSpec::builder("mem-plumb")
        .memory_per_node_mb(64)
        .build()
        .unwrap();
    let exp = scenario::base_experiment(&spec).unwrap();
    assert_eq!(
        exp.system().config().machine.memory_per_node_bytes,
        64 * 1024 * 1024
    );

    // (b) A sweep value derived from the engine's own working-set estimates:
    // per-node memory of exactly ceil(max demand) admits any single query
    // but never two at once (demands are positive, so their sum exceeds the
    // max), forcing the second FCFS query to wait in the tight row only.
    let mix = MixSpec {
        queries: 2,
        relations: 4,
        scale: 2.0,
        seed: 42,
        arrival_gap_secs: 0.0,
        policy: MixPolicy::Fcfs,
        mode: hierdb::MixMode::Composed,
        priorities: Vec::new(),
        skews: Vec::new(),
        topology: Vec::new(),
    };
    let system = HierarchicalSystem::hierarchical(1, 2);
    let workload = CompiledWorkload::generate(
        WorkloadParams {
            queries: mix.queries,
            relations_per_query: mix.relations,
            scale: mix.scale,
            skew: 0.0,
            seed: mix.seed,
        },
        &system,
    )
    .unwrap();
    let probe = QueryMix::new(Arc::new(workload), vec![MixEntry::default(); 2]).unwrap();
    let config = system.config();
    let cost = CostModel::new(config.costs, config.disk, config.cpu);
    let demands: Vec<u64> = (0..probe.len())
        .map(|q| probe.memory_demand(q, &cost))
        .collect();
    const MB: u64 = 1024 * 1024;
    let tight_mb = demands.iter().max().unwrap().div_ceil(MB);
    let slack = tight_mb * MB - demands.iter().max().unwrap();
    assert!(
        demands.iter().min().unwrap() > &slack,
        "demands {demands:?} must overflow a {tight_mb} MB node together"
    );

    let spec = ScenarioSpec::builder("mem-e2e")
        .machine(1, 2)
        .workload(WorkloadSpec::Mix(mix))
        .strategies([Strategy::dynamic()])
        .rows(Axis::MemoryPerNode, [512.0, tight_mb as f64])
        .reference(Reference::SamePoint(Strategy::dynamic()))
        .metric(Metric::Relative)
        .presentation(Presentation::Mix(TableStyle::for_axis(Axis::MemoryPerNode)))
        .build()
        .unwrap();
    let report = scenario::run_scenario(&spec).unwrap();
    let generous = report.points[0].cells[0].mix.as_ref().unwrap();
    let tight = report.points[1].cells[0].mix.as_ref().unwrap();
    assert_eq!(generous.mean_wait_secs, 0.0, "512 MB admits both at once");
    assert!(
        tight.mean_wait_secs > 0.0,
        "a {tight_mb} MB per-node limit must serialize admission"
    );
    // Serialization reshapes the schedule (the first query no longer
    // shares, so it completes earlier; total work — the makespan — is
    // conserved on the single shared node).
    assert_ne!(tight.queries, generous.queries);
    assert!(tight.queries[0].response_secs < generous.queries[0].response_secs);
}

/// Recovery options and topology streams survive the JSON round-trip with
/// their non-default values, and unknown labels are rejected with clear
/// parse errors naming the expected spellings.
#[test]
fn recovery_and_topology_serde_round_trips_and_rejects_unknown_labels() {
    use hierdb::raw::common::DlbError;
    use hierdb::{RecoveryPolicy, RehomePolicy, TopologyChange};
    let text = r#"{
        "name": "recovery",
        "machine": {"nodes": 2},
        "options": {"recovery": {"policy": "lose-restart", "rehome": "range"}},
        "workload": {"mix": {"mode": "co-simulated",
            "topology": [
                {"at_secs": 0.1, "node": 1, "change": "drain"},
                {"at_secs": 0.3, "node": 1, "change": "join"}
            ]}}
    }"#;
    let spec = ScenarioSpec::from_json(text).unwrap();
    assert_eq!(spec.options.recovery.policy, RecoveryPolicy::LoseRestart);
    assert_eq!(spec.options.recovery.rehome, RehomePolicy::Range);
    let WorkloadSpec::Mix(mix) = &spec.workload else {
        panic!("expected a mix workload");
    };
    assert_eq!(mix.topology.len(), 2);
    assert_eq!(mix.topology[0].change, TopologyChange::NodeDrain);
    assert_eq!(mix.topology[1].change, TopologyChange::NodeJoin);
    let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
    assert_eq!(back, spec, "non-default recovery options must round-trip");

    for (bad, expected) in [
        (
            r#"{"name": "x", "options": {"recovery": {"policy": "abandon"}}}"#,
            "unknown recovery policy",
        ),
        (
            r#"{"name": "x", "options": {"recovery": {"rehome": "shuffle"}}}"#,
            "unknown rehome policy",
        ),
        (
            r#"{"name": "x", "workload": {"mix": {"mode": "co-simulated",
                "topology": [{"at_secs": 0.1, "node": 0, "change": "explode"}]}}}"#,
            "unknown topology change",
        ),
        (
            r#"{"name": "x", "workload": {"mix": {"mode": "co-simulated",
                "topology": [{"at_secs": 0.1, "node": 0, "kind": "fail"}]}}}"#,
            "unknown",
        ),
    ] {
        let err = ScenarioSpec::from_json(bad).unwrap_err();
        assert!(
            matches!(err, DlbError::Parse(ref m) if m.contains(expected)),
            "{bad} => {err}"
        );
    }
}

/// Specs that are infeasible under their post-failure topology fail with
/// clear `DlbError`s — at validation time where the shape alone decides, at
/// run time where the workload's memory demands decide — never a panic (the
/// `scenario --validate` / `--spec` satellite of this PR).
#[test]
fn infeasible_post_failure_specs_fail_with_clear_errors_not_panics() {
    use hierdb::raw::common::DlbError;
    use hierdb::raw::query::cost::CostModel;
    use hierdb::scenario::{Metric, MixSpec, Presentation, Reference, TableStyle};
    use hierdb::{CompiledWorkload, MixEntry, MixMode, QueryMix, TopologyEvent};

    // (a) Shape-level: a topology stream is validated against the machine
    // when the spec is parsed — the exact path `scenario --spec` /
    // `--export` / `--validate` take for user files.
    let bad = r#"{
        "name": "bad-topo",
        "machine": {"nodes": 2},
        "workload": {"mix": {"mode": "co-simulated",
            "topology": [{"at_secs": 0.1, "node": 7, "change": "fail"}]}}
    }"#;
    let err = ScenarioSpec::from_json(bad).unwrap_err();
    assert!(
        matches!(err, DlbError::InvalidConfig(ref m)
            if m.contains("invalid topology stream") && m.contains("node 7")),
        "{err}"
    );

    // (b) Axis-level: a failed-nodes sweep may never kill the whole machine.
    let err = ScenarioSpec::builder("all-dead")
        .machine(2, 2)
        .workload(WorkloadSpec::Mix(MixSpec {
            mode: MixMode::CoSimulated,
            topology: vec![TopologyEvent::fail(0.1, 1)],
            ..MixSpec::default()
        }))
        .rows(Axis::FailedNodes, [2.0])
        .build()
        .unwrap_err();
    assert!(
        matches!(err, DlbError::InvalidConfig(ref m)
            if m.contains("leave at least one live node")),
        "{err}"
    );

    // (c) Run-time: a mix whose working set fits the full machine but can
    // never fit the post-failure survivor set is rejected by the engine with
    // a clear error instead of stalling the event loop. The second query
    // arrives long after node 1 dies, so its demand must fit on node 0
    // alone.
    let mix = MixSpec {
        queries: 2,
        relations: 4,
        scale: 4.0,
        seed: 42,
        arrival_gap_secs: 10.0,
        policy: MixPolicy::Fcfs,
        mode: MixMode::CoSimulated,
        priorities: Vec::new(),
        skews: Vec::new(),
        topology: vec![TopologyEvent::fail(0.05, 1)],
    };
    let system = HierarchicalSystem::hierarchical(2, 2);
    let workload = CompiledWorkload::generate(
        WorkloadParams {
            queries: mix.queries,
            relations_per_query: mix.relations,
            scale: mix.scale,
            skew: 0.0,
            seed: mix.seed,
        },
        &system,
    )
    .unwrap();
    let probe = QueryMix::new(Arc::new(workload), vec![MixEntry::default(); 2]).unwrap();
    let config = system.config();
    let cost = CostModel::new(config.costs, config.disk, config.cpu);
    let demands: Vec<u64> = (0..probe.len())
        .map(|q| probe.memory_demand(q, &cost))
        .collect();
    const MB: u64 = 1024 * 1024;
    // Enough memory for every query split across both nodes, not enough for
    // the late query concentrated on the lone survivor.
    let cap_mb = demands.iter().max().unwrap().div_ceil(2).div_ceil(MB);
    assert!(
        demands[1] > cap_mb * MB,
        "demands {demands:?} must overflow a {cap_mb} MB survivor node"
    );
    let spec = ScenarioSpec::builder("post-failure-oom")
        .machine(2, 2)
        .memory_per_node_mb(cap_mb)
        .workload(WorkloadSpec::Mix(mix))
        .strategies([Strategy::dynamic()])
        .rows(Axis::Skew, [0.0])
        .reference(Reference::SamePoint(Strategy::dynamic()))
        .metric(Metric::Relative)
        .presentation(Presentation::Mix(TableStyle::for_axis(Axis::Skew)))
        .build()
        .unwrap();
    let err = scenario::run_scenario(&spec).unwrap_err();
    assert!(
        matches!(err, DlbError::ExecutionError(ref m)
            if m.contains("never be admitted after the topology change")),
        "{err}"
    );
}

/// Mix cells surface in the machine-readable emission: JSON records carry
/// the schedule aggregates, CSV carries the trailing mix columns.
#[test]
fn mix_reports_emit_machine_readable_schedules() {
    let spec = golden(scenario::find("mix-contention").unwrap());
    let report = scenario::run_scenario(&spec).unwrap();
    let json = scenario::render_json(&report);
    let doc = hierdb::raw::common::Json::parse(&json).unwrap();
    let points = doc.get("points").unwrap().as_array().unwrap();
    assert_eq!(points.len(), 4 * 2, "4 concurrency levels x 2 strategies");
    for p in points {
        assert_eq!(p.get("mix_policy").unwrap().as_str(), Some("load-aware"));
        assert!(p.get("mix_mean_response_secs").unwrap().as_f64().unwrap() > 0.0);
        assert!(!p.get("mix_queries").unwrap().as_array().unwrap().is_empty());
    }
    let csv = scenario::render_csv(&report);
    assert!(csv
        .lines()
        .next()
        .unwrap()
        .ends_with("mix_vs_composed_response"));
    assert!(csv.lines().nth(1).unwrap().contains("load-aware"));
    assert!(csv.lines().nth(1).unwrap().contains(",composed,"));
    // Non-mix scenarios leave the mix columns empty.
    let plain = scenario::render_csv(
        &scenario::run_scenario(&golden(scenario::find("fig9").unwrap())).unwrap(),
    );
    assert!(plain.lines().nth(1).unwrap().ends_with(",,,,,,"));
}

/// The co-simulated mix scenario runs end to end and every emission carries
/// both fidelities: the co-simulated schedule and the composed contrast.
#[test]
fn cosim_mix_reports_contrast_the_composed_model_in_every_format() {
    use hierdb::MixMode;
    let spec = golden(scenario::find("mix-cosim").unwrap());
    let report = scenario::run_scenario(&spec).unwrap();
    for (pi, point) in report.points.iter().enumerate() {
        let queries = spec.rows.values[pi] as usize;
        for cell in &point.cells {
            assert!(cell.value.is_finite() && cell.value > 0.0);
            let mix = cell.mix.as_ref().expect("cosim cells carry a schedule");
            assert_eq!(mix.mode, MixMode::CoSimulated);
            assert_eq!(mix.queries.len(), queries);
            assert_eq!(mix.mean_wait_secs, 0.0, "cosim models no admission queue");
            let composed = cell
                .mix_composed
                .as_ref()
                .expect("cosim cells carry the composed contrast");
            assert_eq!(composed.mode, MixMode::Composed);
            assert_eq!(composed.queries.len(), queries);
            assert!(mix.mean_response_secs > 0.0 && composed.mean_response_secs > 0.0);
            // Both fidelities are anchored on the same solo runs.
            for (a, b) in mix.queries.iter().zip(&composed.queries) {
                assert_eq!(a.solo_secs, b.solo_secs);
            }
        }
    }
    // Text: the contrast columns and the mode-tagged banner.
    let text = scenario::render_text(&report);
    assert!(text.contains("vs comp"));
    assert!(text.contains("policy fcfs, co-simulated"));
    // JSON: mode plus the composed mean and the cosim/composed ratio.
    let json = scenario::render_json(&report);
    let doc = hierdb::raw::common::Json::parse(&json).unwrap();
    let points = doc.get("points").unwrap().as_array().unwrap();
    assert_eq!(points.len(), 4 * 2);
    for p in points {
        assert_eq!(p.get("mix_mode").unwrap().as_str(), Some("co-simulated"));
        let ratio = p.get("mix_vs_composed_response").unwrap().as_f64().unwrap();
        let composed_mean = p
            .get("mix_composed_mean_response_secs")
            .unwrap()
            .as_f64()
            .unwrap();
        let mean = p.get("mix_mean_response_secs").unwrap().as_f64().unwrap();
        assert!(ratio > 0.0 && composed_mean > 0.0);
        assert!((ratio - mean / composed_mean).abs() < 1e-9);
    }
    // CSV: the mode column and a filled contrast column.
    let csv = scenario::render_csv(&report);
    let line = csv.lines().nth(1).unwrap();
    assert!(line.contains(",co-simulated,"));
    assert!(!line.ends_with(','), "the contrast column is filled");
    // Composed-mode mixes leave the contrast column empty.
    let composed_csv = scenario::render_csv(
        &scenario::run_scenario(&golden(scenario::find("mix-contention").unwrap())).unwrap(),
    );
    assert!(composed_csv.lines().nth(1).unwrap().ends_with(','));
}

/// The co-simulated pinning scenario pins every query to the node the
/// analytic scheduler chose, so both fidelities answer one placement
/// decision and the per-query nodes agree between them.
#[test]
fn cosim_pinning_scenario_carries_placements_that_match_the_composed_model() {
    use hierdb::MixMode;
    let spec = golden(scenario::find("mix-cosim-placement").unwrap());
    let report = scenario::run_scenario(&spec).unwrap();
    for point in &report.points {
        for cell in &point.cells {
            let mix = cell.mix.as_ref().expect("cosim cells carry a schedule");
            assert_eq!(mix.mode, MixMode::CoSimulated);
            let composed = cell
                .mix_composed
                .as_ref()
                .expect("cosim cells carry the composed contrast");
            for (a, b) in mix.queries.iter().zip(&composed.queries) {
                assert!(a.node.is_some(), "pinning policies pin every query");
                assert_eq!(a.node, b.node, "both fidelities share the placement");
                assert!(a.wait_secs >= 0.0 && b.wait_secs >= 0.0);
            }
        }
    }
    // The per-query nodes surface in the JSON emission.
    let json = scenario::render_json(&report);
    let doc = hierdb::raw::common::Json::parse(&json).unwrap();
    for p in doc.get("points").unwrap().as_array().unwrap() {
        for q in p.get("mix_queries").unwrap().as_array().unwrap() {
            assert!(q.get("node").unwrap().as_u64().is_some());
        }
    }
}

/// Regression: `--export`-style flows must surface unknown or unsupported
/// axes as `DlbError`s, never panic (satellite fix of this PR).
#[test]
fn export_and_parse_fail_cleanly_on_unsupported_axes() {
    use hierdb::raw::common::DlbError;
    // Unknown registry name.
    let err = scenario::export("does-not-exist").unwrap_err();
    assert!(matches!(err, DlbError::NotFound(_)), "{err}");
    // Unknown axis in a user spec.
    let err =
        ScenarioSpec::from_json(r#"{"name": "x", "sweep": {"axis": "threads", "values": [1]}}"#)
            .unwrap_err();
    assert!(matches!(err, DlbError::Parse(_)), "{err}");
    // Known axis, unsupported workload: rejected at validation, and the
    // runner refuses it the same way instead of panicking mid-sweep.
    let bad = r#"{"name": "x", "sweep": {"axis": "concurrent_queries", "values": [2]}}"#;
    let err = ScenarioSpec::from_json(bad).unwrap_err();
    assert!(matches!(err, DlbError::InvalidConfig(_)), "{err}");
    let mut spec = ScenarioSpec::builder("x").build().unwrap();
    spec.rows = hierdb::scenario::Sweep::new(Axis::ConcurrentQueries, [2.0]);
    assert!(scenario::run_scenario(&spec).is_err());
}

/// JSON and CSV emission agree with the text table on the number of
/// measured cells.
#[test]
fn machine_readable_emission_covers_every_cell() {
    let spec = golden(scenario::find("fig6").unwrap());
    let report = scenario::run_scenario(&spec).unwrap();
    let json = scenario::render_json(&report);
    let doc = hierdb::raw::common::Json::parse(&json).unwrap();
    let points = doc.get("points").unwrap().as_array().unwrap();
    assert_eq!(points.len(), 3 * 3, "3 processor counts x 3 strategies");
    let csv = scenario::render_csv(&report);
    assert_eq!(csv.lines().count(), 1 + 9);
}

#[test]
fn open_cache_spec_matches_its_golden_capture() {
    assert_golden(
        "open_cache.txt",
        &rendered("open-cache"),
        include_str!("golden/open_cache.txt"),
    );
}

#[test]
fn open_cache_skew_spec_matches_its_golden_capture() {
    assert_golden(
        "open_cache_skew.txt",
        &rendered("open-cache-skew"),
        include_str!("golden/open_cache_skew.txt"),
    );
}

/// Acceptance: the front-end cache multiplies effective capacity. At every
/// sweep point whose hit ratio reaches 50%, the effective-QPS multiplier
/// (completed / engine queries) exceeds 1.5× — and such points exist in the
/// golden capture. The multiplier also grows with the offered rate for both
/// strategies, and the front-end accounting always decomposes exactly.
#[test]
fn open_cache_multiplies_effective_qps_at_high_hit_ratios() {
    let spec = golden(scenario::find("open-cache").expect("bundled spec"));
    let report = scenario::run_scenario(&spec).expect("scenario runs");
    let mut qualifying = 0;
    for point in &report.points {
        for cell in &point.cells {
            let o = cell.open.as_ref().expect("open cells carry a report");
            let f = &o.frontend;
            assert_eq!(
                f.engine_queries + f.cache_hits + f.coalesced,
                o.completed,
                "front-end outcomes must partition the completions"
            );
            if o.hit_ratio() >= 0.5 {
                qualifying += 1;
                assert!(
                    o.qps_multiplier() > 1.5,
                    "hit ratio {:.2} but multiplier only {:.2}",
                    o.hit_ratio(),
                    o.qps_multiplier()
                );
            }
        }
    }
    assert!(qualifying > 0, "no sweep point reached a 50% hit ratio");
    for (si, strategy) in ["DP", "FP"].iter().enumerate() {
        let mults: Vec<f64> = report
            .points
            .iter()
            .map(|p| p.cells[si].open.as_ref().unwrap().qps_multiplier())
            .collect();
        assert!(
            mults.windows(2).all(|w| w[0] < w[1]),
            "{strategy} multiplier not increasing with rate: {mults:?}"
        );
    }
    // The front-end columns surface in every format...
    let text = scenario::render_text(&report);
    for col in ["hit%", "xQPS"] {
        assert!(text.contains(col), "missing front-end column {col:?}");
    }
    let csv = scenario::render_csv(&report);
    assert!(csv
        .lines()
        .next()
        .unwrap()
        .ends_with("open_hit_ratio,open_qps_multiplier,open_coalesced,open_engine_queries"));
    let json = scenario::render_json(&report);
    let doc = hierdb::raw::common::Json::parse(&json).unwrap();
    for p in doc.get("points").unwrap().as_array().unwrap() {
        let fe = p
            .get("open_frontend")
            .expect("front-ended cells carry accounting");
        for key in [
            "cache_hits",
            "coalesced",
            "engine_queries",
            "hit_ratio",
            "qps_multiplier",
        ] {
            assert!(fe.get(key).is_some(), "open_frontend missing {key:?}");
        }
        assert!(p.get("open_response_cache_hit").is_some());
    }
    // ...while the front-end-free open scenario stays on its historical
    // emission shape, byte for byte.
    let plain = scenario::run_scenario(&golden(scenario::find("open-poisson").unwrap())).unwrap();
    assert!(!scenario::render_text(&plain).contains("hit%"));
    assert!(!scenario::render_csv(&plain)
        .lines()
        .next()
        .unwrap()
        .contains("open_hit_ratio"));
    assert!(!scenario::render_json(&plain).contains("open_frontend"));
}

/// Acceptance: a hot cached template shifts the residual DP-vs-FP balance.
/// The hit ratio tracks the skew, the hot template's share of the engine's
/// residual work stays far below its share of the offered stream, and the
/// FP-vs-DP ratio moves measurably across the sweep.
#[test]
fn open_cache_skew_shifts_the_residual_dp_fp_balance() {
    let spec = golden(scenario::find("open-cache-skew").expect("bundled spec"));
    let report = scenario::run_scenario(&spec).expect("scenario runs");
    // Rows sweep template skew 0.0 / 0.5 / 0.9.
    for (si, strategy) in ["DP", "FP"].iter().enumerate() {
        let hits: Vec<f64> = report
            .points
            .iter()
            .map(|p| p.cells[si].open.as_ref().unwrap().hit_ratio())
            .collect();
        assert!(
            hits[2] > hits[0] + 0.2,
            "{strategy} hit ratio does not track skew: {hits:?}"
        );
    }
    // At skew 0.9 the hot template receives ~95% of arrivals (skew mass plus
    // its uniform share) but the cache absorbs the repeats, so its share of
    // the *engine* stream drops far below its share of the offered one.
    let WorkloadSpec::Open(open) = &spec.workload else {
        panic!("open-cache-skew is open");
    };
    let skew = *spec.rows.values.last().unwrap();
    let offered_share = skew + (1.0 - skew) / open.templates as f64;
    let hot = report.points[2].cells[0].open.as_ref().unwrap();
    let residual: u64 = hot.engine_by_template.iter().sum();
    assert!(residual > 0);
    assert!(
        (hot.engine_by_template[0] as f64) / (residual as f64) + 0.2 < offered_share,
        "hot template residual share tracks its offered share {offered_share:.2}: {:?}",
        hot.engine_by_template
    );
    // The DP-vs-FP ratio moves measurably with the residual mix (DP is the
    // reference, pinned at 1.0; FP's relative value shifts across rows).
    let fp: Vec<f64> = report.points.iter().map(|p| p.cells[1].value).collect();
    let spread =
        fp.iter().cloned().fold(f64::MIN, f64::max) - fp.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        spread > 0.05,
        "FP relative value barely moves across the skew sweep: {fp:?}"
    );
}

/// Per-class open report fields stay gated on `priority_classes > 1`: the
/// JSON records of a single-class run and a multi-class run differ by
/// exactly one key — `open_response_by_class` — and nothing else appears or
/// disappears.
#[test]
fn per_class_open_fields_are_gated_on_priority_classes() {
    let single_spec = golden(scenario::find("open-poisson").expect("bundled spec"));
    let mut multi_spec = single_spec.clone();
    let WorkloadSpec::Open(open) = &mut multi_spec.workload else {
        panic!("open-poisson is open");
    };
    open.priority_classes = 3;
    // Per-record key sets: strategies legitimately differ (only FP cells
    // carry `error_rate`), so the single-vs-multi diff is taken record by
    // record, zipping the two runs' identically ordered point lists.
    let record_keys = |spec: &ScenarioSpec| -> Vec<Vec<String>> {
        let report = scenario::run_scenario(spec).expect("scenario runs");
        let json = scenario::render_json(&report);
        let doc = hierdb::raw::common::Json::parse(&json).unwrap();
        doc.get("points")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|p| {
                p.as_object()
                    .unwrap()
                    .iter()
                    .map(|(k, _)| k.clone())
                    .collect()
            })
            .collect()
    };
    let single = record_keys(&single_spec);
    let multi = record_keys(&multi_spec);
    assert_eq!(single.len(), multi.len());
    let by_class = "open_response_by_class".to_string();
    for (s, m) in single.iter().zip(&multi) {
        assert!(!s.contains(&by_class));
        let added: Vec<&String> = m.iter().filter(|k| !s.contains(k)).collect();
        assert_eq!(
            added,
            [&by_class],
            "multi-class runs must add exactly the per-class array"
        );
        let removed: Vec<&String> = s.iter().filter(|k| !m.contains(k)).collect();
        assert!(
            removed.is_empty(),
            "multi-class runs dropped keys: {removed:?}"
        );
    }
}
