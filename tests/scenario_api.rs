//! Integration coverage of the declarative scenario API:
//!
//! * **golden tests** — each bundled figure spec, run through
//!   `run_scenario` + `render_text`, reproduces output byte-identical to the
//!   pre-scenario figure binaries (captured in `tests/golden/` with
//!   `HIERDB_QUERIES=2 HIERDB_RELATIONS=5 HIERDB_SCALE=0.01`),
//! * **serde round-trips** — every bundled spec and a hand-written partial
//!   spec survive `to_json` / `from_json` unchanged,
//! * **cross-system run cache** — systems differing only in fields the old
//!   per-experiment `RunKey` ignored (steal tuning, execution seed) never
//!   share cache entries, while identical configurations do,
//! * **spec files** — the shipped example spec exercises an axis
//!   combination (a node-count sweep) no bundled figure covers.

use hierdb::scenario::{self, Axis, ScenarioSpec, WorkloadSpec};
use hierdb::{ExecOptions, Experiment, HierarchicalSystem, Strategy, WorkloadParams};
use std::sync::Arc;

/// The workload the golden files were captured with (see the capture recipe
/// in `EXPERIMENTS.md`).
fn golden(spec: ScenarioSpec) -> ScenarioSpec {
    spec.with_generated_workload(2, 5, 0.01, 0xD1B_1996)
}

fn rendered(name: &str) -> String {
    let spec = golden(scenario::find(name).expect("bundled spec"));
    let report = scenario::run_scenario(&spec).expect("scenario runs");
    scenario::render_text(&report)
}

#[test]
fn fig6_spec_reproduces_the_pre_refactor_binary_output() {
    assert_eq!(rendered("fig6"), include_str!("golden/fig6.txt"));
}

#[test]
fn fig7_spec_reproduces_the_pre_refactor_binary_output() {
    assert_eq!(rendered("fig7"), include_str!("golden/fig7.txt"));
}

#[test]
fn fig8_spec_reproduces_the_pre_refactor_binary_output() {
    assert_eq!(rendered("fig8"), include_str!("golden/fig8.txt"));
}

#[test]
fn fig9_spec_reproduces_the_pre_refactor_binary_output() {
    assert_eq!(rendered("fig9"), include_str!("golden/fig9.txt"));
}

#[test]
fn fig10_and_chain_specs_reproduce_the_pre_refactor_binary_output() {
    // The pre-refactor fig10 binary printed Figure 10 followed by a blank
    // line and the §5.3 chain experiment.
    let combined = format!("{}\n{}", rendered("fig10"), rendered("chain53"));
    assert_eq!(combined, include_str!("golden/fig10.txt"));
}

#[test]
fn params_table_reproduces_the_pre_refactor_binary_output() {
    assert_eq!(
        dlb_bench::params_table(),
        include_str!("golden/fig_params.txt")
    );
}

#[test]
fn bundled_specs_round_trip_through_json() {
    for spec in scenario::registry() {
        let text = spec.to_json();
        let back = ScenarioSpec::from_json(&text)
            .unwrap_or_else(|e| panic!("{} failed to reparse: {e}", spec.name));
        assert_eq!(back, spec, "{} did not round-trip", spec.name);
    }
}

#[test]
fn partial_user_specs_round_trip_with_defaults() {
    let text = r#"{
        "name": "user-sweep",
        "machine": {"nodes": 2},
        "options": {"skew": 0.3, "steal": {"fraction": 0.25}},
        "strategies": ["DP", {"FP": 0.2}],
        "sweep": {"axis": "processors_per_node", "values": [2, 4]}
    }"#;
    let spec = ScenarioSpec::from_json(text).unwrap();
    assert_eq!(spec.machine.nodes, 2);
    assert_eq!(spec.options.steal.fraction, 0.25);
    // Untouched knobs keep their defaults.
    assert_eq!(
        spec.options.steal.min_tuples,
        ExecOptions::default().steal.min_tuples
    );
    assert_eq!(spec.workload, WorkloadSpec::default());
    // And the reparsed form equals the reserialized form.
    assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
}

/// Two systems that differ only in steal tuning — fields the old
/// per-experiment `RunKey` (strategy, skew, machine shape) did not cover —
/// must not share entries in a shared run cache.
#[test]
fn cross_system_cache_distinguishes_steal_tuning() {
    let workload = WorkloadParams {
        queries: 2,
        relations_per_query: 4,
        scale: 0.01,
        skew: 0.0,
        seed: 21,
    };
    let base = Experiment::builder()
        .system(HierarchicalSystem::hierarchical(2, 2).with_skew(0.5))
        .workload(workload)
        .build()
        .unwrap();
    let baseline = base.run(Strategy::Dynamic).unwrap();

    // Same strategy, same skew, same machine shape; only the steal policy
    // (and then only the execution seed) differ.
    let tuned = base.on_system(
        base.system()
            .clone()
            .with_options(ExecOptions::builder().skew(0.5).steal_fraction(0.1).build()),
    );
    let tuned_runs = tuned.run(Strategy::Dynamic).unwrap();
    assert!(
        !Arc::ptr_eq(&baseline, &tuned_runs),
        "steal tuning must separate cache entries"
    );

    let reseeded = base.on_system(
        base.system()
            .clone()
            .with_options(ExecOptions::builder().skew(0.5).seed(0xBAD).build()),
    );
    let reseeded_runs = reseeded.run(Strategy::Dynamic).unwrap();
    assert!(
        !Arc::ptr_eq(&baseline, &reseeded_runs),
        "the execution seed must separate cache entries"
    );

    // All three configurations coexist in the one shared cache...
    assert_eq!(base.cache().len(), 3);
    // ...and a repeat of the identical configuration is a pointer-equal hit.
    let again = base
        .on_system(base.system().clone())
        .run(Strategy::Dynamic)
        .unwrap();
    assert!(Arc::ptr_eq(&baseline, &again));
}

/// The shipped example spec file parses, sweeps an axis no bundled figure
/// sweeps (node count), and runs end to end.
#[test]
fn example_spec_file_runs_an_uncovered_axis_combination() {
    let text = include_str!("../examples/scenarios/hier_nodes_sweep.json");
    let spec = ScenarioSpec::from_json(text).unwrap();
    assert_eq!(spec.rows.axis, Axis::Nodes);
    for bundled in scenario::registry() {
        assert_ne!(
            bundled.rows.axis,
            Axis::Nodes,
            "{} already sweeps nodes",
            bundled.name
        );
        assert!(bundled
            .columns
            .as_ref()
            .is_none_or(|c| c.axis != Axis::Nodes));
    }
    // Shrink the workload so the 8-node point stays test-sized.
    let spec = spec.with_generated_workload(1, 4, 0.005, 5);
    let report = scenario::run_scenario(&spec).unwrap();
    assert_eq!(report.points.len(), 4);
    for point in &report.points {
        assert_eq!(point.cells.len(), 2);
        for cell in &point.cells {
            assert!(cell.value.is_finite() && cell.value > 0.0);
        }
    }
    // The FP strategy kept its authored error rate.
    assert_eq!(
        report.points[0].cells[1].strategy,
        Strategy::Fixed { error_rate: 0.1 }
    );
}

/// JSON and CSV emission agree with the text table on the number of
/// measured cells.
#[test]
fn machine_readable_emission_covers_every_cell() {
    let spec = golden(scenario::find("fig6").unwrap());
    let report = scenario::run_scenario(&spec).unwrap();
    let json = scenario::render_json(&report);
    let doc = hierdb::raw::common::Json::parse(&json).unwrap();
    let points = doc.get("points").unwrap().as_array().unwrap();
    assert_eq!(points.len(), 3 * 3, "3 processor counts x 3 strategies");
    let csv = scenario::render_csv(&report);
    assert_eq!(csv.lines().count(), 1 + 9);
}
