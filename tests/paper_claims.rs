//! Integration tests asserting the *qualitative* claims of the paper's
//! evaluation (§5) at reduced scale. These are the same comparisons the
//! figure harness prints, turned into assertions with generous margins so
//! they are robust to the reduced workload size.

use hierdb::{
    relative_performance, ExecOptions, Experiment, HierarchicalSystem, Strategy, Summary,
    WorkloadParams,
};

fn workload(seed: u64) -> WorkloadParams {
    WorkloadParams {
        queries: 3,
        relations_per_query: 6,
        scale: 0.02,
        skew: 0.0,
        seed,
    }
}

/// §5.2.1 / Figure 6: in shared memory, DP performs close to SP while FP is
/// worse.
#[test]
fn dp_tracks_sp_and_beats_fp_in_shared_memory() {
    let experiment = Experiment::builder()
        .system(HierarchicalSystem::shared_memory(16))
        .workload(workload(21))
        .build()
        .unwrap();
    let sp = experiment.run(Strategy::synchronous()).unwrap();
    let dp = experiment.run(Strategy::dynamic()).unwrap();
    let fp = experiment.run(Strategy::fixed(0.0)).unwrap();

    let dp_vs_sp = relative_performance(&dp, &sp);
    let fp_vs_sp = relative_performance(&fp, &sp);
    assert!(
        dp_vs_sp >= 0.95,
        "SP is the reference model, got {dp_vs_sp}"
    );
    assert!(
        dp_vs_sp < 1.6,
        "DP should stay in the vicinity of SP, got {dp_vs_sp}"
    );
    assert!(
        fp_vs_sp > dp_vs_sp,
        "FP ({fp_vs_sp}) should be slower than DP ({dp_vs_sp})"
    );
}

/// §5.2.1 / Figure 7: FP degrades as cost-model errors grow.
///
/// The degradation is a *statistical* claim: FP's thread allocation is
/// discretized (whole threads per operator) and driven by a cost model that
/// only approximates the simulated execution, so one individual error
/// realization can, by luck, land on an allocation marginally better than the
/// exact-estimate one — the seed state of this test did exactly that (mean
/// ratio 0.998 on a single realization). The claim that errors cannot *help*
/// holds in expectation, so it is asserted on the average over several
/// independent error realizations, which is also what Figure 7 reflects at
/// paper scale.
#[test]
fn fp_degrades_with_cost_model_errors() {
    let system = HierarchicalSystem::shared_memory(8);
    let experiment = Experiment::builder()
        .system(system.clone())
        .workload(workload(22))
        .build()
        .unwrap();
    let exact = experiment.run(Strategy::fixed(0.0)).unwrap();
    let realizations = 5u64;
    let mean_degradation = (0..realizations)
        .map(|i| {
            let options = ExecOptions {
                seed: 0xE8EC + i,
                ..ExecOptions::default()
            };
            let wrong = experiment
                .on_system(system.clone().with_options(options))
                .run(Strategy::fixed(0.3))
                .unwrap();
            relative_performance(&wrong, &exact)
        })
        .sum::<f64>()
        / realizations as f64;
    assert!(
        mean_degradation >= 0.999,
        "30% estimation errors should not speed FP up on average, got {mean_degradation}"
    );
}

/// §5.2.1 / Figure 8: DP speeds up substantially with more processors.
#[test]
fn dp_speedup_with_processor_count() {
    let base = Experiment::builder()
        .system(HierarchicalSystem::shared_memory(1))
        .workload(workload(23))
        .build()
        .unwrap();
    let one = base.run(Strategy::dynamic()).unwrap();
    let sixteen = base
        .on_system(HierarchicalSystem::shared_memory(16))
        .run(Strategy::dynamic())
        .unwrap();
    let speedup = hierdb::speedup(&sixteen, &one);
    assert!(
        speedup > 3.0,
        "16 processors should give a clear speedup, got {speedup}"
    );
}

/// §5.2.2 / Figure 9: redistribution skew barely affects DP in shared memory.
#[test]
fn skew_impact_on_dp_is_bounded() {
    let system = HierarchicalSystem::shared_memory(16);
    let experiment = Experiment::builder()
        .system(system.clone())
        .workload(workload(24))
        .build()
        .unwrap();
    let unskewed = experiment.run(Strategy::dynamic()).unwrap();
    let skewed = experiment
        .on_system(system.with_skew(0.8))
        .run(Strategy::dynamic())
        .unwrap();
    let degradation = relative_performance(&skewed, &unskewed);
    assert!(
        degradation < 1.5,
        "DP should absorb redistribution skew, got {degradation}"
    );
}

/// §5.3 / Figure 10: on a skewed hierarchical configuration DP outperforms FP
/// and ships less data for global load balancing.
#[test]
fn dp_beats_fp_on_hierarchical_configuration_with_skew() {
    let experiment = Experiment::builder()
        .system(HierarchicalSystem::hierarchical(4, 4).with_skew(0.6))
        .workload(workload(25))
        .build()
        .unwrap();
    let dp = experiment.run(Strategy::dynamic()).unwrap();
    let fp = experiment.run(Strategy::fixed(0.0)).unwrap();
    let fp_vs_dp = relative_performance(&fp, &dp);
    assert!(
        fp_vs_dp > 1.0,
        "FP should be slower than DP on a skewed hierarchical machine, got {fp_vs_dp}"
    );
    let dp_summary = Summary::from_runs(&dp);
    let fp_summary = Summary::from_runs(&fp);
    assert!(
        fp_summary.total_lb_bytes >= dp_summary.total_lb_bytes,
        "FP ({}) should ship at least as much load-balancing data as DP ({})",
        fp_summary.total_lb_bytes,
        dp_summary.total_lb_bytes
    );
    // DP keeps processors busier than FP.
    assert!(dp_summary.mean_idle_fraction <= fp_summary.mean_idle_fraction + 1e-9);
}
