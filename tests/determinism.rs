//! Determinism of the parallel experiment pipeline: fanning plans out across
//! worker threads must produce bit-identical [`hierdb::PlanRun`]s — every
//! simulation is self-contained and seeded, and results are gathered in plan
//! order, so the thread count can never leak into the reports.

use hierdb::{Experiment, HierarchicalSystem, Strategy, WorkloadParams};

fn experiment(system: HierarchicalSystem) -> Experiment {
    Experiment::builder()
        .system(system)
        .workload(WorkloadParams {
            queries: 3,
            relations_per_query: 5,
            scale: 0.02,
            skew: 0.0,
            seed: 77,
        })
        .build()
        .unwrap()
}

/// `Experiment::run` under rayon with ≥ 4 worker threads produces exactly the
/// reports of a strictly sequential execution, for both DP and FP, on both
/// shared-memory and hierarchical machines.
#[test]
fn parallel_run_is_bit_identical_to_sequential() {
    assert!(
        hierdb::set_threads(4),
        "the offline rayon shim always accepts reconfiguration"
    );
    assert!(
        rayon::current_num_threads() >= 4,
        "test requires at least 4 worker threads"
    );
    let systems = [
        HierarchicalSystem::shared_memory(8),
        HierarchicalSystem::hierarchical(2, 4).with_skew(0.5),
    ];
    let strategies = [Strategy::dynamic(), Strategy::fixed(0.2)];
    for system in systems {
        let exp = experiment(system);
        for strategy in strategies {
            let sequential = exp.run_sequential(strategy).unwrap();
            let parallel = exp.run(strategy).unwrap();
            assert!(
                sequential.len() >= 4,
                "need enough plans to exercise the fan-out"
            );
            // Field-level checks first, for readable failures.
            for (s, p) in sequential.iter().zip(parallel.iter()) {
                assert_eq!(
                    s.report.response_time, p.report.response_time,
                    "response time diverged for plan {} under {strategy:?}",
                    s.plan_index
                );
                assert_eq!(
                    s.report.messages, p.report.messages,
                    "message count diverged for plan {} under {strategy:?}",
                    s.plan_index
                );
            }
            // Then the full reports, bit for bit.
            assert_eq!(
                *parallel, sequential,
                "parallel run diverged from sequential under {strategy:?}"
            );
        }
    }
}

/// Two parallel runs of the same experiment agree with each other even when
/// the cache is not shared (fresh experiments), i.e. parallel execution is
/// self-consistent, not merely consistent with its own cache.
#[test]
fn repeated_parallel_runs_agree_without_shared_cache() {
    let _ = hierdb::set_threads(4);
    let system = HierarchicalSystem::hierarchical(2, 2).with_skew(0.8);
    let a = experiment(system.clone()).run(Strategy::dynamic()).unwrap();
    let b = experiment(system).run(Strategy::dynamic()).unwrap();
    assert_eq!(a, b);
}
