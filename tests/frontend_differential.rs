//! Differential pinning of the open-system front end (single-flight
//! coalescing + result cache) against the pre-front-end `execute_open` path:
//!
//! * **inert equivalence** — with the cache off and coalescing off, every
//!   bundled open spec produces an `OpenRun` bit-identical to `run_open`'s,
//!   at 1 and at 4 harness threads, whether the knobs are the defaults or
//!   non-default values that leave the front end disabled,
//! * **work conservation** — coalescing never invents or drops engine work:
//!   every completed request is exactly one of engine / cache-hit /
//!   coalesced, followers add zero engine events, and the engine's
//!   per-template residual stream is a subset of the frontend-off one,
//! * **thread-count determinism** — the bundled `open-cache` /
//!   `open-cache-skew` scenarios render byte-identically at 1 and 4 threads
//!   in every emission format (the CI smoke diff).
//!
//! Lives in its own test binary: `hierdb::set_threads` reconfigures a global
//! pool, and the plain determinism suite asserts its own thread counts.

use hierdb::scenario::{self, WorkloadSpec};
use hierdb::{
    ArrivalKind, ArrivalSpec, Experiment, FrontendConfig, HierarchicalSystem, OpenRun, Strategy,
    WorkloadParams,
};
use proptest::prelude::*;

/// A fresh experiment compiling one bundled open spec's golden-shrunken
/// template pool, plus the spec's arrival stream and lane count. Fresh on
/// every call so differential runs never share a run cache — equality must
/// come from replay, not from an `Arc` clone.
fn experiment_for(name: &str) -> (Experiment, ArrivalSpec, usize) {
    let spec = scenario::find(name)
        .expect("bundled spec")
        .with_generated_workload(2, 5, 0.01, 0xD1B_1996);
    let WorkloadSpec::Open(open) = &spec.workload else {
        panic!("{name} is an open spec");
    };
    let exp = Experiment::builder()
        .system(HierarchicalSystem::hierarchical(
            spec.machine.nodes,
            spec.machine.processors_per_node,
        ))
        .workload(WorkloadParams {
            queries: open.templates,
            relations_per_query: open.relations,
            scale: open.scale,
            skew: 0.0,
            seed: open.seed,
        })
        .build()
        .expect("bundled open workload compiles");
    (exp, open.arrivals(), open.concurrency)
}

const DP: Strategy = Strategy::dynamic();
const FP: Strategy = Strategy::fixed(0.0);

/// Tentpole differential: cache-off + coalesce-off `run_open_with_frontend`
/// is bit-identical to the pre-front-end `run_open` path on every bundled
/// open spec, for both strategies, at 1 and at 4 harness threads — both with
/// the all-default config and with non-default knobs (a finite TTL, a
/// non-zero fan-out cost) that leave the front end disabled. The latter runs
/// under a different cache key, so the equality is a genuine replay, not a
/// run-cache hit.
#[test]
fn inert_frontend_replays_every_bundled_open_spec_bit_identically() {
    let inert = FrontendConfig {
        cache_ttl_secs: 5.0,
        fanout_cost_secs: 0.25,
        ..FrontendConfig::default()
    };
    assert!(!inert.enabled(), "no cache, no coalescing: disabled");
    for threads in [1, 4] {
        assert!(hierdb::set_threads(threads), "rayon shim reconfigures");
        for name in ["open-poisson", "open-burst"] {
            for strategy in [DP, FP] {
                let run = |frontend: Option<FrontendConfig>| -> OpenRun {
                    let (exp, arrivals, concurrency) = experiment_for(name);
                    match frontend {
                        None => exp.run_open(&arrivals, concurrency, strategy),
                        Some(f) => exp.run_open_with_frontend(&arrivals, concurrency, f, strategy),
                    }
                    .expect("open run completes")
                };
                let base = run(None);
                assert_eq!(
                    base.report.frontend.engine_queries, base.report.completed,
                    "without a front end every request is an engine query"
                );
                assert_eq!(
                    base,
                    run(Some(FrontendConfig::default())),
                    "{name}/{strategy:?} at {threads} threads: default config diverged"
                );
                assert_eq!(
                    base,
                    run(Some(inert)),
                    "{name}/{strategy:?} at {threads} threads: disabled knobs diverged"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The same inert equivalence over randomized arrival streams: whatever
    /// the rate, stream seed and disabled-knob values, `run_open` and the
    /// disabled front end replay bit-identically.
    #[test]
    fn inert_frontend_is_bit_identical_on_random_streams(
        rate in 5.0f64..60.0,
        seed in 0u64..1_000,
        queries in 20usize..50,
        ttl in 0.01f64..10.0,
        fanout in 0.0f64..0.5,
    ) {
        let arrivals = ArrivalSpec {
            kind: ArrivalKind::Poisson,
            rate_qps: rate,
            burstiness: 0.0,
            queries,
            templates: 2,
            priority_classes: 2,
            seed,
            template_skew: 0.0,
        };
        let experiment = || {
            Experiment::builder()
                .system(HierarchicalSystem::hierarchical(2, 2))
                .workload(WorkloadParams {
                    queries: 2,
                    relations_per_query: 4,
                    scale: 0.01,
                    skew: 0.0,
                    seed: 11,
                })
                .build()
                .expect("small workload compiles")
        };
        let base = experiment().run_open(&arrivals, 3, DP).expect("runs");
        let inert = FrontendConfig {
            cache_ttl_secs: ttl,
            fanout_cost_secs: fanout,
            ..FrontendConfig::default()
        };
        let with_knobs = experiment()
            .run_open_with_frontend(&arrivals, 3, inert, DP)
            .expect("runs");
        prop_assert_eq!(base, with_knobs);
    }
}

/// Satellite: coalescing conserves work. Every completed request is exactly
/// one of engine-executed / cache-hit / coalesced-follower, the engine's
/// per-template stream is an elementwise subset of the frontend-off one
/// (followers add zero engine events), and the per-outcome response
/// histograms partition the aggregate one.
#[test]
fn coalescing_conserves_engine_work() {
    for name in ["open-poisson", "open-burst"] {
        let (exp, arrivals, concurrency) = experiment_for(name);
        let off = exp
            .run_open(&arrivals, concurrency, DP)
            .expect("runs")
            .report;
        let (exp, ..) = experiment_for(name);
        let coalesce_only = FrontendConfig {
            coalesce: true,
            fanout_cost_secs: 0.002,
            ..FrontendConfig::default()
        };
        let on = exp
            .run_open_with_frontend(&arrivals, concurrency, coalesce_only, DP)
            .expect("runs")
            .report;
        // Same stream in, same number of retirements out.
        assert_eq!(on.completed, off.completed, "{name}: arrivals lost");
        let f = &on.frontend;
        assert_eq!(f.cache_hits, 0, "{name}: no cache is configured");
        assert_eq!(
            f.engine_queries + f.coalesced,
            on.completed,
            "{name}: every request is exactly engine xor coalesced"
        );
        // Engine work equals the dedup-unique subset: never more work on any
        // template than the frontend-off run, and strictly less in total
        // when anything coalesced.
        assert_eq!(
            on.engine_by_template.iter().sum::<u64>(),
            f.engine_queries,
            "{name}: followers added engine events"
        );
        for (t, (with_fe, without)) in on
            .engine_by_template
            .iter()
            .zip(&off.engine_by_template)
            .enumerate()
        {
            assert!(
                with_fe <= without,
                "{name}: template {t} ran more often with coalescing ({with_fe} > {without})"
            );
        }
        assert!(f.coalesced > 0, "{name}: stream never overlapped a leader");
        assert!(
            f.engine_queries < off.frontend.engine_queries,
            "{name}: coalescing did not reduce engine work"
        );
        // The per-outcome histograms partition the aggregate response one.
        assert_eq!(
            on.response.count(),
            on.response_engine.count()
                + on.response_cache_hit.count()
                + on.response_coalesced.count(),
            "{name}: outcome histograms do not partition the responses"
        );
        assert_eq!(on.response_engine.count(), f.engine_queries);
        assert_eq!(on.response_coalesced.count(), f.coalesced);
    }
}

/// The bundled front-end scenarios render byte-identically at 1 and 4
/// harness threads in every emission format — the engine event loop is
/// strictly sequential and seeded; worker threads only fan out sweep points.
#[test]
fn frontend_scenarios_render_identically_at_1_and_4_threads() {
    for name in ["open-cache", "open-cache-skew"] {
        let spec = scenario::find(name)
            .expect("bundled spec")
            .with_generated_workload(2, 5, 0.01, 0xD1B_1996);
        assert!(hierdb::set_threads(1));
        let single = scenario::run_scenario(&spec).unwrap();
        assert!(hierdb::set_threads(4));
        let quad = scenario::run_scenario(&spec).unwrap();
        for (a, b) in [
            (scenario::render_text(&single), scenario::render_text(&quad)),
            (scenario::render_json(&single), scenario::render_json(&quad)),
            (scenario::render_csv(&single), scenario::render_csv(&quad)),
        ] {
            assert_eq!(a, b, "{name} rendering depends on thread count");
        }
    }
}
