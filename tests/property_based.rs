//! Property-based tests over the query, planning and execution layers.

use hierdb::raw::common::rng::rng_from_seed;
use hierdb::raw::common::{QueryId, ZipfDistribution};
use hierdb::raw::exec::{ExecOptions, OutputRouter, Strategy};
use hierdb::raw::query::generator::{WorkloadGenerator, WorkloadParams};
use hierdb::raw::query::jointree::JoinTree;
use hierdb::raw::query::optimizer::Optimizer;
use hierdb::raw::query::optree::OperatorTree;
use hierdb::raw::query::plan::{ChainScheduling, OperatorHomes, ParallelPlan};
use hierdb::SystemConfig;
use proptest::prelude::*;
use rand::Rng;

/// Generates a random small query via the workload generator (itself seeded),
/// so the shrunken cases stay meaningful.
fn arbitrary_query(relations: usize, seed: u64) -> hierdb::Query {
    WorkloadGenerator::new(WorkloadParams {
        queries: 1,
        relations_per_query: relations,
        scale: 0.005,
        skew: 0.0,
        seed,
    })
    .generate_query(QueryId::new(0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Zipf split conserves the total for any item count, skew and total.
    #[test]
    fn zipf_split_conserves_totals(
        n in 1usize..512,
        theta in 0.0f64..1.0,
        total in 0u64..2_000_000,
    ) {
        let dist = ZipfDistribution::new(n, theta);
        let parts = dist.split(total);
        prop_assert_eq!(parts.len(), n);
        prop_assert_eq!(parts.iter().sum::<u64>(), total);
    }

    /// The deficit router conserves tuples and respects its slot count.
    #[test]
    fn router_conserves_and_stays_in_range(
        slots in 1usize..64,
        theta in 0.0f64..1.0,
        batches in proptest::collection::vec(1u64..4_096, 1..200),
    ) {
        let mut router = OutputRouter::new(slots, theta, 7);
        let mut per_slot = vec![0u64; slots];
        for &b in &batches {
            let slot = router.route(b);
            prop_assert!(slot < slots);
            per_slot[slot] += b;
        }
        prop_assert_eq!(per_slot.iter().sum::<u64>(), batches.iter().sum::<u64>());
        prop_assert_eq!(router.total(), batches.iter().sum::<u64>());
    }

    /// Optimizer output is structurally sound for arbitrary generated queries:
    /// every relation appears exactly once, no Cartesian products, and the
    /// tree cardinalities are positive.
    #[test]
    fn optimizer_trees_are_well_formed(relations in 1usize..10, seed in 0u64..5_000) {
        let query = arbitrary_query(relations, seed);
        let trees = Optimizer::with_defaults().optimize(&query).unwrap();
        prop_assert!(!trees.is_empty());
        for tree in &trees {
            prop_assert_eq!(tree.leaf_count(), relations);
            prop_assert_eq!(tree.relations().len(), relations);
            prop_assert_eq!(tree.join_count(), relations - 1);
            prop_assert!(tree.cardinality() >= 1);
            assert_no_cartesian(tree, &query);
        }
    }

    /// Macro-expansion and scheduling produce valid plans: chains partition
    /// the operators, the schedule is acyclic (validate checks it), and every
    /// probe is gated on its build.
    #[test]
    fn plans_are_valid_for_arbitrary_queries(
        relations in 1usize..10,
        seed in 0u64..5_000,
        nodes in 1u32..5,
        one_at_a_time in proptest::bool::ANY,
    ) {
        let query = arbitrary_query(relations, seed);
        let tree = Optimizer::with_defaults().optimize(&query).unwrap().remove(0);
        let optree = OperatorTree::from_join_tree(&tree);
        let homes = OperatorHomes::all_nodes(&optree, nodes);
        let scheduling = if one_at_a_time {
            ChainScheduling::OneAtATime
        } else {
            ChainScheduling::Concurrent
        };
        let plan = ParallelPlan::build(query.id, optree, homes, scheduling).unwrap();
        plan.validate().unwrap();

        // Chains partition operators.
        let mut seen = std::collections::HashSet::new();
        for chain in plan.chains() {
            for &op in &chain.operators {
                prop_assert!(seen.insert(op));
            }
        }
        prop_assert_eq!(seen.len(), plan.tree.operators().len());

        // Every probe waits for its build.
        for (build, probe) in plan.tree.joins().values() {
            prop_assert!(plan.blocked_by(*probe).contains(build));
        }
    }

    /// Executing arbitrary small plans under DP and FP terminates and
    /// conserves the logical work (tuples processed ≈ plan volume) on both
    /// shared-memory and hierarchical machines.
    #[test]
    fn execution_conserves_work(
        relations in 2usize..7,
        seed in 0u64..1_000,
        nodes in 1u32..4,
        procs in 1u32..5,
        skew in 0.0f64..1.0,
    ) {
        let query = arbitrary_query(relations, seed);
        let tree = Optimizer::with_defaults().optimize(&query).unwrap().remove(0);
        let optree = OperatorTree::from_join_tree(&tree);
        let homes = OperatorHomes::all_nodes(&optree, nodes);
        let plan = ParallelPlan::build(query.id, optree, homes, ChainScheduling::OneAtATime).unwrap();
        let config = SystemConfig::hierarchical(nodes, procs);
        let options = ExecOptions { skew, ..ExecOptions::default() };

        for strategy in [Strategy::dynamic(), Strategy::fixed(0.2)] {
            let report = hierdb::raw::exec::execute(&plan, &config, strategy, &options).unwrap();
            let expected = plan.total_input_tuples();
            let tolerance = expected / 10 + 64;
            prop_assert!(
                report.tuples_processed.abs_diff(expected) <= tolerance,
                "strategy {:?}: processed {} expected {}",
                strategy, report.tuples_processed, expected
            );
            prop_assert!(report.response_time.as_nanos() > 0);
        }
    }

    /// Co-simulating a single query is not an approximation: for arbitrary
    /// plans, machines, skews and strategies, the one-lane co-simulated run
    /// produces a report bit-identical to the plain engine's.
    #[test]
    fn cosim_single_query_matches_plain_engine(
        relations in 2usize..6,
        seed in 0u64..500,
        nodes in 1u32..4,
        procs in 1u32..4,
        skew in 0.0f64..1.0,
        fixed in proptest::bool::ANY,
    ) {
        use hierdb::raw::exec::{execute, execute_cosimulated, CoSimQuery};
        let query = arbitrary_query(relations, seed);
        let tree = Optimizer::with_defaults().optimize(&query).unwrap().remove(0);
        let optree = OperatorTree::from_join_tree(&tree);
        let homes = OperatorHomes::all_nodes(&optree, nodes);
        let plan = ParallelPlan::build(query.id, optree, homes, ChainScheduling::OneAtATime).unwrap();
        let config = SystemConfig::hierarchical(nodes, procs);
        let options = ExecOptions { skew, ..ExecOptions::default() };
        let strategy = if fixed {
            Strategy::fixed(0.15)
        } else {
            Strategy::dynamic()
        };
        let plain = execute(&plan, &config, strategy, &options).unwrap();
        let co = execute_cosimulated(
            &[CoSimQuery {
                plan: &plan,
                arrival_secs: 0.0,
                priority: 1,
                skew,
                mask: None,
                memory_bytes: 0,
            }],
            &config,
            strategy,
            &options,
        )
        .unwrap();
        prop_assert_eq!(&co.aggregate, &plain);
        prop_assert_eq!(co.queries.len(), 1);
        prop_assert_eq!(co.queries[0].response_secs, plain.response_time.as_secs_f64());
        prop_assert_eq!(co.queries[0].tuples_processed, plain.tuples_processed);
    }

    /// Under FCFS processor sharing, adding one more concurrent query never
    /// speeds up any existing query: per-query response times are monotone
    /// non-decreasing in the concurrent-query count.
    #[test]
    fn fcfs_responses_are_monotone_in_concurrency(
        count in 2usize..8,
        nodes in 1u32..4,
        seed in 0u64..1_000,
    ) {
        use hierdb::raw::exec::mix::{schedule_mix, MixJob, MixPolicy};
        let mut rng = rng_from_seed(seed);
        let jobs: Vec<MixJob> = (0..count)
            .map(|_| MixJob {
                arrival_secs: rng.random_range(0.0..5.0),
                priority: rng.random_range(1u32..4),
                solo_secs: rng.random_range(0.1..20.0),
                memory_bytes: 1 << 20,
            })
            .collect();
        // Generous memory: responses change only through processor sharing.
        let memory = 1u64 << 40;
        let mut previous: Option<Vec<f64>> = None;
        for k in 1..=count {
            let schedule = schedule_mix(&jobs[..k], nodes, memory, MixPolicy::Fcfs).unwrap();
            let responses: Vec<f64> = schedule.queries.iter().map(|q| q.response_secs).collect();
            if let Some(prev) = &previous {
                for (q, (&old, &new)) in prev.iter().zip(&responses).enumerate() {
                    prop_assert!(
                        new >= old - 1e-9,
                        "query {q}: response fell from {old} to {new} when going \
                         from {} to {k} concurrent queries",
                        k - 1
                    );
                }
            }
            previous = Some(responses);
        }
    }

    /// The composed scheduler conserves memory — `schedule_mix` verifies
    /// internally that every node's free memory is back at
    /// `memory_per_node` once all queries completed and errors on a leak —
    /// and never records a negative admission wait or response, for
    /// arbitrary job sets, placements and priorities.
    #[test]
    fn composed_mix_conserves_memory_and_waits_are_nonnegative(
        count in 1usize..10,
        nodes in 1u32..5,
        seed in 0u64..2_000,
        policy_pick in 0usize..3,
    ) {
        use hierdb::raw::exec::mix::{schedule_mix, MixJob, MixPolicy};
        let policy = [MixPolicy::Fcfs, MixPolicy::RoundRobin, MixPolicy::LoadAware][policy_pick];
        let placement = match policy {
            MixPolicy::Fcfs => nodes as u64,
            _ => 1,
        };
        let memory = 1u64 << 20;
        let mut rng = rng_from_seed(seed);
        let jobs: Vec<MixJob> = (0..count)
            .map(|_| MixJob {
                arrival_secs: rng.random_range(0.0..10.0),
                priority: rng.random_range(1u32..4),
                solo_secs: rng.random_range(0.0..20.0),
                // Up to the whole placement's memory: admission really bites.
                memory_bytes: rng.random_range(0..=memory * placement),
            })
            .collect();
        let s = schedule_mix(&jobs, nodes, memory, policy).unwrap();
        prop_assert_eq!(s.queries.len(), count);
        for q in &s.queries {
            prop_assert!(q.wait_secs >= 0.0, "query {} waited {}", q.query, q.wait_secs);
            prop_assert!(q.response_secs >= 0.0);
            prop_assert!(q.admitted_secs >= q.arrival_secs);
        }
        prop_assert!(s.mean_wait_secs >= 0.0);
    }

    /// A co-simulated single-query mix — under ANY placement policy — is the
    /// plain engine run: one query pinned by round-robin or load-aware
    /// placement lands alone on node 0 with the same routers as its solo
    /// capture, so the response matches exactly and nothing ever waits.
    #[test]
    fn cosim_single_query_mix_equals_plain_engine_under_any_policy(
        nodes in 1u32..4,
        procs in 1u32..4,
        seed in 0u64..200,
        policy_pick in 0usize..3,
    ) {
        use hierdb::{Experiment, HierarchicalSystem, MixEntry, MixMode, MixPolicy, QueryMix};
        use hierdb::raw::query::generator::WorkloadParams;
        use std::sync::Arc;
        let policy = [MixPolicy::Fcfs, MixPolicy::RoundRobin, MixPolicy::LoadAware][policy_pick];
        let exp = Experiment::builder()
            .system(HierarchicalSystem::hierarchical(nodes, procs))
            .workload(WorkloadParams {
                queries: 1,
                relations_per_query: 3,
                scale: 0.005,
                skew: 0.0,
                seed,
            })
            .build()
            .unwrap();
        let mix = QueryMix::new(Arc::new(exp.workload().clone()), vec![MixEntry::default()]).unwrap();
        let run = exp
            .run_mix(&mix, policy, MixMode::CoSimulated, Strategy::dynamic())
            .unwrap();
        let outcome = &run.schedule.queries[0];
        prop_assert_eq!(outcome.response_secs, run.solo[0].report.response_secs());
        prop_assert_eq!(outcome.wait_secs, 0.0);
        prop_assert_eq!(outcome.slowdown, 1.0);
    }

    /// Co-simulated memory admission never admits past the per-node limit:
    /// reconstructing residency from the reported admission/completion
    /// intervals, the per-node shares of concurrently admitted queries
    /// never exceed the machine's memory, waits are non-negative, and FCFS
    /// admission follows arrival order.
    #[test]
    fn cosim_admission_never_exceeds_the_per_node_memory_limit(
        count in 2usize..6,
        seed in 0u64..200,
    ) {
        use hierdb::raw::exec::{execute_cosimulated, CoSimQuery};
        let query = arbitrary_query(3, seed);
        let tree = Optimizer::with_defaults().optimize(&query).unwrap().remove(0);
        let optree = OperatorTree::from_join_tree(&tree);
        let homes = OperatorHomes::all_nodes(&optree, 2);
        let plan =
            ParallelPlan::build(query.id, optree, homes, ChainScheduling::OneAtATime).unwrap();
        let mut config = SystemConfig::hierarchical(2, 2);
        const LIMIT: u64 = 1_000;
        config.machine.memory_per_node_bytes = LIMIT;
        let mut rng = rng_from_seed(seed ^ 0xC051);
        let queries: Vec<CoSimQuery<'_>> = (0..count)
            .map(|_| CoSimQuery {
                plan: &plan,
                arrival_secs: rng.random_range(0.0..0.05),
                priority: 1,
                skew: 0.0,
                mask: None,
                // Up to the full two-node budget: per-node share ≤ LIMIT, so
                // every query is feasible but several rarely fit at once.
                memory_bytes: rng.random_range(0..=2 * LIMIT),
            })
            .collect();
        let co =
            execute_cosimulated(&queries, &config, Strategy::dynamic(), &ExecOptions::default())
                .unwrap();
        for q in &co.queries {
            prop_assert!(q.wait_secs >= 0.0);
            prop_assert!(q.admitted_secs >= q.arrival_secs - 1e-12);
        }
        // FCFS: admission instants follow arrival order (ties by mix index).
        let mut order: Vec<usize> = (0..count).collect();
        order.sort_by(|&a, &b| {
            queries[a]
                .arrival_secs
                .total_cmp(&queries[b].arrival_secs)
                .then(a.cmp(&b))
        });
        for w in order.windows(2) {
            prop_assert!(
                co.queries[w[0]].admitted_secs <= co.queries[w[1]].admitted_secs + 1e-9,
                "FCFS admission out of order: {} before {}",
                w[1],
                w[0]
            );
        }
        // At every admission instant the resident per-node demand fits.
        for q in &co.queries {
            let t = q.admitted_secs;
            let resident: u64 = co
                .queries
                .iter()
                .enumerate()
                .filter(|(_, r)| r.admitted_secs <= t && t < r.completion_secs)
                .map(|(i, _)| queries[i].memory_bytes.div_ceil(2))
                .sum();
            prop_assert!(
                resident <= LIMIT,
                "resident {resident} bytes exceed the {LIMIT}-byte per-node limit at t={t}"
            );
        }
    }

    /// Re-home-and-resume conserves work for arbitrary plans, machines,
    /// strategies and failure times: no activation is lost or duplicated by
    /// the migration, so the faulted run processes and produces exactly the
    /// clean run's tuples (the failure work-conservation satellite).
    #[test]
    fn failure_rehoming_conserves_activations_and_tuples(
        relations in 2usize..6,
        seed in 0u64..300,
        nodes in 2u32..5,
        procs in 1u32..4,
        frac in 0.05f64..0.95,
        fixed in proptest::bool::ANY,
    ) {
        use hierdb::raw::exec::{
            execute_cosimulated, execute_cosimulated_faulted, CoSimQuery, TopologyEvent,
        };
        let query = arbitrary_query(relations, seed);
        let tree = Optimizer::with_defaults().optimize(&query).unwrap().remove(0);
        let optree = OperatorTree::from_join_tree(&tree);
        let homes = OperatorHomes::all_nodes(&optree, nodes);
        let plan = ParallelPlan::build(query.id, optree, homes, ChainScheduling::OneAtATime).unwrap();
        let config = SystemConfig::hierarchical(nodes, procs);
        let options = ExecOptions::default();
        let strategy = if fixed {
            Strategy::fixed(0.15)
        } else {
            Strategy::dynamic()
        };
        let mk = |arrival: f64| CoSimQuery {
            plan: &plan,
            arrival_secs: arrival,
            priority: 1,
            skew: 0.0,
            mask: None,
            memory_bytes: 0,
        };
        let queries = [mk(0.0), mk(0.01)];
        let clean = execute_cosimulated(&queries, &config, strategy, &options).unwrap();
        let topo = [TopologyEvent::fail(
            clean.makespan_secs() * frac,
            nodes as usize - 1,
        )];
        let faulted =
            execute_cosimulated_faulted(&queries, &config, strategy, &options, &topo).unwrap();
        prop_assert_eq!(faulted.faults.failures, 1);
        // Resume never loses state nor redoes work...
        prop_assert_eq!(faulted.faults.tuples_lost, 0);
        prop_assert_eq!(faulted.faults.tuples_redone, 0);
        // ...so re-homing neither drops nor duplicates activations.
        prop_assert_eq!(
            faulted.aggregate.tuples_processed,
            clean.aggregate.tuples_processed
        );
        prop_assert_eq!(faulted.aggregate.result_tuples, clean.aggregate.result_tuples);
        // Per-query outputs are conserved too, not just the aggregate.
        for (f, c) in faulted.queries.iter().zip(&clean.queries) {
            prop_assert_eq!(f.tuples_processed, c.tuples_processed);
        }
    }

    /// Random byte-mutations of bundled scenario specs never panic the JSON
    /// front door: `ScenarioSpec::from_json` either accepts the (possibly
    /// still valid) document or returns a clean `DlbError` (the spec-file
    /// hardening satellite).
    #[test]
    fn mutated_spec_json_never_panics_the_parser(
        positions in proptest::collection::vec(0usize..100_000, 1..16),
        values in proptest::collection::vec(0u16..256, 1..16),
        spec_pick in 0usize..64,
    ) {
        use hierdb::scenario::{self, ScenarioSpec};
        let specs = scenario::registry();
        let spec = &specs[spec_pick % specs.len()];
        let mut bytes = spec.to_json().into_bytes();
        for (&pos, &val) in positions.iter().zip(&values) {
            let n = bytes.len();
            bytes[pos % n] = val as u8;
        }
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = ScenarioSpec::from_json(&text) {
            prop_assert!(!format!("{e}").is_empty());
        }
    }

    /// Truncating a bundled spec mid-document always yields
    /// `DlbError::Parse` — the root object never closes, so the parser must
    /// reject the prefix rather than panic or accept it.
    #[test]
    fn truncated_spec_json_is_a_parse_error(
        cut in 0usize..100_000,
        spec_pick in 0usize..64,
    ) {
        use hierdb::raw::common::DlbError;
        use hierdb::scenario::{self, ScenarioSpec};
        let specs = scenario::registry();
        let spec = &specs[spec_pick % specs.len()];
        let text = spec.to_json();
        let body = text.trim_end();
        let prefix = String::from_utf8_lossy(&body.as_bytes()[..cut % body.len()]);
        let err = ScenarioSpec::from_json(&prefix).unwrap_err();
        prop_assert!(
            matches!(err, DlbError::Parse(_)),
            "expected a parse error for a truncated spec, got {err}"
        );
    }

    /// Slab keys are never handed out twice while live: under arbitrary
    /// interleavings of inserts and removes, an issued key addresses its own
    /// value until removed, and the arena's capacity tracks peak concurrent
    /// liveness — not throughput (the slab-backed calendar and heap-entry
    /// layout rely on exactly this stability).
    #[test]
    fn slab_keys_are_stable_and_never_reused_while_live(
        ops in 1usize..800,
        seed in 0u64..2_000,
    ) {
        use hierdb::raw::common::Slab;
        use std::collections::HashMap;
        let mut rng = rng_from_seed(seed);
        let mut slab: Slab<u64> = Slab::new();
        let mut live: HashMap<u32, u64> = HashMap::new();
        let mut peak = 0usize;
        let mut next_value = 0u64;
        for _ in 0..ops {
            if live.is_empty() || rng.random_bool(0.55) {
                let key = slab.insert(next_value);
                prop_assert!(
                    live.insert(key, next_value).is_none(),
                    "key {key} reissued while live"
                );
                next_value += 1;
            } else {
                let pick = rng.random_range(0..live.len());
                let &key = live.keys().nth(pick).unwrap();
                let expected = live.remove(&key).unwrap();
                prop_assert_eq!(slab.remove(key), Some(expected));
                prop_assert_eq!(slab.remove(key), None);
            }
            peak = peak.max(live.len());
            prop_assert_eq!(slab.len(), live.len());
            // Every live key still addresses its own value.
            for (&key, &value) in &live {
                prop_assert_eq!(slab.get(key), Some(&value));
            }
        }
        prop_assert_eq!(slab.capacity(), peak);
    }

    /// `drain_into` conserves activations and tuples under arbitrary
    /// interleavings of pushes and partial drains: nothing is lost,
    /// duplicated or double-counted between the queue's O(1) counters, the
    /// per-call [`DrainOutcome`]s and the drained activations themselves.
    #[test]
    fn drain_into_conserves_activations_and_tuples(
        capacity in 1usize..32,
        ops in 1usize..300,
        seed in 0u64..2_000,
    ) {
        use hierdb::raw::exec::{Activation, ActivationQueue};
        use hierdb::raw::common::OperatorId;
        let mut rng = rng_from_seed(seed);
        let mut queue = ActivationQueue::new(capacity);
        let mut out = Vec::new();
        let mut pushed_count = 0u64;
        let mut pushed_tuples = 0u64;
        let mut drained_count = 0u64;
        let mut drained_tuples = 0u64;
        for _ in 0..ops {
            if rng.random_bool(0.6) {
                let tuples = rng.random_range(0u64..10_000);
                if queue.push(Activation::data(OperatorId::new(0), tuples)) {
                    pushed_count += 1;
                    pushed_tuples += tuples;
                }
            } else {
                let before = out.len();
                let max = rng.random_range(0usize..=capacity + 2);
                let outcome = queue.drain_into(max, &mut out);
                prop_assert!(outcome.count <= max);
                // The outcome agrees with what actually landed in `out`.
                prop_assert_eq!(out.len() - before, outcome.count);
                let moved: u64 = out[before..].iter().map(|a| a.tuples).sum();
                prop_assert_eq!(moved, outcome.tuples);
                drained_count += outcome.count as u64;
                drained_tuples += outcome.tuples;
            }
            // Conservation at every step, not just at the end.
            prop_assert_eq!(queue.len() as u64, pushed_count - drained_count);
            prop_assert_eq!(queue.queued_tuples(), pushed_tuples - drained_tuples);
        }
        prop_assert_eq!(queue.total_enqueued(), pushed_count);
        prop_assert_eq!(queue.total_dequeued(), drained_count);
    }

    /// Random interleavings of queue operations keep the bounded activation
    /// queue consistent (length never exceeds capacity, counters add up).
    #[test]
    fn activation_queue_invariants(capacity in 1usize..32, ops in 1usize..500, seed in 0u64..1_000) {
        use hierdb::raw::exec::{Activation, ActivationQueue};
        use hierdb::raw::common::OperatorId;
        let mut rng = rng_from_seed(seed);
        let mut queue = ActivationQueue::new(capacity);
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for _ in 0..ops {
            if rng.random_bool(0.6) {
                if queue.push(Activation::data(OperatorId::new(0), 1)) {
                    pushed += 1;
                }
            } else if queue.pop().is_some() {
                popped += 1;
            }
            prop_assert!(queue.len() <= capacity);
        }
        prop_assert_eq!(queue.total_enqueued(), pushed);
        prop_assert_eq!(queue.total_dequeued(), popped);
        prop_assert_eq!(queue.len() as u64, pushed - popped);
    }
}

/// Regression pin for the batched event loop: an `execute_open` run over
/// 10 000 queries keeps live engine state bounded by the lane-slot pool,
/// exactly as before the slab/bitset refactor. Offered load is ~50× the
/// service capacity, so the waiting room grows into the thousands while
/// `peak_live` must stay pinned at `concurrency` — O(total queries) state
/// anywhere in the loop (calendar payloads, per-lane operator state) would
/// show up here first.
#[test]
fn open_system_peak_live_stays_bounded_at_10k_queries() {
    use hierdb::{ArrivalKind, ArrivalSpec, Experiment, HierarchicalSystem, Strategy};
    let experiment = Experiment::builder()
        .system(HierarchicalSystem::shared_memory(2))
        .workload(WorkloadParams {
            queries: 1,
            relations_per_query: 2,
            scale: 0.005,
            skew: 0.0,
            seed: 7,
        })
        .build()
        .expect("tiny workload compiles");
    let concurrency = 8;
    let arrivals = ArrivalSpec {
        kind: ArrivalKind::Poisson,
        rate_qps: 400.0,
        burstiness: 0.0,
        queries: 10_000,
        templates: 1,
        priority_classes: 1,
        seed: 99,
        template_skew: 0.0,
    };
    let run = experiment
        .run_open(&arrivals, concurrency, Strategy::dynamic())
        .expect("open run");
    assert_eq!(run.report.completed, 10_000);
    assert!(
        run.report.peak_live <= concurrency,
        "peak live {} exceeds the {concurrency} lane slots",
        run.report.peak_live
    );
    // Under heavy overload the slot pool must actually saturate — a
    // trivially low peak would mean the bound above tested nothing.
    assert_eq!(run.report.peak_live, concurrency);
}

/// Helper: every join node of a tree must be backed by at least one predicate
/// edge between its two sides.
fn assert_no_cartesian(tree: &JoinTree, query: &hierdb::Query) {
    if let JoinTree::Join { build, probe, .. } = tree {
        assert!(
            query
                .graph
                .crossing_selectivity(&build.relations(), &probe.relations())
                .is_some(),
            "cartesian product in optimizer output"
        );
        assert_no_cartesian(build, query);
        assert_no_cartesian(probe, query);
    }
}
