//! Bit-identical failure replay: a co-simulated mix with injected topology
//! events produces byte-for-byte the same report whatever the harness thread
//! count. The engine's event loop is strictly sequential and seeded; worker
//! threads only fan out independent solo runs and sweep points, so node
//! failures, re-homing and admission refreshes must replay identically at 1
//! and 4 threads.
//!
//! Lives in its own test binary: `hierdb::set_threads` reconfigures a global
//! pool, and the plain determinism suite asserts its own thread counts.

use hierdb::{
    Experiment, HierarchicalSystem, MixEntry, MixMode, MixPolicy, QueryMix, Strategy,
    TopologyEvent, WorkloadParams,
};
use std::sync::Arc;

fn experiment() -> Experiment {
    Experiment::builder()
        .system(HierarchicalSystem::hierarchical(4, 2).with_skew(0.3))
        .workload(WorkloadParams {
            queries: 3,
            relations_per_query: 5,
            scale: 0.02,
            skew: 0.3,
            seed: 77,
        })
        .build()
        .unwrap()
}

/// The same faulted mix, replayed on fresh experiments (no shared run cache)
/// under 1 and then 4 worker threads, yields identical `MixRun`s — schedule,
/// fault accounting and fault-free baseline included.
#[test]
fn faulted_mix_replay_is_bit_identical_at_1_and_4_threads() {
    let topo = [
        TopologyEvent::fail(0.05, 3),
        TopologyEvent::fail(0.09, 2),
        TopologyEvent::join(0.2, 3),
    ];
    let run_with = |threads: usize| {
        assert!(hierdb::set_threads(threads), "rayon shim reconfigures");
        let exp = experiment();
        let mix = QueryMix::new(
            Arc::new(exp.workload().clone()),
            vec![MixEntry::default(); 3],
        )
        .unwrap();
        exp.run_mix_with_topology(
            &mix,
            MixPolicy::Fcfs,
            MixMode::CoSimulated,
            Strategy::dynamic(),
            &topo,
        )
        .unwrap()
    };
    let single = run_with(1);
    let quad = run_with(4);
    let stats = single.faults.expect("faulted runs carry fault stats");
    assert_eq!(stats.failures, 2);
    assert_eq!(stats.joins, 1);
    assert_eq!(single.schedule, quad.schedule, "schedules diverged");
    assert_eq!(single.faults, quad.faults, "fault accounting diverged");
    assert_eq!(single.fault_free, quad.fault_free, "baselines diverged");
    assert_eq!(single, quad, "faulted mix replay depends on thread count");

    // The bundled failover scenarios render byte-identically too — the CI
    // smoke diff for machine-readable emissions. Same test function: the
    // thread pool is global, so the two passes must not interleave.
    use hierdb::scenario;
    for name in ["mix-failover", "mix-failover-frac"] {
        let spec = scenario::find(name)
            .expect("bundled spec")
            .with_generated_workload(2, 5, 0.01, 0xD1B_1996);
        assert!(hierdb::set_threads(1));
        let single = scenario::run_scenario(&spec).unwrap();
        assert!(hierdb::set_threads(4));
        let quad = scenario::run_scenario(&spec).unwrap();
        for (a, b) in [
            (scenario::render_text(&single), scenario::render_text(&quad)),
            (scenario::render_json(&single), scenario::render_json(&quad)),
            (scenario::render_csv(&single), scenario::render_csv(&quad)),
        ] {
            assert_eq!(a, b, "{name} rendering depends on thread count");
        }
    }
}
