//! End-to-end integration tests spanning all workspace crates: workload
//! generation → optimization → planning → execution on every strategy and
//! several machine shapes.

use hierdb::{
    relative_performance, AdHocQuery, Experiment, HierarchicalSystem, Strategy, Summary,
    WorkloadParams,
};

fn tiny_workload(seed: u64) -> WorkloadParams {
    WorkloadParams {
        queries: 2,
        relations_per_query: 5,
        scale: 0.01,
        skew: 0.0,
        seed,
    }
}

#[test]
fn full_pipeline_runs_on_shared_memory_and_hierarchical_machines() {
    for system in [
        HierarchicalSystem::shared_memory(4),
        HierarchicalSystem::hierarchical(2, 2),
        HierarchicalSystem::hierarchical(4, 2),
    ] {
        let experiment = Experiment::builder()
            .system(system.clone())
            .workload(tiny_workload(42))
            .build()
            .expect("workload compiles");
        for strategy in [Strategy::dynamic(), Strategy::fixed(0.0)] {
            let runs = experiment.run(strategy).expect("execution completes");
            assert_eq!(runs.len(), experiment.workload().len());
            for run in runs.iter() {
                assert!(run.report.response_time.as_secs_f64() > 0.0);
                assert!(run.report.tuples_processed > 0);
                assert!(run.report.utilization > 0.0 && run.report.utilization <= 1.0);
            }
        }
    }
}

#[test]
fn synchronous_pipelining_only_runs_on_shared_memory() {
    let experiment = Experiment::builder()
        .system(HierarchicalSystem::shared_memory(8))
        .workload(tiny_workload(1))
        .build()
        .unwrap();
    assert!(experiment.run(Strategy::synchronous()).is_ok());

    let hierarchical = Experiment::builder()
        .system(HierarchicalSystem::hierarchical(2, 4))
        .workload(tiny_workload(1))
        .build()
        .unwrap();
    assert!(hierarchical.run(Strategy::synchronous()).is_err());
}

#[test]
fn execution_is_fully_deterministic() {
    let build = || {
        Experiment::builder()
            .system(HierarchicalSystem::hierarchical(2, 3).with_skew(0.7))
            .workload(tiny_workload(7))
            .build()
            .unwrap()
    };
    let a = build().run(Strategy::dynamic()).unwrap();
    let b = build().run(Strategy::dynamic()).unwrap();
    assert_eq!(a.len(), b.len());
    for (ra, rb) in a.iter().zip(b.iter()) {
        assert_eq!(ra.report.response_time, rb.report.response_time);
        assert_eq!(ra.report.activations, rb.report.activations);
        assert_eq!(ra.report.network_bytes, rb.report.network_bytes);
        assert_eq!(ra.report.lb_bytes, rb.report.lb_bytes);
    }
}

#[test]
fn strategies_process_the_same_logical_work() {
    // DP and FP must process (approximately) the same number of tuples for
    // the same plan — the load-balancing strategy changes *who* does the
    // work, not *what* work exists.
    let experiment = Experiment::builder()
        .system(HierarchicalSystem::shared_memory(4))
        .workload(tiny_workload(3))
        .build()
        .unwrap();
    let dp = experiment.run(Strategy::dynamic()).unwrap();
    let fp = experiment.run(Strategy::fixed(0.0)).unwrap();
    for (a, b) in dp.iter().zip(fp.iter()) {
        let tolerance = a.report.tuples_processed / 20 + 32;
        assert!(
            a.report
                .tuples_processed
                .abs_diff(b.report.tuples_processed)
                <= tolerance,
            "DP processed {} tuples, FP {}",
            a.report.tuples_processed,
            b.report.tuples_processed
        );
        assert!(
            a.report.result_tuples.abs_diff(b.report.result_tuples)
                <= a.report.result_tuples / 10 + 32
        );
    }
}

#[test]
fn adding_processors_never_hurts_dp_much() {
    let small = Experiment::builder()
        .system(HierarchicalSystem::shared_memory(2))
        .workload(tiny_workload(5))
        .build()
        .unwrap();
    let large = small.on_system(HierarchicalSystem::shared_memory(16));
    let small_runs = small.run(Strategy::dynamic()).unwrap();
    let large_runs = large.run(Strategy::dynamic()).unwrap();
    // Relative performance of the 16-processor run against the 2-processor
    // run must be clearly below 1 (faster).
    let rel = relative_performance(&large_runs, &small_runs);
    assert!(rel < 1.0, "16 processors should beat 2, got ratio {rel}");
}

#[test]
fn hierarchical_and_shared_memory_agree_on_result_cardinality() {
    let query = AdHocQuery::new("consistency")
        .relation("a", 3_000)
        .relation("b", 9_000)
        .relation("c", 6_000)
        .join("a", "b")
        .join("b", "c");
    let sm = HierarchicalSystem::shared_memory(4);
    let hier = HierarchicalSystem::hierarchical(2, 2);
    let sm_report = sm
        .run(&query.compile(&sm).unwrap()[0], Strategy::dynamic())
        .unwrap();
    let hier_report = hier
        .run(&query.compile(&hier).unwrap()[0], Strategy::dynamic())
        .unwrap();
    let tolerance = sm_report.result_tuples / 10 + 32;
    assert!(
        sm_report.result_tuples.abs_diff(hier_report.result_tuples) <= tolerance,
        "shared memory produced {} result tuples, hierarchical {}",
        sm_report.result_tuples,
        hier_report.result_tuples
    );
}

#[test]
fn summary_reflects_load_balancing_activity() {
    let experiment = Experiment::builder()
        .system(HierarchicalSystem::hierarchical(4, 2).with_skew(0.9))
        .workload(tiny_workload(11))
        .build()
        .unwrap();
    let dp = experiment.run(Strategy::dynamic()).unwrap();
    let summary = Summary::from_runs(&dp);
    assert_eq!(summary.plans, dp.len());
    assert!(summary.mean_response_secs > 0.0);
    // Heavily skewed hierarchical runs exchange data between nodes.
    assert!(summary.total_network_bytes > 0);
}
