//! # dlb-sim
//!
//! Discrete-event simulation substrate for the hierdb workspace.
//!
//! The paper evaluated its execution model on a real 72-processor KSR1 but
//! *simulated* the atomic operators, the disks and the inter-node network
//! (§5.1.1). This crate provides the equivalent substrate entirely in virtual
//! time so that all experiments are deterministic and runnable on any host:
//!
//! * [`calendar::EventCalendar`] — the event queue / virtual clock,
//! * [`disk::DiskFarm`] — per-disk FIFO service timelines implementing the
//!   paper's disk parameters (latency, seek, transfer rate, asynchronous I/O
//!   with a bounded read-ahead cache),
//! * [`network::Network`] — point-to-point message timing with the paper's
//!   end-to-end delay and per-8 KB CPU costs, plus traffic accounting,
//! * [`cpu::CpuAccounting`] — per-processor busy/idle bookkeeping used to
//!   report processor utilization and idle time.
//!
//! The execution engines in `dlb-exec` drive these components from their own
//! event loops.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod calendar;
pub mod cpu;
pub mod disk;
pub mod network;

pub use calendar::{EventCalendar, ScheduledEvent};
pub use cpu::CpuAccounting;
pub use disk::{DiskFarm, DiskRequestOutcome};
pub use network::{MessageTiming, Network, NetworkStats};
