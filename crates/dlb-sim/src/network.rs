//! Inter-node message-passing model.
//!
//! Inter-node communication happens over the interconnection network with the
//! parameters published in the paper: an end-to-end transmission delay of
//! 0.5 ms, a CPU cost of 10 000 instructions per 8 KB on the sending side and
//! the same on the receiving side, and "infinite" bandwidth (wire time is
//! negligible). Intra-node communication goes through shared memory and costs
//! nothing here.
//!
//! The network never reorders messages between the same pair of nodes: the
//! arrival time of message *n+1* is never earlier than that of message *n*,
//! which the end-detection protocol of `dlb-exec` relies upon.

use dlb_common::config::{CpuParams, NetworkParams};
use dlb_common::{Duration, NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Timing of one message transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageTiming {
    /// Time at which the sender has finished paying its send CPU cost and the
    /// message leaves the node.
    pub sent: SimTime,
    /// Time at which the message reaches the destination node (before the
    /// receiver pays its receive CPU cost).
    pub arrival: SimTime,
    /// CPU time the sender spent on the send.
    pub send_cpu: Duration,
    /// CPU time the receiver must spend to take delivery.
    pub recv_cpu: Duration,
}

/// Traffic statistics, per direction and aggregated.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Total number of messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Messages broken down by (source, destination).
    pub per_link_messages: HashMap<(u32, u32), u64>,
    /// Bytes broken down by (source, destination).
    pub per_link_bytes: HashMap<(u32, u32), u64>,
}

impl NetworkStats {
    /// Bytes sent from `from` to `to`.
    pub fn link_bytes(&self, from: NodeId, to: NodeId) -> u64 {
        *self.per_link_bytes.get(&(from.0, to.0)).unwrap_or(&0)
    }

    /// Messages sent from `from` to `to`.
    pub fn link_messages(&self, from: NodeId, to: NodeId) -> u64 {
        *self.per_link_messages.get(&(from.0, to.0)).unwrap_or(&0)
    }
}

/// The interconnection network of the hierarchical system.
#[derive(Debug, Clone)]
pub struct Network {
    params: NetworkParams,
    cpu: CpuParams,
    /// Per-link earliest next arrival, to preserve FIFO ordering per link.
    link_clock: HashMap<(u32, u32), SimTime>,
    stats: NetworkStats,
}

impl Network {
    /// Creates a network with the given parameters. `cpu` is used to convert
    /// the per-message instruction costs into time.
    pub fn new(params: NetworkParams, cpu: CpuParams) -> Self {
        Self {
            params,
            cpu,
            link_clock: HashMap::new(),
            stats: NetworkStats::default(),
        }
    }

    /// Network parameters in force.
    pub fn params(&self) -> &NetworkParams {
        &self.params
    }

    /// Sends `bytes` from `from` to `to`, with the send starting at `at`.
    ///
    /// Returns the timing of the transfer. Sending to the local node is free
    /// and instantaneous (shared memory): the paper's model only pays
    /// message-passing costs across SM-nodes.
    pub fn send(&mut self, from: NodeId, to: NodeId, bytes: u64, at: SimTime) -> MessageTiming {
        if from == to {
            return MessageTiming {
                sent: at,
                arrival: at,
                send_cpu: Duration::ZERO,
                recv_cpu: Duration::ZERO,
            };
        }
        let send_cpu = self.cpu.instructions(self.params.send_instructions(bytes));
        let recv_cpu = self.cpu.instructions(self.params.recv_instructions(bytes));
        let sent = at + send_cpu;
        let mut arrival =
            sent + self.params.end_to_end_delay + self.params.transmission_time(bytes);
        // FIFO per link: never deliver before a previously sent message on the
        // same link.
        let link = (from.0, to.0);
        if let Some(prev) = self.link_clock.get(&link) {
            arrival = arrival.max(*prev);
        }
        self.link_clock.insert(link, arrival);

        self.stats.messages += 1;
        self.stats.bytes += bytes;
        *self.stats.per_link_messages.entry(link).or_insert(0) += 1;
        *self.stats.per_link_bytes.entry(link).or_insert(0) += bytes;

        MessageTiming {
            sent,
            arrival,
            send_cpu,
            recv_cpu,
        }
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(NetworkParams::default(), CpuParams::default())
    }

    #[test]
    fn local_send_is_free() {
        let mut n = net();
        let t = n.send(NodeId::new(0), NodeId::new(0), 1 << 20, SimTime::ZERO);
        assert_eq!(t.arrival, SimTime::ZERO);
        assert_eq!(t.send_cpu, Duration::ZERO);
        assert_eq!(n.stats().messages, 0);
    }

    #[test]
    fn remote_send_pays_delay_and_cpu() {
        let mut n = net();
        let t = n.send(NodeId::new(0), NodeId::new(1), 8 * 1024, SimTime::ZERO);
        // 10 000 instructions at 40 MIPS = 0.25 ms of send CPU.
        assert_eq!(t.send_cpu, Duration::from_micros(250));
        assert_eq!(t.recv_cpu, Duration::from_micros(250));
        // Arrival = send cpu + 0.5 ms delay (infinite bandwidth).
        assert_eq!(
            t.arrival,
            SimTime::ZERO + Duration::from_micros(250) + Duration::from_micros(500)
        );
        assert_eq!(n.stats().messages, 1);
        assert_eq!(n.stats().bytes, 8 * 1024);
    }

    #[test]
    fn multi_page_messages_scale_cpu_cost() {
        let mut n = net();
        let t = n.send(NodeId::new(0), NodeId::new(1), 4 * 8 * 1024, SimTime::ZERO);
        assert_eq!(t.send_cpu, Duration::from_micros(1_000));
    }

    #[test]
    fn per_link_fifo_ordering() {
        let mut n = net();
        let a = n.send(NodeId::new(0), NodeId::new(1), 1 << 16, SimTime::ZERO);
        // A later, smaller message on the same link cannot overtake.
        let b = n.send(NodeId::new(0), NodeId::new(1), 8, SimTime::from_nanos(1));
        assert!(b.arrival >= a.arrival);
        // But a message on a different link is independent of that ordering:
        // a small reverse-direction message is not held behind the large one.
        let c = n.send(NodeId::new(1), NodeId::new(0), 8, SimTime::from_nanos(1));
        assert!(c.arrival < a.arrival);
        assert_eq!(n.stats().link_messages(NodeId::new(0), NodeId::new(1)), 2);
        assert_eq!(n.stats().link_bytes(NodeId::new(1), NodeId::new(0)), 8);
    }

    #[test]
    fn stats_track_links_separately() {
        let mut n = net();
        n.send(NodeId::new(0), NodeId::new(1), 100, SimTime::ZERO);
        n.send(NodeId::new(0), NodeId::new(2), 200, SimTime::ZERO);
        n.send(NodeId::new(2), NodeId::new(0), 300, SimTime::ZERO);
        assert_eq!(n.stats().messages, 3);
        assert_eq!(n.stats().bytes, 600);
        assert_eq!(n.stats().link_bytes(NodeId::new(0), NodeId::new(1)), 100);
        assert_eq!(n.stats().link_bytes(NodeId::new(0), NodeId::new(2)), 200);
        assert_eq!(n.stats().link_bytes(NodeId::new(2), NodeId::new(0)), 300);
        assert_eq!(n.stats().link_bytes(NodeId::new(1), NodeId::new(2)), 0);
    }

    #[test]
    fn finite_bandwidth_adds_wire_time() {
        let params = NetworkParams {
            bandwidth_bytes_per_sec: Some(8.0 * 1024.0), // 1 page per second
            ..NetworkParams::default()
        };
        let mut n = Network::new(params, CpuParams::default());
        let t = n.send(NodeId::new(0), NodeId::new(1), 8 * 1024, SimTime::ZERO);
        assert!(t.arrival.since(SimTime::ZERO) > Duration::from_secs(1));
    }
}
