//! Event calendar: the core of the discrete-event simulation.
//!
//! The calendar is a priority queue of `(time, sequence, event)` entries.
//! Events at equal times are delivered in insertion order, which makes the
//! whole simulation deterministic: two runs with the same inputs produce the
//! same event interleaving and therefore the same response times.
//!
//! Two mechanical-sympathy refinements keep the dense-event regime cheap
//! without changing the delivery order:
//!
//! * **Slab-backed payloads** — the binary heap orders 16-byte
//!   `(time, seq, key)` entries while the event payloads sit still in a
//!   [`Slab`]; sift operations move small keys instead of whole events, and
//!   steady-state scheduling allocates nothing.
//! * **Now-bucket fast path** — events scheduled *at the current instant*
//!   (thread wake-ups, same-node hand-offs, past-time clamps) skip the heap
//!   entirely and go to a FIFO. While the clock sits at `now`, every new
//!   `now`-event carries a larger sequence number than any heap entry at the
//!   same time, so popping compares the FIFO front against the heap head by
//!   `(time, seq)` and always drains the bucket before the clock advances —
//!   exactly the order the heap alone would have produced.

use dlb_common::{SimTime, Slab};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// An event scheduled on the calendar.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Virtual time at which the event fires.
    pub time: SimTime,
    /// Insertion sequence number (tie-breaker for equal times).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest time (then the
        // smallest sequence number) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A heap entry: the ordering key plus the slab key of the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    key: u32,
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest time, then smallest sequence, pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event calendar.
///
/// ```
/// use dlb_common::{Duration, SimTime};
/// use dlb_sim::EventCalendar;
///
/// let mut cal: EventCalendar<&str> = EventCalendar::new();
/// cal.schedule_at(SimTime::ZERO + Duration::from_millis(2), "later");
/// cal.schedule_at(SimTime::ZERO + Duration::from_millis(1), "sooner");
/// let (t, e) = cal.pop().unwrap();
/// assert_eq!(e, "sooner");
/// assert_eq!(t.as_nanos(), 1_000_000);
/// ```
#[derive(Debug)]
pub struct EventCalendar<E> {
    heap: BinaryHeap<HeapEntry>,
    /// Events firing at exactly `now`, in sequence order (the front holds
    /// the smallest sequence number).
    now_bucket: VecDeque<(u64, u32)>,
    store: Slab<E>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for EventCalendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventCalendar<E> {
    /// Creates an empty calendar at virtual time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now_bucket: VecDeque::new(),
            store: Slab::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.store.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Schedules `event` at absolute virtual time `time`.
    ///
    /// Scheduling in the past is clamped to the current time: the event fires
    /// "now" but after already-scheduled events for the current instant.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = self.store.insert(event);
        if time <= self.now {
            // Fires at the current instant: no heap traffic. Sequence
            // numbers grow monotonically, so pushing at the back keeps the
            // bucket sorted.
            self.now_bucket.push_back((seq, key));
        } else {
            self.heap.push(HeapEntry { time, seq, key });
        }
    }

    /// Schedules `event` after `delay` from the current virtual time.
    pub fn schedule_after(&mut self, delay: dlb_common::Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the next event, advancing the virtual clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // The bucket holds `now`-events; the heap head is strictly later
        // than `now` unless it carries a same-time entry scheduled *before*
        // the clock reached `now` — that one has the smaller sequence
        // number and must fire first.
        let from_bucket = match (self.now_bucket.front(), self.heap.peek()) {
            (Some(_), None) => true,
            (Some(&(seq, _)), Some(head)) => (self.now, seq) < (head.time, head.seq),
            (None, _) => false,
        };
        let (time, key) = if from_bucket {
            let (_, key) = self.now_bucket.pop_front().expect("checked front");
            (self.now, key)
        } else {
            let head = self.heap.pop()?;
            // A same-time heap entry (scheduled before the clock reached
            // `now`, hence an older sequence number) may legitimately pop
            // ahead of bucketed events; only a strict clock advance
            // requires the bucket to have drained.
            debug_assert!(
                head.time == self.now || self.now_bucket.is_empty(),
                "now-bucket must drain before the clock advances"
            );
            (head.time, head.key)
        };
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        self.processed += 1;
        let event = self.store.remove(key).expect("scheduled payload is live");
        Some((time, event))
    }

    /// Peeks at the time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match (self.now_bucket.front(), self.heap.peek()) {
            (Some(_), _) => Some(self.now),
            (None, Some(head)) => Some(head.time),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_common::Duration;

    #[test]
    fn events_pop_in_time_order() {
        let mut cal = EventCalendar::new();
        cal.schedule_at(SimTime::from_nanos(30), 3);
        cal.schedule_at(SimTime::from_nanos(10), 1);
        cal.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(cal.processed(), 3);
        assert!(cal.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut cal = EventCalendar::new();
        for i in 0..100 {
            cal.schedule_at(SimTime::from_nanos(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut cal = EventCalendar::new();
        cal.schedule_at(SimTime::from_nanos(100), "a");
        cal.schedule_at(SimTime::from_nanos(50), "b");
        let (t1, _) = cal.pop().unwrap();
        assert_eq!(t1, SimTime::from_nanos(50));
        assert_eq!(cal.now(), SimTime::from_nanos(50));
        // Scheduling in the past clamps to now.
        cal.schedule_at(SimTime::from_nanos(10), "late");
        let (t2, e2) = cal.pop().unwrap();
        assert_eq!(t2, SimTime::from_nanos(50));
        assert_eq!(e2, "late");
        let (t3, _) = cal.pop().unwrap();
        assert_eq!(t3, SimTime::from_nanos(100));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut cal = EventCalendar::new();
        cal.schedule_at(SimTime::from_nanos(1_000), "first");
        cal.pop().unwrap();
        cal.schedule_after(Duration::from_nanos(500), "second");
        assert_eq!(cal.peek_time(), Some(SimTime::from_nanos(1_500)));
        assert_eq!(cal.pending(), 1);
    }

    #[test]
    fn now_events_fire_after_pending_same_time_heap_entries() {
        let mut cal = EventCalendar::new();
        cal.schedule_at(SimTime::from_nanos(10), "t10-first");
        cal.schedule_at(SimTime::from_nanos(10), "t10-second");
        cal.schedule_at(SimTime::from_nanos(20), "t20");
        let (_, e) = cal.pop().unwrap();
        assert_eq!(e, "t10-first");
        // Now == 10; schedule two more "now" events — they must fire after
        // the remaining heap entry at t=10 (older sequence number) but
        // before t=20, in insertion order.
        cal.schedule_at(SimTime::from_nanos(10), "now-a");
        cal.schedule_at(SimTime::from_nanos(5), "now-b-clamped");
        let rest: Vec<&str> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec!["t10-second", "now-a", "now-b-clamped", "t20"]);
        assert_eq!(cal.processed(), 5);
        assert!(cal.is_empty());
    }
}
