//! Event calendar: the core of the discrete-event simulation.
//!
//! The calendar is a priority queue of `(time, sequence, event)` entries.
//! Events at equal times are delivered in insertion order, which makes the
//! whole simulation deterministic: two runs with the same inputs produce the
//! same event interleaving and therefore the same response times.

use dlb_common::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled on the calendar.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Virtual time at which the event fires.
    pub time: SimTime,
    /// Insertion sequence number (tie-breaker for equal times).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest time (then the
        // smallest sequence number) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event calendar.
///
/// ```
/// use dlb_common::{Duration, SimTime};
/// use dlb_sim::EventCalendar;
///
/// let mut cal: EventCalendar<&str> = EventCalendar::new();
/// cal.schedule_at(SimTime::ZERO + Duration::from_millis(2), "later");
/// cal.schedule_at(SimTime::ZERO + Duration::from_millis(1), "sooner");
/// let (t, e) = cal.pop().unwrap();
/// assert_eq!(e, "sooner");
/// assert_eq!(t.as_nanos(), 1_000_000);
/// ```
#[derive(Debug)]
pub struct EventCalendar<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for EventCalendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventCalendar<E> {
    /// Creates an empty calendar at virtual time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current virtual time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute virtual time `time`.
    ///
    /// Scheduling in the past is clamped to the current time: the event fires
    /// "now" but after already-scheduled events for the current instant.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, event });
    }

    /// Schedules `event` after `delay` from the current virtual time.
    pub fn schedule_after(&mut self, delay: dlb_common::Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the next event, advancing the virtual clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "time went backwards");
        self.now = entry.time;
        self.processed += 1;
        Some((entry.time, entry.event))
    }

    /// Peeks at the time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_common::Duration;

    #[test]
    fn events_pop_in_time_order() {
        let mut cal = EventCalendar::new();
        cal.schedule_at(SimTime::from_nanos(30), 3);
        cal.schedule_at(SimTime::from_nanos(10), 1);
        cal.schedule_at(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(cal.processed(), 3);
        assert!(cal.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut cal = EventCalendar::new();
        for i in 0..100 {
            cal.schedule_at(SimTime::from_nanos(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut cal = EventCalendar::new();
        cal.schedule_at(SimTime::from_nanos(100), "a");
        cal.schedule_at(SimTime::from_nanos(50), "b");
        let (t1, _) = cal.pop().unwrap();
        assert_eq!(t1, SimTime::from_nanos(50));
        assert_eq!(cal.now(), SimTime::from_nanos(50));
        // Scheduling in the past clamps to now.
        cal.schedule_at(SimTime::from_nanos(10), "late");
        let (t2, e2) = cal.pop().unwrap();
        assert_eq!(t2, SimTime::from_nanos(50));
        assert_eq!(e2, "late");
        let (t3, _) = cal.pop().unwrap();
        assert_eq!(t3, SimTime::from_nanos(100));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut cal = EventCalendar::new();
        cal.schedule_at(SimTime::from_nanos(1_000), "first");
        cal.pop().unwrap();
        cal.schedule_after(Duration::from_nanos(500), "second");
        assert_eq!(cal.peek_time(), Some(SimTime::from_nanos(1_500)));
        assert_eq!(cal.pending(), 1);
    }
}
