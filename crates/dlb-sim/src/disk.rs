//! Disk service model.
//!
//! Each SM-node attaches one disk per processor (paper §5.1.1). Base-relation
//! partitions are spread over the disks of their home node; scans read
//! partitions page by page using *asynchronous* I/O so that disk transfers
//! overlap with tuple processing, bounded by an 8-page I/O cache (read-ahead
//! window).
//!
//! The model used here is a FIFO service timeline per disk: a request issued
//! at time `t` for `p` contiguous pages starts at `max(t, disk_free)` and
//! occupies the disk for `latency + seek + p * page / transfer_rate`. The
//! asynchronous overlap is modelled by the execution engine, which charges a
//! scan quantum `max(cpu_time, io_completion - start)` instead of the sum —
//! exactly the effect of the paper's `IO_InitAsync` / `IO_Read` loop with a
//! bounded read-ahead cache.

use dlb_common::config::DiskParams;
use dlb_common::{DiskId, Duration, NodeId, SimTime};
use serde::{Deserialize, Serialize};

/// Result of issuing a disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequestOutcome {
    /// When the disk started servicing the request.
    pub start: SimTime,
    /// When the last page of the request is available in memory.
    pub complete: SimTime,
}

impl DiskRequestOutcome {
    /// Total time the caller would wait if it did nothing else.
    pub fn wait_from(&self, issued: SimTime) -> Duration {
        self.complete.since(issued)
    }
}

/// Aggregate statistics of one disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Number of read requests serviced.
    pub requests: u64,
    /// Number of pages read.
    pub pages: u64,
    /// Total busy time of the disk.
    pub busy: Duration,
}

#[derive(Debug, Clone)]
struct DiskState {
    free_at: SimTime,
    stats: DiskStats,
}

/// The set of disks of the whole machine, indexed by `(node, local disk)`.
#[derive(Debug, Clone)]
pub struct DiskFarm {
    params: DiskParams,
    disks_per_node: u32,
    disks: Vec<DiskState>,
}

impl DiskFarm {
    /// Creates the disks for `nodes` SM-nodes with `disks_per_node` disks
    /// each.
    pub fn new(params: DiskParams, nodes: u32, disks_per_node: u32) -> Self {
        let count = (nodes * disks_per_node) as usize;
        Self {
            params,
            disks_per_node,
            disks: vec![
                DiskState {
                    free_at: SimTime::ZERO,
                    stats: DiskStats::default(),
                };
                count.max(1)
            ],
        }
    }

    /// Disk parameters in force.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Number of disks per node.
    pub fn disks_per_node(&self) -> u32 {
        self.disks_per_node
    }

    fn index(&self, disk: DiskId) -> usize {
        (disk.node.0 * self.disks_per_node + disk.local) as usize
    }

    /// Issues a read of `pages` contiguous pages on `disk` at time `issued`.
    ///
    /// Requests are serviced FIFO per disk; the returned outcome gives the
    /// service start and completion instants. One `latency + seek` penalty is
    /// charged per request (a request models one asynchronous I/O covering a
    /// read-ahead window, not one page).
    pub fn read(&mut self, disk: DiskId, issued: SimTime, pages: u64) -> DiskRequestOutcome {
        let idx = self.index(disk);
        let params = self.params;
        let state = &mut self.disks[idx];
        let start = state.free_at.max(issued);
        let service = params.access_time(pages);
        let complete = start + service;
        state.free_at = complete;
        state.stats.requests += 1;
        state.stats.pages += pages;
        state.stats.busy += service;
        DiskRequestOutcome { start, complete }
    }

    /// Issues a *streaming* read of `pages` pages on `disk` at `issued`:
    /// part of an already-positioned sequential scan, so only transfer time
    /// is charged (no latency or seek). Used for all but the first read of a
    /// partition fragment, matching the paper's asynchronous read-ahead
    /// behaviour.
    pub fn read_streaming(
        &mut self,
        disk: DiskId,
        issued: SimTime,
        pages: u64,
    ) -> DiskRequestOutcome {
        let idx = self.index(disk);
        let params = self.params;
        let state = &mut self.disks[idx];
        let start = state.free_at.max(issued);
        let service = params.transfer_time(pages);
        let complete = start + service;
        state.free_at = complete;
        state.stats.requests += 1;
        state.stats.pages += pages;
        state.stats.busy += service;
        DiskRequestOutcome { start, complete }
    }

    /// Earliest time the disk could begin a new request.
    pub fn free_at(&self, disk: DiskId) -> SimTime {
        self.disks[self.index(disk)].free_at
    }

    /// Statistics of one disk.
    pub fn stats(&self, disk: DiskId) -> DiskStats {
        self.disks[self.index(disk)].stats
    }

    /// Sum of the statistics of every disk of `node`.
    pub fn node_stats(&self, node: NodeId) -> DiskStats {
        let mut total = DiskStats::default();
        for local in 0..self.disks_per_node {
            let s = self.stats(DiskId::new(node, local));
            total.requests += s.requests;
            total.pages += s.pages;
            total.busy += s.busy;
        }
        total
    }

    /// Sum of the statistics of every disk of the machine.
    pub fn total_stats(&self) -> DiskStats {
        let mut total = DiskStats::default();
        for d in &self.disks {
            total.requests += d.stats.requests;
            total.pages += d.stats.pages;
            total.busy += d.stats.busy;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn farm() -> DiskFarm {
        DiskFarm::new(DiskParams::default(), 2, 4)
    }

    #[test]
    fn single_request_timing() {
        let mut f = farm();
        let d = DiskId::new(NodeId::new(0), 0);
        let out = f.read(d, SimTime::ZERO, 8);
        assert_eq!(out.start, SimTime::ZERO);
        // 17ms latency + 5ms seek + 8 pages * 8KiB / 6MiB/s ≈ 22ms + 10.4ms.
        let expected = DiskParams::default().access_time(8);
        assert_eq!(out.complete, SimTime::ZERO + expected);
        assert_eq!(out.wait_from(SimTime::ZERO), expected);
    }

    #[test]
    fn requests_queue_fifo_per_disk() {
        let mut f = farm();
        let d = DiskId::new(NodeId::new(0), 1);
        let a = f.read(d, SimTime::ZERO, 1);
        let b = f.read(d, SimTime::ZERO, 1);
        assert_eq!(b.start, a.complete);
        assert!(b.complete > a.complete);
        // A later request on a different disk does not queue.
        let other = f.read(DiskId::new(NodeId::new(0), 2), SimTime::ZERO, 1);
        assert_eq!(other.start, SimTime::ZERO);
    }

    #[test]
    fn idle_disk_starts_at_issue_time() {
        let mut f = farm();
        let d = DiskId::new(NodeId::new(1), 0);
        let issued = SimTime::from_nanos(1_000_000_000);
        let out = f.read(d, issued, 2);
        assert_eq!(out.start, issued);
    }

    #[test]
    fn stats_accumulate() {
        let mut f = farm();
        let d = DiskId::new(NodeId::new(1), 3);
        f.read(d, SimTime::ZERO, 4);
        f.read(d, SimTime::ZERO, 6);
        let s = f.stats(d);
        assert_eq!(s.requests, 2);
        assert_eq!(s.pages, 10);
        assert_eq!(
            s.busy,
            DiskParams::default().access_time(4) + DiskParams::default().access_time(6)
        );
        let ns = f.node_stats(NodeId::new(1));
        assert_eq!(ns.requests, 2);
        let ts = f.total_stats();
        assert_eq!(ts.pages, 10);
    }

    #[test]
    fn streaming_read_skips_latency_and_seek() {
        let mut f = farm();
        let d = DiskId::new(NodeId::new(0), 0);
        let streamed = f.read_streaming(d, SimTime::ZERO, 8);
        assert_eq!(
            streamed.complete,
            SimTime::ZERO + DiskParams::default().transfer_time(8)
        );
        // A positioned read still queues behind the streaming one.
        let positioned = f.read(d, SimTime::ZERO, 8);
        assert_eq!(positioned.start, streamed.complete);
        assert_eq!(f.stats(d).requests, 2);
    }

    #[test]
    fn node_stats_do_not_mix_nodes() {
        let mut f = farm();
        f.read(DiskId::new(NodeId::new(0), 0), SimTime::ZERO, 5);
        assert_eq!(f.node_stats(NodeId::new(1)).pages, 0);
        assert_eq!(f.node_stats(NodeId::new(0)).pages, 5);
    }
}
