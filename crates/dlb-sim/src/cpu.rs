//! Per-processor busy/idle accounting.
//!
//! The experiments of the paper report processor idle time ("processor idle
//! time with DP is almost null whereas it is quite significant with FP").
//! This module accumulates, for every processor, the virtual time spent doing
//! useful work so that the execution report can derive utilization and idle
//! time from the final response time.

use dlb_common::{Duration, NodeId, ProcessorId, SimTime};
use serde::{Deserialize, Serialize};

/// Busy-time accounting for all processors of the machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuAccounting {
    processors_per_node: u32,
    busy: Vec<Duration>,
    /// Last instant at which each processor finished work (for reporting).
    last_active: Vec<SimTime>,
}

impl CpuAccounting {
    /// Creates accounting for `nodes` × `processors_per_node` processors.
    pub fn new(nodes: u32, processors_per_node: u32) -> Self {
        let count = (nodes * processors_per_node) as usize;
        Self {
            processors_per_node,
            busy: vec![Duration::ZERO; count.max(1)],
            last_active: vec![SimTime::ZERO; count.max(1)],
        }
    }

    fn index(&self, p: ProcessorId) -> usize {
        (p.node.0 * self.processors_per_node + p.local) as usize
    }

    /// Records that processor `p` was busy for `amount`, finishing at `until`.
    pub fn record_busy(&mut self, p: ProcessorId, amount: Duration, until: SimTime) {
        let idx = self.index(p);
        self.busy[idx] += amount;
        if until > self.last_active[idx] {
            self.last_active[idx] = until;
        }
    }

    /// Total busy time of processor `p`.
    pub fn busy(&self, p: ProcessorId) -> Duration {
        self.busy[self.index(p)]
    }

    /// Total busy time across all processors.
    pub fn total_busy(&self) -> Duration {
        self.busy.iter().copied().sum()
    }

    /// Total busy time across the processors of `node`.
    pub fn node_busy(&self, node: NodeId) -> Duration {
        (0..self.processors_per_node)
            .map(|local| self.busy(ProcessorId::new(node, local)))
            .sum()
    }

    /// Average utilization over all processors for an execution that lasted
    /// `makespan` (1.0 means every processor was busy the whole time).
    /// Returns 0 for a zero makespan.
    pub fn utilization(&self, makespan: Duration) -> f64 {
        if makespan.is_zero() || self.busy.is_empty() {
            return 0.0;
        }
        let total = self.total_busy().as_secs_f64();
        total / (makespan.as_secs_f64() * self.busy.len() as f64)
    }

    /// Aggregate idle time: `processors * makespan - total busy`.
    pub fn total_idle(&self, makespan: Duration) -> Duration {
        let capacity = makespan * self.busy.len() as u64;
        capacity.saturating_sub(self.total_busy())
    }

    /// Number of processors tracked.
    pub fn processors(&self) -> usize {
        self.busy.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_time_accumulates_per_processor() {
        let mut acc = CpuAccounting::new(2, 4);
        let p = ProcessorId::new(NodeId::new(1), 2);
        acc.record_busy(p, Duration::from_millis(5), SimTime::from_nanos(5_000_000));
        acc.record_busy(p, Duration::from_millis(3), SimTime::from_nanos(9_000_000));
        assert_eq!(acc.busy(p), Duration::from_millis(8));
        assert_eq!(acc.total_busy(), Duration::from_millis(8));
        assert_eq!(acc.node_busy(NodeId::new(1)), Duration::from_millis(8));
        assert_eq!(acc.node_busy(NodeId::new(0)), Duration::ZERO);
        assert_eq!(acc.processors(), 8);
    }

    #[test]
    fn utilization_and_idle() {
        let mut acc = CpuAccounting::new(1, 2);
        let makespan = Duration::from_millis(10);
        acc.record_busy(
            ProcessorId::new(NodeId::new(0), 0),
            Duration::from_millis(10),
            SimTime::from_nanos(10_000_000),
        );
        acc.record_busy(
            ProcessorId::new(NodeId::new(0), 1),
            Duration::from_millis(5),
            SimTime::from_nanos(10_000_000),
        );
        let util = acc.utilization(makespan);
        assert!((util - 0.75).abs() < 1e-9);
        assert_eq!(acc.total_idle(makespan), Duration::from_millis(5));
        assert_eq!(acc.utilization(Duration::ZERO), 0.0);
    }
}
