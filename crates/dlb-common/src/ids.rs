//! Strongly-typed identifiers used throughout the workspace.
//!
//! Every entity of the simulated hierarchical system (SM-nodes, processors,
//! disks, worker threads) and of the query layer (relations, operators,
//! pipeline chains, queries, buckets) is referenced by a small copyable
//! newtype rather than a bare integer. This keeps function signatures
//! self-documenting and prevents the classic "swapped the node id and the
//! processor id" class of bugs.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index backing this identifier.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                Self(raw as u32)
            }
        }
    };
}

id_type!(
    /// Identifier of a shared-memory multiprocessor node (SM-node).
    NodeId
);
id_type!(
    /// Identifier of a base or intermediate relation.
    RelationId
);
id_type!(
    /// Identifier of an operator in a parallel execution plan
    /// (scan, build or probe).
    OperatorId
);
id_type!(
    /// Identifier of a maximum pipeline chain within an operator tree.
    PipelineChainId
);
id_type!(
    /// Identifier of a generated query.
    QueryId
);
id_type!(
    /// Identifier of a hash bucket of the building/probing relations.
    BucketId
);

/// Identifier of a processor, qualified by the SM-node that owns it.
///
/// Processors are local to a node: `ProcessorId { node: 1, local: 3 }` is the
/// fourth processor of the second SM-node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessorId {
    /// The SM-node owning the processor.
    pub node: NodeId,
    /// Index of the processor within its node.
    pub local: u32,
}

impl ProcessorId {
    /// Creates a processor identifier.
    pub const fn new(node: NodeId, local: u32) -> Self {
        Self { node, local }
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}.{}", self.node.0, self.local)
    }
}

/// Identifier of a worker thread. The execution model allocates exactly one
/// worker thread per processor per query, so a thread identifier mirrors a
/// [`ProcessorId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId {
    /// The SM-node owning the thread.
    pub node: NodeId,
    /// Index of the thread within its node (equals the processor index).
    pub local: u32,
}

impl ThreadId {
    /// Creates a thread identifier.
    pub const fn new(node: NodeId, local: u32) -> Self {
        Self { node, local }
    }

    /// The processor this thread is pinned to.
    pub const fn processor(self) -> ProcessorId {
        ProcessorId {
            node: self.node,
            local: self.local,
        }
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.node.0, self.local)
    }
}

/// Identifier of a disk unit, qualified by the SM-node that owns it.
///
/// The evaluation configuration of the paper attaches one disk per processor,
/// but the storage layer supports any number of disks per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DiskId {
    /// The SM-node owning the disk.
    pub node: NodeId,
    /// Index of the disk within its node.
    pub local: u32,
}

impl DiskId {
    /// Creates a disk identifier.
    pub const fn new(node: NodeId, local: u32) -> Self {
        Self { node, local }
    }
}

impl fmt::Display for DiskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}.{}", self.node.0, self.local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn id_round_trip() {
        let n = NodeId::new(7);
        assert_eq!(n.index(), 7);
        assert_eq!(NodeId::from(7usize), n);
        assert_eq!(NodeId::from(7u32), n);
        assert_eq!(format!("{n}"), "NodeId(7)");
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just exercise hashing and
        // ordering so the derives are covered.
        let mut set = HashSet::new();
        for i in 0..10u32 {
            set.insert(OperatorId::new(i));
        }
        assert_eq!(set.len(), 10);
        assert!(OperatorId::new(1) < OperatorId::new(2));
    }

    #[test]
    fn processor_and_thread_ids_display() {
        let p = ProcessorId::new(NodeId::new(2), 5);
        assert_eq!(format!("{p}"), "P2.5");
        let t = ThreadId::new(NodeId::new(2), 5);
        assert_eq!(format!("{t}"), "T2.5");
        assert_eq!(t.processor(), p);
        let d = DiskId::new(NodeId::new(0), 1);
        assert_eq!(format!("{d}"), "D0.1");
    }

    #[test]
    fn thread_is_pinned_to_matching_processor() {
        for node in 0..4u32 {
            for local in 0..8u32 {
                let t = ThreadId::new(NodeId::new(node), local);
                assert_eq!(t.processor().node, NodeId::new(node));
                assert_eq!(t.processor().local, local);
            }
        }
    }
}
