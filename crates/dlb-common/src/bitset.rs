//! A fixed-capacity bitset over `u64` words.
//!
//! The engine's hot scans — steal-candidate selection, end-of-operator
//! sweeps — iterate "every live operator" many times per simulated run. A
//! dense index set over machine words turns those scans from `O(total ops)`
//! with a per-op branch into a walk over the set bits only, one cache line
//! per 512 indices (cf. the bitset used by CeresDB's `common_types`).
//!
//! Iteration order is **ascending index order**, which callers rely on for
//! determinism: replacing a `for i in 0..n` scan with a bitset walk visits
//! the surviving candidates in exactly the same order.

/// A fixed-capacity set of `usize` indices backed by `u64` words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of indices currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no index is set.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Grows the capacity to hold indices `0..capacity` (never shrinks).
    pub fn grow(&mut self, capacity: usize) {
        let words = capacity.div_ceil(64);
        if words > self.words.len() {
            self.words.resize(words, 0);
        }
    }

    /// Inserts `index`; returns `true` when it was not already present.
    /// Grows the backing storage as needed.
    pub fn insert(&mut self, index: usize) -> bool {
        self.grow(index + 1);
        let (w, b) = (index / 64, index % 64);
        let mask = 1u64 << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        self.len += fresh as usize;
        fresh
    }

    /// Removes `index`; returns `true` when it was present.
    pub fn remove(&mut self, index: usize) -> bool {
        let (w, b) = (index / 64, index % 64);
        let Some(word) = self.words.get_mut(w) else {
            return false;
        };
        let mask = 1u64 << b;
        let present = *word & mask != 0;
        *word &= !mask;
        self.len -= present as usize;
        present
    }

    /// True when `index` is in the set.
    pub fn contains(&self, index: usize) -> bool {
        self.words
            .get(index / 64)
            .is_some_and(|w| w & (1u64 << (index % 64)) != 0)
    }

    /// Extracts the bits for indices `base..base + len` (with `len <= 64`)
    /// as one word: bit `j` of the result is set iff `base + j` is in the
    /// set. Indices past the backing storage read as zero.
    ///
    /// This is the hot-scan primitive: a contiguous id range (one query's
    /// operators, one node's threads) becomes a single word that can be
    /// intersected with other masks and walked bit by bit.
    pub fn extract_range(&self, base: usize, len: usize) -> u64 {
        debug_assert!(len <= 64, "extract_range covers at most one word");
        if len == 0 {
            return 0;
        }
        let (w, off) = (base / 64, base % 64);
        let mut x = self.words.get(w).copied().unwrap_or(0) >> off;
        if off != 0 {
            x |= self.words.get(w + 1).copied().unwrap_or(0) << (64 - off);
        }
        if len < 64 {
            x &= (1u64 << len) - 1;
        }
        x
    }

    /// Removes every index.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates the set indices in ascending order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = BitIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = BitSet::default();
        for i in iter {
            set.insert(i);
        }
        set
    }
}

/// Ascending-order iterator over a [`BitSet`].
#[derive(Debug, Clone)]
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_round_trip() {
        let mut s = BitSet::with_capacity(10);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(64));
        assert!(s.contains(3));
        assert!(s.contains(64));
        assert!(!s.contains(5));
        assert_eq!(s.len(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.remove(1000));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iterates_in_ascending_order_across_words() {
        let indices = [0usize, 1, 63, 64, 65, 127, 128, 300];
        let s: BitSet = indices.iter().copied().collect();
        let out: Vec<usize> = s.iter().collect();
        assert_eq!(out, indices);
    }

    #[test]
    fn matches_a_linear_scan_with_filter() {
        // The determinism contract: walking the set visits exactly the
        // indices a `(0..n).filter(..)` scan would, in the same order.
        let keep = |i: usize| i.is_multiple_of(3) || i.is_multiple_of(7);
        let n = 500;
        let s: BitSet = (0..n).filter(|&i| keep(i)).collect();
        let linear: Vec<usize> = (0..n).filter(|&i| keep(i)).collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), linear);
        assert_eq!(s.len(), linear.len());
    }

    #[test]
    fn extract_range_matches_contains() {
        let indices = [0usize, 1, 63, 64, 65, 127, 128, 300];
        let s: BitSet = indices.iter().copied().collect();
        for base in [0usize, 1, 60, 64, 100, 290, 400] {
            for len in [0usize, 1, 5, 64] {
                let word = s.extract_range(base, len);
                for j in 0..len {
                    assert_eq!(
                        word >> j & 1 == 1,
                        s.contains(base + j),
                        "base {base} len {len} bit {j}"
                    );
                }
            }
        }
        // Full-word extraction at an unaligned base.
        assert_eq!(s.extract_range(63, 64) & 0b111, 0b111);
    }

    #[test]
    fn clear_empties_and_capacity_is_reusable() {
        let mut s: BitSet = (0..100).collect();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        s.insert(99);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![99]);
    }
}
