//! Deterministic random-number helpers.
//!
//! Every stochastic choice in the workspace (query generation, cardinality
//! draws, selectivities, cost-model error distortion, skewed bucket
//! population) flows through a seeded [`rand::rngs::StdRng`] so that
//! workloads, plans and simulations are exactly reproducible from a single
//! `u64` seed. The helpers here derive independent sub-streams from a master
//! seed so that, e.g., changing the number of generated queries does not
//! perturb the skew applied to an unrelated relation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a new seed from a master seed and a stream label.
///
/// The derivation uses the SplitMix64 finalizer, which is enough to decorrelate
/// streams for simulation purposes (this is not a cryptographic construction).
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a deterministic RNG for a named sub-stream of a master seed.
pub fn stream_rng(master: u64, stream: u64) -> StdRng {
    rng_from_seed(derive_seed(master, stream))
}

/// Draws a value uniformly from `[lo, hi]` (inclusive bounds, `f64`).
pub fn uniform_f64<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if lo >= hi {
        return lo;
    }
    rng.random_range(lo..=hi)
}

/// Draws an integer uniformly from `[lo, hi]` inclusive.
pub fn uniform_u64<R: Rng>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    if lo >= hi {
        return lo;
    }
    rng.random_range(lo..=hi)
}

/// Applies a relative distortion drawn uniformly from `[-rate, +rate]` to a
/// value, never returning less than 1. Used to inject cost-model estimation
/// errors (paper §5.2.1, Figure 7).
pub fn distort<R: Rng>(rng: &mut R, value: f64, rate: f64) -> f64 {
    if rate <= 0.0 {
        return value.max(1.0);
    }
    let factor = 1.0 + uniform_f64(rng, -rate, rate);
    (value * factor).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_streams_differ() {
        let s1 = derive_seed(42, 1);
        let s2 = derive_seed(42, 2);
        assert_ne!(s1, s2);
        let mut a = stream_rng(42, 1);
        let mut b = stream_rng(42, 2);
        // Not a statistical test, just a sanity check that the streams are
        // not identical.
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = rng_from_seed(7);
        for _ in 0..1000 {
            let x = uniform_f64(&mut rng, 0.5, 1.5);
            assert!((0.5..=1.5).contains(&x));
            let y = uniform_u64(&mut rng, 10, 20);
            assert!((10..=20).contains(&y));
        }
        assert_eq!(uniform_u64(&mut rng, 5, 5), 5);
        assert_eq!(uniform_f64(&mut rng, 2.0, 2.0), 2.0);
    }

    #[test]
    fn distortion_stays_in_band() {
        let mut rng = rng_from_seed(11);
        for _ in 0..1000 {
            let v = distort(&mut rng, 1000.0, 0.3);
            assert!((700.0..=1300.0).contains(&v));
        }
        assert_eq!(distort(&mut rng, 1000.0, 0.0), 1000.0);
        // Distortion never produces a value below 1.
        assert!(distort(&mut rng, 0.5, 0.3) >= 1.0);
    }
}
