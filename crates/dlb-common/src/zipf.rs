//! Zipf distribution used to model data skew.
//!
//! The paper (§5.2.2) introduces *redistribution skew* in the production of
//! trigger activations and of pipelined tuples using a Zipf function
//! (Zipf '49) parameterized by a factor between 0 (no skew, uniform) and 1
//! (high skew). The same generator is reused for attribute-value and tuple
//! placement skew when populating relation partitions.

use serde::{Deserialize, Serialize};

/// A discrete Zipf-like distribution over `n` items with skew factor
/// `theta ∈ [0, 1]`.
///
/// The weight of item `i` (1-based) is `1 / i^theta`, normalized. With
/// `theta = 0` every item has weight `1/n` (uniform); with `theta = 1` the
/// weights follow the classical Zipf law where the first item receives a
/// share proportional to `1 / H_n`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipfDistribution {
    theta: f64,
    weights: Vec<f64>,
}

impl ZipfDistribution {
    /// Builds the distribution over `n` items with skew factor `theta`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not in `[0, 1]` (values slightly above
    /// 1 are accepted up to 2 for sensitivity studies, but negative or
    /// non-finite values are rejected).
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf distribution needs at least one item");
        assert!(
            theta.is_finite() && (0.0..=2.0).contains(&theta),
            "skew factor must be in [0, 2], got {theta}"
        );
        let mut weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        Self { theta, weights }
    }

    /// The skew factor this distribution was built with.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True if the distribution has a single item.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Normalized weight of item `i` (0-based).
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// All normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Splits `total` discrete units (e.g. tuples) across the items according
    /// to the distribution. The result always sums to `total` exactly: the
    /// largest item absorbs the rounding remainder, mirroring how real skewed
    /// partitioning concentrates the excess on the heaviest value.
    pub fn split(&self, total: u64) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .weights
            .iter()
            .map(|w| (w * total as f64).floor() as u64)
            .collect();
        let assigned: u64 = out.iter().sum();
        let remainder = total - assigned;
        if !out.is_empty() {
            out[0] += remainder;
        }
        out
    }

    /// Largest share of any single item (the "hot" fraction).
    pub fn max_weight(&self) -> f64 {
        self.weights.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = ZipfDistribution::new(10, 0.0);
        for i in 0..10 {
            assert!((z.weight(i) - 0.1).abs() < 1e-12);
        }
        assert_eq!(z.len(), 10);
        assert!(!z.is_empty());
    }

    #[test]
    fn skewed_when_theta_one() {
        let z = ZipfDistribution::new(10, 1.0);
        // Weights must be strictly decreasing.
        for i in 1..10 {
            assert!(z.weight(i) < z.weight(i - 1));
        }
        // First item share equals 1 / H_10.
        let h10: f64 = (1..=10).map(|i| 1.0 / i as f64).sum();
        assert!((z.weight(0) - 1.0 / h10).abs() < 1e-12);
        assert!(z.max_weight() > 0.3);
    }

    #[test]
    fn weights_sum_to_one() {
        for theta in [0.0, 0.2, 0.5, 0.8, 1.0] {
            let z = ZipfDistribution::new(37, theta);
            let sum: f64 = z.weights().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "theta={theta} sum={sum}");
        }
    }

    #[test]
    fn split_conserves_total() {
        for theta in [0.0, 0.4, 0.8, 1.0] {
            let z = ZipfDistribution::new(64, theta);
            for total in [0u64, 1, 63, 64, 1000, 123_457] {
                let parts = z.split(total);
                assert_eq!(parts.iter().sum::<u64>(), total, "theta={theta}");
                assert_eq!(parts.len(), 64);
            }
        }
    }

    #[test]
    fn higher_theta_concentrates_more() {
        let low = ZipfDistribution::new(100, 0.2);
        let high = ZipfDistribution::new(100, 0.9);
        assert!(high.max_weight() > low.max_weight());
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        let _ = ZipfDistribution::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "skew factor")]
    fn negative_theta_rejected() {
        let _ = ZipfDistribution::new(4, -0.1);
    }
}
