//! Configuration of the simulated hierarchical machine and of the cost model.
//!
//! The evaluation section of the paper (§5.1.1) publishes the simulation
//! parameters used on top of the KSR1: CPU speed, network costs and disk
//! costs. Those exact values are the defaults here. Per-tuple CPU costs are
//! not published by the paper; [`CostConstants`] documents the values chosen
//! (in line with contemporaneous work such as DBS3 and Gamma) and every value
//! can be overridden for sensitivity studies.

use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// Page size used throughout the system (bytes). The paper charges network
/// CPU cost per 8 KB message and uses 8 KB pages for I/O.
pub const PAGE_SIZE_BYTES: u64 = 8 * 1024;

/// CPU characteristics of one processor of an SM-node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuParams {
    /// Processor speed in millions of instructions per second.
    /// The KSR1 processors of the paper are 40 MIPS.
    pub mips: f64,
}

impl Default for CpuParams {
    fn default() -> Self {
        Self { mips: 40.0 }
    }
}

impl CpuParams {
    /// Converts an instruction count into virtual time on this processor.
    pub fn instructions(&self, instr: u64) -> Duration {
        // instr / (mips * 1e6) seconds.
        Duration::from_secs_f64(instr as f64 / (self.mips * 1e6))
    }
}

/// Interconnection-network parameters (paper §5.1.1, first table).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkParams {
    /// Network bandwidth in bytes per second. `None` models the paper's
    /// "infinite" bandwidth assumption (transmission time is negligible
    /// compared to the end-to-end delay and the per-message CPU cost).
    pub bandwidth_bytes_per_sec: Option<f64>,
    /// End-to-end transmission delay for one message.
    pub end_to_end_delay: Duration,
    /// CPU cost, in instructions, for sending one 8 KB message.
    pub send_instr_per_page: u64,
    /// CPU cost, in instructions, for receiving one 8 KB message.
    pub recv_instr_per_page: u64,
}

impl Default for NetworkParams {
    fn default() -> Self {
        Self {
            bandwidth_bytes_per_sec: None,
            end_to_end_delay: Duration::from_micros(500),
            send_instr_per_page: 10_000,
            recv_instr_per_page: 10_000,
        }
    }
}

impl NetworkParams {
    /// Number of 8 KB pages needed to carry `bytes` (at least one).
    pub fn pages_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(PAGE_SIZE_BYTES).max(1)
    }

    /// Pure wire time for a message of `bytes` (zero with infinite bandwidth).
    pub fn transmission_time(&self, bytes: u64) -> Duration {
        match self.bandwidth_bytes_per_sec {
            None => Duration::ZERO,
            Some(bw) => Duration::from_secs_f64(bytes as f64 / bw),
        }
    }

    /// CPU instructions charged to the sender for a message of `bytes`.
    pub fn send_instructions(&self, bytes: u64) -> u64 {
        self.pages_for(bytes) * self.send_instr_per_page
    }

    /// CPU instructions charged to the receiver for a message of `bytes`.
    pub fn recv_instructions(&self, bytes: u64) -> u64 {
        self.pages_for(bytes) * self.recv_instr_per_page
    }
}

/// Disk parameters (paper §5.1.1, second table).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskParams {
    /// Number of disks attached to each processor.
    pub disks_per_processor: u32,
    /// Rotational latency per random access.
    pub latency: Duration,
    /// Seek time per random access.
    pub seek_time: Duration,
    /// Sequential transfer rate in bytes per second.
    pub transfer_rate_bytes_per_sec: f64,
    /// CPU cost, in instructions, to initiate one asynchronous I/O.
    pub async_io_init_instr: u64,
    /// Size of the I/O cache (read-ahead window) in pages.
    pub io_cache_pages: u32,
}

impl Default for DiskParams {
    fn default() -> Self {
        Self {
            disks_per_processor: 1,
            latency: Duration::from_millis(17),
            seek_time: Duration::from_millis(5),
            transfer_rate_bytes_per_sec: 6.0 * 1024.0 * 1024.0,
            async_io_init_instr: 5_000,
            io_cache_pages: 8,
        }
    }
}

impl DiskParams {
    /// Transfer time for `pages` 8 KB pages, excluding latency and seek.
    pub fn transfer_time(&self, pages: u64) -> Duration {
        Duration::from_secs_f64((pages * PAGE_SIZE_BYTES) as f64 / self.transfer_rate_bytes_per_sec)
    }

    /// Total service time of one random access reading `pages` contiguous
    /// pages: latency + seek + transfer.
    pub fn access_time(&self, pages: u64) -> Duration {
        self.latency + self.seek_time + self.transfer_time(pages)
    }
}

/// Shape of the simulated hierarchical machine: how many SM-nodes and how many
/// processors (and disks) per node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of shared-memory nodes.
    pub nodes: u32,
    /// Number of processors per node (one worker thread each).
    pub processors_per_node: u32,
    /// Shared memory available on each node, in bytes. Used by the global
    /// load-balancing policy (a requester can only acquire activations and
    /// hash tables it can store in memory).
    pub memory_per_node_bytes: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        // The configuration the paper is "primarily interested in": a few
        // powerful SM-nodes (4 x 8 is the base hierarchical configuration of
        // §5.3).
        Self {
            nodes: 4,
            processors_per_node: 8,
            memory_per_node_bytes: 512 * 1024 * 1024,
        }
    }
}

impl MachineConfig {
    /// A single shared-memory node with `processors` processors (the
    /// configuration of the local load-balancing experiments, §5.2).
    pub fn shared_memory(processors: u32) -> Self {
        Self {
            nodes: 1,
            processors_per_node: processors,
            ..Self::default()
        }
    }

    /// A hierarchical system of `nodes` SM-nodes with `processors_per_node`
    /// processors each (e.g. `hierarchical(4, 8)` for the paper's 4×8).
    pub fn hierarchical(nodes: u32, processors_per_node: u32) -> Self {
        Self {
            nodes,
            processors_per_node,
            ..Self::default()
        }
    }

    /// Total number of processors in the machine.
    pub fn total_processors(&self) -> u32 {
        self.nodes * self.processors_per_node
    }
}

/// Per-tuple and per-structure CPU costs, in instructions.
///
/// The paper does not publish its per-tuple costs (the operators are
/// simulated); these defaults follow the cost models of DBS3/Gamma-era papers
/// (Mehta '95, Shekita '93): a few hundred instructions per tuple per
/// operation on a 40 MIPS processor. `EXPERIMENTS.md` shows the figure shapes
/// are robust to ±2× changes of these values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostConstants {
    /// Bytes per tuple (used to convert cardinalities into pages and bytes).
    pub tuple_bytes: u64,
    /// Instructions to read one tuple out of an I/O buffer and evaluate the
    /// scan predicate.
    pub scan_tuple_instr: u64,
    /// Instructions to insert one tuple into a hash table (build).
    pub build_tuple_instr: u64,
    /// Instructions to probe one tuple against a hash table.
    pub probe_tuple_instr: u64,
    /// Instructions to form one result tuple after a successful probe.
    pub result_tuple_instr: u64,
    /// Instructions to enqueue or dequeue one activation on an activation
    /// queue (queue-management overhead of the DP model).
    pub queue_access_instr: u64,
    /// Additional interference penalty paid when a thread consumes from a
    /// queue that is not one of its primary queues (shared-memory
    /// contention).
    pub interference_instr: u64,
    /// Instructions to start an operator instance on a node (start-up cost;
    /// kept small because the DP model has no per-operator process start-up).
    pub operator_startup_instr: u64,
    /// Instructions for the scheduler to handle one control message.
    pub control_message_instr: u64,
    /// Number of tuples carried by one data-activation batch. The paper
    /// increases the granularity of data activations by buffering; this is
    /// that buffer size.
    pub tuples_per_batch: u64,
}

impl Default for CostConstants {
    fn default() -> Self {
        Self {
            tuple_bytes: 100,
            scan_tuple_instr: 200,
            build_tuple_instr: 100,
            probe_tuple_instr: 200,
            result_tuple_instr: 100,
            queue_access_instr: 300,
            interference_instr: 150,
            operator_startup_instr: 5_000,
            control_message_instr: 1_000,
            tuples_per_batch: 128,
        }
    }
}

impl CostConstants {
    /// Number of 8 KB pages occupied by `tuples` tuples.
    pub fn pages_for_tuples(&self, tuples: u64) -> u64 {
        let tuples_per_page = (PAGE_SIZE_BYTES / self.tuple_bytes).max(1);
        tuples.div_ceil(tuples_per_page).max(1)
    }

    /// Number of bytes occupied by `tuples` tuples.
    pub fn bytes_for_tuples(&self, tuples: u64) -> u64 {
        tuples * self.tuple_bytes
    }

    /// Tuples that fit in one page.
    pub fn tuples_per_page(&self) -> u64 {
        (PAGE_SIZE_BYTES / self.tuple_bytes).max(1)
    }
}

/// Complete configuration of one simulated system: machine shape, hardware
/// parameters and cost constants.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Machine shape (nodes × processors).
    pub machine: MachineConfig,
    /// Processor parameters.
    pub cpu: CpuParams,
    /// Network parameters.
    pub network: NetworkParams,
    /// Disk parameters.
    pub disk: DiskParams,
    /// Cost-model constants.
    pub costs: CostConstants,
}

impl SystemConfig {
    /// A single SM-node with `processors` processors, all other parameters at
    /// their paper defaults.
    pub fn shared_memory(processors: u32) -> Self {
        Self {
            machine: MachineConfig::shared_memory(processors),
            ..Self::default()
        }
    }

    /// A hierarchical system of `nodes` × `processors_per_node`, all other
    /// parameters at their paper defaults.
    pub fn hierarchical(nodes: u32, processors_per_node: u32) -> Self {
        Self {
            machine: MachineConfig::hierarchical(nodes, processors_per_node),
            ..Self::default()
        }
    }

    /// Converts instructions into time on one of this system's processors.
    pub fn instr(&self, instructions: u64) -> Duration {
        self.cpu.instructions(instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_for_instructions() {
        let cpu = CpuParams { mips: 40.0 };
        // 40 million instructions per second => 40 000 instructions per ms.
        assert_eq!(cpu.instructions(40_000), Duration::from_millis(1));
        assert_eq!(cpu.instructions(0), Duration::ZERO);
    }

    #[test]
    fn network_defaults_match_paper() {
        let net = NetworkParams::default();
        assert_eq!(net.end_to_end_delay, Duration::from_micros(500));
        assert_eq!(net.send_instr_per_page, 10_000);
        assert_eq!(net.recv_instr_per_page, 10_000);
        assert!(net.bandwidth_bytes_per_sec.is_none());
        assert_eq!(net.transmission_time(1 << 20), Duration::ZERO);
    }

    #[test]
    fn network_message_costs_scale_with_pages() {
        let net = NetworkParams::default();
        assert_eq!(net.pages_for(1), 1);
        assert_eq!(net.pages_for(PAGE_SIZE_BYTES), 1);
        assert_eq!(net.pages_for(PAGE_SIZE_BYTES + 1), 2);
        assert_eq!(net.send_instructions(PAGE_SIZE_BYTES * 3), 30_000);
        assert_eq!(net.recv_instructions(PAGE_SIZE_BYTES * 3), 30_000);
    }

    #[test]
    fn finite_bandwidth_transmission() {
        let net = NetworkParams {
            bandwidth_bytes_per_sec: Some(1e6),
            ..NetworkParams::default()
        };
        assert_eq!(net.transmission_time(1_000_000), Duration::from_secs(1));
    }

    #[test]
    fn disk_defaults_match_paper() {
        let d = DiskParams::default();
        assert_eq!(d.latency, Duration::from_millis(17));
        assert_eq!(d.seek_time, Duration::from_millis(5));
        assert_eq!(d.disks_per_processor, 1);
        assert_eq!(d.io_cache_pages, 8);
        assert_eq!(d.async_io_init_instr, 5_000);
        // 6 MB/s => one 8 KB page takes ~1.3 ms.
        let t = d.transfer_time(1);
        assert!(t > Duration::from_micros(1_000) && t < Duration::from_micros(1_500));
        assert_eq!(d.access_time(0), d.latency + d.seek_time);
    }

    #[test]
    fn machine_config_helpers() {
        let sm = MachineConfig::shared_memory(64);
        assert_eq!(sm.nodes, 1);
        assert_eq!(sm.total_processors(), 64);
        let h = MachineConfig::hierarchical(4, 16);
        assert_eq!(h.total_processors(), 64);
    }

    #[test]
    fn cost_constants_pages_and_bytes() {
        let c = CostConstants::default();
        assert_eq!(c.tuples_per_page(), 81); // 8192 / 100
        assert_eq!(c.pages_for_tuples(0), 1);
        assert_eq!(c.pages_for_tuples(81), 1);
        assert_eq!(c.pages_for_tuples(82), 2);
        assert_eq!(c.bytes_for_tuples(10), 1_000);
    }

    #[test]
    fn system_config_builders() {
        let s = SystemConfig::shared_memory(32);
        assert_eq!(s.machine.nodes, 1);
        assert_eq!(s.machine.processors_per_node, 32);
        let h = SystemConfig::hierarchical(4, 12);
        assert_eq!(h.machine.total_processors(), 48);
        assert_eq!(h.instr(40_000), Duration::from_millis(1));
    }
}
