//! Workspace error type.

use std::fmt;

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, DlbError>;

/// Errors produced by the hierdb crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DlbError {
    /// A configuration value is invalid (zero processors, empty home, ...).
    InvalidConfig(String),
    /// A query or plan is structurally invalid (cycle in the schedule,
    /// operator referencing an unknown relation, ...).
    InvalidPlan(String),
    /// A referenced entity does not exist in the catalog.
    NotFound(String),
    /// The execution engine reached an inconsistent state. This indicates a
    /// bug in the engine rather than bad user input.
    ExecutionError(String),
    /// A textual input (JSON scenario spec, configuration file) could not be
    /// parsed.
    Parse(String),
}

impl fmt::Display for DlbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlbError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DlbError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            DlbError::NotFound(msg) => write!(f, "not found: {msg}"),
            DlbError::ExecutionError(msg) => write!(f, "execution error: {msg}"),
            DlbError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for DlbError {}

impl DlbError {
    /// Builds an [`DlbError::InvalidConfig`] from anything displayable.
    pub fn config(msg: impl fmt::Display) -> Self {
        DlbError::InvalidConfig(msg.to_string())
    }

    /// Builds an [`DlbError::InvalidPlan`] from anything displayable.
    pub fn plan(msg: impl fmt::Display) -> Self {
        DlbError::InvalidPlan(msg.to_string())
    }

    /// Builds an [`DlbError::NotFound`] from anything displayable.
    pub fn not_found(msg: impl fmt::Display) -> Self {
        DlbError::NotFound(msg.to_string())
    }

    /// Builds an [`DlbError::ExecutionError`] from anything displayable.
    pub fn exec(msg: impl fmt::Display) -> Self {
        DlbError::ExecutionError(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        assert_eq!(
            DlbError::config("no processors").to_string(),
            "invalid configuration: no processors"
        );
        assert_eq!(DlbError::plan("cycle").to_string(), "invalid plan: cycle");
        assert_eq!(
            DlbError::not_found("relation R").to_string(),
            "not found: relation R"
        );
        assert_eq!(
            DlbError::exec("queue corrupt").to_string(),
            "execution error: queue corrupt"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        let e = DlbError::config("x");
        takes_err(&e);
    }
}
