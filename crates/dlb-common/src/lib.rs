//! # dlb-common
//!
//! Shared building blocks for the `hierdb` workspace, a reproduction of
//! *Bouganim, Florescu, Valduriez — "Dynamic Load Balancing in Hierarchical
//! Parallel Database Systems"* (VLDB 1996 / INRIA RR-2815).
//!
//! This crate holds everything that more than one subsystem needs and that is
//! independent of the simulation, storage and execution layers:
//!
//! * strongly-typed identifiers for nodes, processors, disks, threads,
//!   relations, operators and queries ([`ids`]),
//! * the virtual-time representation used by the discrete-event simulator
//!   ([`time`]),
//! * the configuration of the simulated hierarchical machine and of the cost
//!   model ([`config`]),
//! * the Zipf skew generator used to model redistribution / attribute-value
//!   skew ([`zipf`]),
//! * deterministic random-number helpers ([`rng`]),
//! * dense index sets ([`bitset`]) and a stable-key arena ([`slab`]) for the
//!   engine's allocation-free hot paths,
//! * a minimal JSON model, parser and writer ([`json`]) — the real `serde`
//!   is unavailable offline, so textual round-trips go through this,
//! * the workspace error type ([`error`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitset;
pub mod config;
pub mod error;
pub mod ids;
pub mod json;
pub mod rng;
pub mod slab;
pub mod time;
pub mod zipf;

pub use bitset::BitSet;
pub use config::{
    CostConstants, CpuParams, DiskParams, MachineConfig, NetworkParams, SystemConfig,
};
pub use error::{DlbError, Result};
pub use ids::{
    BucketId, DiskId, NodeId, OperatorId, PipelineChainId, ProcessorId, QueryId, RelationId,
    ThreadId,
};
pub use json::Json;
pub use slab::Slab;
pub use time::{Duration, SimTime};
pub use zipf::ZipfDistribution;
