//! A minimal JSON document model, parser and writer.
//!
//! The workspace's `serde` is an offline no-op shim (see `crates/shims/`), so
//! anything that must actually round-trip through text — scenario spec files,
//! machine-readable result emission — goes through this module instead. The
//! model is deliberately small: a [`Json`] tree, a strict recursive-descent
//! [`Json::parse`], and a deterministic writer ([`Json::pretty`] /
//! `Display`). Object member order is preserved, so writing a parsed document
//! reproduces it structurally.
//!
//! Numbers are kept as either [`Json::Int`] (no decimal point or exponent in
//! the source) or [`Json::Float`]; the numeric accessors coerce between the
//! two, so `"scale": 1` and `"scale": 1.0` are interchangeable for readers.

use crate::error::{DlbError, Result};
use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without decimal point or exponent.
    Int(i64),
    /// A number with decimal point or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; member order is preserved.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document (one value, optionally surrounded by
    /// whitespace).
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Member lookup on an object (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, coercing integers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a signed integer (floats only when exactly integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the canonical on-disk form of scenario spec files.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => write_float(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind)
            }),
            Json::Object(members) => {
                write_seq(out, indent, '{', '}', members.len(), |out, i, ind| {
                    let (k, v) = &members[i];
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, ind);
                })
            }
        }
    }
}

impl fmt::Display for Json {
    /// Compact single-line form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        match indent {
            Some(level) => {
                out.push('\n');
                out.push_str(&"  ".repeat(level + 1));
                item(out, i, Some(level + 1));
            }
            None => {
                if i > 0 {
                    out.push(' ');
                }
                item(out, i, None);
            }
        }
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

/// Floats always carry a decimal point or exponent so they reparse as
/// [`Json::Float`] (Rust's shortest-round-trip `{}` formatting never uses
/// exponents and drops the point on integral values, including ones past
/// `i64::MAX` that would otherwise fail to reparse — append `.0` there).
fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/inf; null is the conventional degradation.
        out.push_str("null");
    } else {
        let text = format!("{f}");
        out.push_str(&text);
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 64;

impl Parser<'_> {
    fn error(&self, msg: &str) -> DlbError {
        DlbError::Parse(format!("json: {msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.eat(b'{', "expected '{'")?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
        self.depth -= 1;
        Ok(Json::Object(members))
    }

    fn array(&mut self) -> Result<Json> {
        self.eat(b'[', "expected '['")?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
        self.depth -= 1;
        Ok(Json::Array(items))
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos = end;
                            // Surrogate pairs are not needed for spec files;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at the byte we
                    // consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.error("invalid UTF-8"))?;
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|chunk| std::str::from_utf8(chunk).ok())
                        .ok_or_else(|| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.error("integer out of range"))
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

/// Convenience constructors used by hand-rolled serializers.
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        i64::try_from(v)
            .map(Json::Int)
            .unwrap_or(Json::Float(v as f64))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::from(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Int(v as i64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Array(v)
    }
}

/// Builds a [`Json::Object`] from `(key, value)` pairs (order preserved).
pub fn object(members: Vec<(&str, Json)>) -> Json {
    Json::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("0.5").unwrap(), Json::Float(0.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures_preserving_order() {
        let doc = r#"{"b": [1, 2.5, "x"], "a": {"inner": null}}"#;
        let v = Json::parse(doc).unwrap();
        let members = v.as_object().unwrap();
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().get("inner"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"open", "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn pretty_output_reparses_identically() {
        let v = object(vec![
            ("name", Json::from("skew — sweep")),
            ("values", Json::Array(vec![Json::Float(0.0), Json::Int(2)])),
            ("nested", object(vec![("k", Json::Bool(false))])),
            ("empty", Json::Array(vec![])),
        ]);
        let text = v.pretty();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Compact form round-trips too.
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn floats_keep_their_floatness_across_round_trips() {
        for v in [
            Json::Float(1.0),
            Json::Float(0.30000000000000004),
            // Large integral floats: `{}` formats these without a decimal
            // point, and the one past i64::MAX would not even reparse as an
            // integer.
            Json::Float(1e16),
            Json::Float(1e19),
            Json::Float(-1e19),
        ] {
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{v}");
        }
    }

    #[test]
    fn numeric_accessors_coerce() {
        assert_eq!(Json::Int(3).as_f64(), Some(3.0));
        assert_eq!(Json::Float(3.0).as_u64(), Some(3));
        assert_eq!(Json::Float(3.5).as_i64(), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::from(u64::MAX), Json::Float(u64::MAX as f64));
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Json::Str("héllo §5.3 — ∑".to_string());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
