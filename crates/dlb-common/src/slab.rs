//! A slab allocator: stable `u32` keys into a reusable arena.
//!
//! Hot structures of the simulation (calendar entries, in-flight
//! activations) are inserted and removed constantly; allocating each one on
//! the heap — or moving large payloads through a `BinaryHeap`'s sift
//! operations — dominates the event loop. A slab stores the payloads in one
//! contiguous `Vec`, hands out the *index* as a stable key, and recycles
//! vacated slots through a free list, so steady-state operation allocates
//! nothing and ordering structures move 4-byte keys instead of payloads.
//!
//! A key stays valid — and is never handed out again — until it is
//! explicitly [`remove`](Slab::remove)d; the property harness pins exactly
//! that invariant.

/// A growable arena with stable keys and slot reuse after removal.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty slab with room for `capacity` live entries before
    /// reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever allocated (live + vacant). The high-water mark of
    /// concurrent liveness.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Inserts `value`, returning its stable key. Vacant slots are reused
    /// (most recently vacated first); the key is never handed out again
    /// until `value` is removed.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        match self.free.pop() {
            Some(key) => {
                debug_assert!(self.slots[key as usize].is_none(), "free slot was live");
                self.slots[key as usize] = Some(value);
                key
            }
            None => {
                let key = u32::try_from(self.slots.len()).expect("slab key overflow");
                self.slots.push(Some(value));
                key
            }
        }
    }

    /// Removes and returns the entry under `key`; `None` when the slot is
    /// vacant (or the key was never issued).
    pub fn remove(&mut self, key: u32) -> Option<T> {
        let value = self.slots.get_mut(key as usize)?.take()?;
        self.free.push(key);
        self.len -= 1;
        Some(value)
    }

    /// Borrows the entry under `key`.
    pub fn get(&self, key: u32) -> Option<&T> {
        self.slots.get(key as usize)?.as_ref()
    }

    /// Mutably borrows the entry under `key`.
    pub fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        self.slots.get_mut(key as usize)?.as_mut()
    }

    /// True when `key` addresses a live entry.
    pub fn contains(&self, key: u32) -> bool {
        self.get(key).is_some()
    }

    /// Drops every entry (retaining the backing storage).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab: Slab<&str> = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_ne!(a, b);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.remove(a), None);
        assert!(!slab.contains(a));
        assert!(slab.contains(b));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn vacated_slots_are_reused_lifo() {
        let mut slab: Slab<u32> = Slab::new();
        let keys: Vec<u32> = (0..4).map(|i| slab.insert(i)).collect();
        slab.remove(keys[1]);
        slab.remove(keys[3]);
        // Most recently vacated first, and no fresh slot while one is free.
        assert_eq!(slab.insert(10), keys[3]);
        assert_eq!(slab.insert(11), keys[1]);
        assert_eq!(slab.capacity(), 4);
        assert_eq!(slab.insert(12), 4);
    }

    #[test]
    fn capacity_tracks_peak_liveness_not_throughput() {
        let mut slab: Slab<u64> = Slab::new();
        for i in 0..10_000u64 {
            let k = slab.insert(i);
            assert_eq!(slab.remove(k), Some(i));
        }
        // One slot serviced all ten thousand inserts.
        assert_eq!(slab.capacity(), 1);
        assert!(slab.is_empty());
    }
}
