//! Virtual time used by the discrete-event simulator.
//!
//! All experiments of the paper are reported in response time measured on the
//! KSR1. In this reproduction the hierarchical machine is simulated, so time
//! is *virtual*: a monotonically increasing counter of nanoseconds advanced by
//! the event calendar. Using integer nanoseconds keeps event ordering exact
//! and the simulation fully deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        Duration((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: f64) -> Duration {
        Duration((self.0 as f64 * rhs).round().max(0.0) as u64)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant of virtual time (nanoseconds since the start of the simulation).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since the origin as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since an earlier instant (saturating).
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", Duration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1_000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1_000));
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1_000));
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_millis(3);
        let b = Duration::from_millis(2);
        assert_eq!(a + b, Duration::from_millis(5));
        assert_eq!(a - b, Duration::from_millis(1));
        assert_eq!(b.saturating_sub(a), Duration::ZERO);
        assert_eq!(a * 2, Duration::from_millis(6));
        assert_eq!(a / 3, Duration::from_millis(1));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: Duration = vec![a, b, b].into_iter().sum();
        assert_eq!(total, Duration::from_millis(7));
    }

    #[test]
    fn duration_float_scaling_rounds() {
        let d = Duration::from_nanos(10);
        assert_eq!(d * 1.5, Duration::from_nanos(15));
        assert_eq!(d * 0.0, Duration::ZERO);
    }

    #[test]
    fn simtime_advances_and_diffs() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + Duration::from_millis(10);
        assert_eq!(t1.since(t0), Duration::from_millis(10));
        assert_eq!(t0.since(t1), Duration::ZERO);
        assert_eq!(t1 - t0, Duration::from_millis(10));
        let mut t = t0;
        t += Duration::from_secs(1);
        assert_eq!(t.as_secs_f64(), 1.0);
        assert_eq!(t.max(t1), t);
        assert_eq!(t.min(t1), t1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Duration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", Duration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_nanos(5)), "t=5ns");
    }
}
