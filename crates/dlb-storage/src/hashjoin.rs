//! Physical in-memory hash join over real tuples.
//!
//! The performance experiments of the paper simulate operators, but a usable
//! database library should also execute them. This module provides the
//! physical counterpart of the simulated build/probe operators: a bucketed
//! hash join over [`Tuple`]s that mirrors the paper's structure (both inputs
//! fragmented into the same buckets by the same hash function on the join
//! attribute, per-bucket hash tables, bucket-at-a-time probing). It is used
//! by examples and integration tests to validate join semantics end to end.

use crate::tuple::{Tuple, Value};
use std::collections::HashMap;

/// A bucketed hash table built over one join input.
#[derive(Debug, Clone)]
pub struct HashTable {
    key_column: usize,
    buckets: Vec<HashMap<Value, Vec<Tuple>>>,
}

impl HashTable {
    /// Builds the table over `tuples`, hashing `key_column` into `buckets`
    /// buckets (the degree of fragmentation).
    pub fn build(tuples: &[Tuple], key_column: usize, buckets: u32) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        let mut table = Self {
            key_column,
            buckets: vec![HashMap::new(); buckets as usize],
        };
        for t in tuples {
            table.insert(t.clone());
        }
        table
    }

    /// Inserts a single tuple (the physical equivalent of one build data
    /// activation).
    pub fn insert(&mut self, tuple: Tuple) {
        let key = tuple.value(self.key_column).clone();
        let bucket = key.bucket(self.buckets.len() as u32) as usize;
        self.buckets[bucket].entry(key).or_default().push(tuple);
    }

    /// Number of buckets.
    pub fn buckets(&self) -> u32 {
        self.buckets.len() as u32
    }

    /// Total number of tuples stored.
    pub fn len(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| b.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// True when the table holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probes one tuple, joining on `probe_key_column`, and appends the
    /// concatenated result tuples to `out`. Returns the number of matches.
    pub fn probe_into(
        &self,
        probe: &Tuple,
        probe_key_column: usize,
        out: &mut Vec<Tuple>,
    ) -> usize {
        let key = probe.value(probe_key_column);
        let bucket = key.bucket(self.buckets.len() as u32) as usize;
        match self.buckets[bucket].get(key) {
            None => 0,
            Some(matches) => {
                out.extend(matches.iter().map(|m| m.concat(probe)));
                matches.len()
            }
        }
    }
}

/// Joins `build_side` and `probe_side` on the given key columns using a
/// bucketed hash join, returning the concatenated result tuples
/// (build attributes first, as in the operator-tree convention).
pub fn hash_join(
    build_side: &[Tuple],
    build_key: usize,
    probe_side: &[Tuple],
    probe_key: usize,
    buckets: u32,
) -> Vec<Tuple> {
    let table = HashTable::build(build_side, build_key, buckets);
    let mut out = Vec::new();
    for t in probe_side {
        table.probe_into(t, probe_key, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_tuples, reference_join_count};
    use crate::relation::{RelationDef, SizeClass};
    use dlb_common::RelationId;

    fn t(key: i64, tag: &str) -> Tuple {
        Tuple::new(vec![Value::Int(key), Value::Str(tag.into())])
    }

    #[test]
    fn joins_matching_keys_only() {
        let build = vec![t(1, "b1"), t(2, "b2"), t(2, "b2bis")];
        let probe = vec![t(2, "p1"), t(3, "p2"), t(1, "p3")];
        let out = hash_join(&build, 0, &probe, 0, 4);
        // key 2 matches twice, key 1 once, key 3 never.
        assert_eq!(out.len(), 3);
        for result in &out {
            assert_eq!(result.arity(), 4);
            assert_eq!(result.value(0), result.value(2), "keys must match");
        }
    }

    #[test]
    fn empty_inputs_produce_empty_output() {
        assert!(hash_join(&[], 0, &[t(1, "x")], 0, 8).is_empty());
        assert!(hash_join(&[t(1, "x")], 0, &[], 0, 8).is_empty());
        let table = HashTable::build(&[], 0, 8);
        assert!(table.is_empty());
        assert_eq!(table.buckets(), 8);
    }

    #[test]
    fn incremental_build_matches_bulk_build() {
        let tuples = vec![t(5, "a"), t(6, "b"), t(5, "c")];
        let bulk = HashTable::build(&tuples, 0, 16);
        let mut incremental = HashTable::build(&[], 0, 16);
        for tup in &tuples {
            incremental.insert(tup.clone());
        }
        assert_eq!(bulk.len(), incremental.len());
        let mut out_bulk = Vec::new();
        let mut out_inc = Vec::new();
        bulk.probe_into(&t(5, "probe"), 0, &mut out_bulk);
        incremental.probe_into(&t(5, "probe"), 0, &mut out_inc);
        assert_eq!(out_bulk.len(), 2);
        assert_eq!(out_inc.len(), 2);
    }

    #[test]
    fn result_count_matches_reference_nested_loop() {
        let r = RelationDef::new(RelationId::new(0), "R", 2_000, SizeClass::Small).with_skew(0.6);
        let s = RelationDef::new(RelationId::new(1), "S", 3_000, SizeClass::Small);
        let r_tuples = generate_tuples(&r, 200, 42);
        let s_tuples = generate_tuples(&s, 200, 43);
        let expected = reference_join_count(&r_tuples, &s_tuples);
        let joined = hash_join(&r_tuples, 0, &s_tuples, 0, 64);
        assert_eq!(joined.len() as u64, expected);
    }

    #[test]
    fn bucket_count_does_not_change_the_result() {
        let r = RelationDef::new(RelationId::new(0), "R", 500, SizeClass::Small);
        let s = RelationDef::new(RelationId::new(1), "S", 700, SizeClass::Small);
        let r_tuples = generate_tuples(&r, 50, 1);
        let s_tuples = generate_tuples(&s, 50, 2);
        let few = hash_join(&r_tuples, 0, &s_tuples, 0, 2);
        let many = hash_join(&r_tuples, 0, &s_tuples, 0, 512);
        assert_eq!(few.len(), many.len());
    }
}
