//! Relation definitions.
//!
//! The workload generator of the paper (§5.1.2) draws relation cardinalities
//! from three size classes: small (10 K–20 K tuples), medium (100 K–200 K) and
//! large (1 M–2 M). A [`RelationDef`] records the logical description of a
//! base relation: its name, cardinality, size class and the skew of its join
//! attribute, from which partition and bucket layouts are derived.

use crate::tuple::Schema;
use dlb_common::config::CostConstants;
use dlb_common::RelationId;
use serde::{Deserialize, Serialize};

/// The three cardinality classes of the paper's workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SizeClass {
    /// 10 000 – 20 000 tuples.
    Small,
    /// 100 000 – 200 000 tuples.
    Medium,
    /// 1 000 000 – 2 000 000 tuples.
    Large,
}

impl SizeClass {
    /// Inclusive cardinality range of this class at full (paper) scale.
    pub fn range(self) -> (u64, u64) {
        match self {
            SizeClass::Small => (10_000, 20_000),
            SizeClass::Medium => (100_000, 200_000),
            SizeClass::Large => (1_000_000, 2_000_000),
        }
    }

    /// All classes, in increasing size order.
    pub fn all() -> [SizeClass; 3] {
        [SizeClass::Small, SizeClass::Medium, SizeClass::Large]
    }
}

/// Logical definition of a base relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationDef {
    /// Identifier of the relation.
    pub id: RelationId,
    /// Human-readable name ("R0", "R1", ... in generated workloads).
    pub name: String,
    /// Number of tuples.
    pub cardinality: u64,
    /// Size class the cardinality was drawn from.
    pub size_class: SizeClass,
    /// Skew factor (Zipf theta) of the join-attribute value distribution.
    /// Zero means uniform. This drives attribute-value and redistribution
    /// skew downstream.
    pub attribute_skew: f64,
    /// Schema of the relation (a key attribute plus a payload attribute by
    /// default).
    pub schema: Schema,
}

impl RelationDef {
    /// Creates a relation definition with a default two-attribute schema.
    pub fn new(
        id: RelationId,
        name: impl Into<String>,
        cardinality: u64,
        class: SizeClass,
    ) -> Self {
        let name = name.into();
        let schema = Schema::new(vec![format!("{name}_key"), format!("{name}_payload")]);
        Self {
            id,
            name,
            cardinality,
            size_class: class,
            attribute_skew: 0.0,
            schema,
        }
    }

    /// Sets the attribute skew factor (builder style).
    pub fn with_skew(mut self, theta: f64) -> Self {
        self.attribute_skew = theta;
        self
    }

    /// Size of the relation in bytes, under the given cost constants.
    pub fn bytes(&self, costs: &CostConstants) -> u64 {
        costs.bytes_for_tuples(self.cardinality)
    }

    /// Size of the relation in 8 KB pages, under the given cost constants.
    pub fn pages(&self, costs: &CostConstants) -> u64 {
        costs.pages_for_tuples(self.cardinality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_ranges_match_paper() {
        assert_eq!(SizeClass::Small.range(), (10_000, 20_000));
        assert_eq!(SizeClass::Medium.range(), (100_000, 200_000));
        assert_eq!(SizeClass::Large.range(), (1_000_000, 2_000_000));
        assert_eq!(SizeClass::all().len(), 3);
    }

    #[test]
    fn relation_def_sizes() {
        let costs = CostConstants::default();
        let r = RelationDef::new(RelationId::new(0), "R", 81 * 10, SizeClass::Small);
        assert_eq!(r.bytes(&costs), 81_000);
        assert_eq!(r.pages(&costs), 10);
        assert_eq!(r.schema.arity(), 2);
        assert_eq!(r.schema.attributes()[0], "R_key");
        assert_eq!(r.attribute_skew, 0.0);
        let skewed = r.with_skew(0.8);
        assert_eq!(skewed.attribute_skew, 0.8);
    }
}
