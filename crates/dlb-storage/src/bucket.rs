//! Bucket-level fragmentation for parallel hash joins.
//!
//! Both relations of a hash join are fragmented into the same number of
//! buckets by the same hash function applied to the join attribute (§2.1).
//! The *degree of fragmentation* is chosen much higher than the degree of
//! parallelism to reduce the effect of skew (§3.1, "Fragmentation"), and the
//! execution model mixes activations of different buckets in the same queue.
//!
//! A [`BucketMap`] describes how many tuples of a relation (or of an operator
//! output) fall into each bucket, optionally skewed with a Zipf distribution —
//! this is the redistribution skew of §5.2.2.

use dlb_common::{BucketId, ZipfDistribution};
use serde::{Deserialize, Serialize};

/// Default ratio between the degree of fragmentation and the degree of
/// parallelism. The paper only states the degree of fragmentation should be
/// "much higher" than the number of processors; 8× is used throughout the
/// harness and can be overridden.
pub const DEFAULT_FRAGMENTATION_FACTOR: u32 = 8;

/// Tuple counts per hash bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketMap {
    tuples: Vec<u64>,
}

impl BucketMap {
    /// Splits `total` tuples across `buckets` buckets with redistribution skew
    /// `theta` (0 = uniform, 1 = strongly skewed Zipf).
    pub fn skewed(buckets: u32, total: u64, theta: f64) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        let zipf = ZipfDistribution::new(buckets as usize, theta);
        Self {
            tuples: zipf.split(total),
        }
    }

    /// Splits `total` tuples uniformly across `buckets` buckets.
    pub fn uniform(buckets: u32, total: u64) -> Self {
        Self::skewed(buckets, total, 0.0)
    }

    /// Creates a bucket map from explicit counts.
    pub fn from_counts(tuples: Vec<u64>) -> Self {
        assert!(!tuples.is_empty(), "need at least one bucket");
        Self { tuples }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> u32 {
        self.tuples.len() as u32
    }

    /// Tuples in bucket `b`.
    pub fn tuples_in(&self, b: BucketId) -> u64 {
        self.tuples.get(b.index()).copied().unwrap_or(0)
    }

    /// Total tuples across all buckets.
    pub fn total(&self) -> u64 {
        self.tuples.iter().sum()
    }

    /// Iterates over `(bucket, tuples)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (BucketId, u64)> + '_ {
        self.tuples
            .iter()
            .enumerate()
            .filter(|(_, &t)| t > 0)
            .map(|(i, &t)| (BucketId::from(i), t))
    }

    /// Largest bucket size.
    pub fn max_bucket(&self) -> u64 {
        self.tuples.iter().copied().max().unwrap_or(0)
    }

    /// Ratio of the largest bucket to the average bucket (1.0 = uniform).
    pub fn imbalance(&self) -> f64 {
        let total = self.total() as f64;
        if total == 0.0 || self.tuples.is_empty() {
            return 1.0;
        }
        self.max_bucket() as f64 / (total / self.tuples.len() as f64)
    }

    /// Scales every bucket by `factor` (used to derive the bucket map of an
    /// operator output from its input, e.g. after applying a selectivity).
    /// Conserves `round(total * factor)` tuples up to per-bucket rounding.
    pub fn scaled(&self, factor: f64) -> BucketMap {
        BucketMap {
            tuples: self
                .tuples
                .iter()
                .map(|&t| ((t as f64) * factor).round().max(0.0) as u64)
                .collect(),
        }
    }
}

/// Recommended degree of fragmentation for a given degree of parallelism.
pub fn fragmentation_degree(parallelism: u32, factor: u32) -> u32 {
    (parallelism * factor).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_buckets_are_even() {
        let m = BucketMap::uniform(8, 800);
        assert_eq!(m.buckets(), 8);
        assert_eq!(m.total(), 800);
        for b in 0..8u32 {
            assert_eq!(m.tuples_in(BucketId::new(b)), 100);
        }
        assert!((m.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_buckets_conserve_total_and_are_unbalanced() {
        let m = BucketMap::skewed(64, 100_000, 0.8);
        assert_eq!(m.total(), 100_000);
        assert!(m.imbalance() > 3.0, "imbalance {}", m.imbalance());
        assert!(m.max_bucket() > 100_000 / 64);
    }

    #[test]
    fn iter_skips_empty_buckets() {
        let m = BucketMap::from_counts(vec![5, 0, 3, 0]);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(BucketId::new(0), 5), (BucketId::new(2), 3)]);
        assert_eq!(m.tuples_in(BucketId::new(7)), 0, "out of range is zero");
    }

    #[test]
    fn scaling_applies_selectivity() {
        let m = BucketMap::from_counts(vec![100, 200, 300]);
        let half = m.scaled(0.5);
        assert_eq!(half.total(), 300);
        assert_eq!(half.tuples_in(BucketId::new(2)), 150);
        let none = m.scaled(0.0);
        assert_eq!(none.total(), 0);
        assert_eq!(none.imbalance(), 1.0);
    }

    #[test]
    fn fragmentation_degree_scales_with_parallelism() {
        assert_eq!(fragmentation_degree(8, DEFAULT_FRAGMENTATION_FACTOR), 64);
        assert_eq!(fragmentation_degree(0, 8), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _ = BucketMap::uniform(0, 10);
    }
}
