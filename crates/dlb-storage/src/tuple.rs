//! Minimal physical tuple representation.
//!
//! The execution models of the paper are evaluated with simulated operators,
//! so the engines in `dlb-exec` work on tuple *counts*. Physical tuples are
//! still useful to demonstrate the public API on real data (examples,
//! integration tests and the in-memory hash-join utilities), so this module
//! provides a deliberately small schema/tuple/value model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit integer value (join keys are integers throughout the paper's
    /// workload).
    Int(i64),
    /// Variable-length string value.
    Str(String),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Hash-partitioning bucket of this value among `buckets` buckets.
    pub fn bucket(&self, buckets: u32) -> u32 {
        debug_assert!(buckets > 0);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() % buckets as u64) as u32
    }

    /// Returns the integer payload if this value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

/// Description of the attributes of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<String>,
}

impl Schema {
    /// Creates a schema from attribute names.
    pub fn new<S: Into<String>>(attributes: Vec<S>) -> Self {
        Self {
            attributes: attributes.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute names.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Position of an attribute by name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == name)
    }

    /// Concatenates two schemas (used to form join output schemas).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut attributes = self.attributes.clone();
        attributes.extend(other.attributes.iter().cloned());
        Schema { attributes }
    }
}

/// A physical tuple: a flat vector of values matching a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at position `i`.
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Concatenates two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Tuple { values }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_basics() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(format!("{}", Value::Int(7)), "7");
        assert_eq!(format!("{}", Value::Str("a".into())), "'a'");
        assert_eq!(format!("{}", Value::Null), "NULL");
    }

    #[test]
    fn value_bucketing_is_stable_and_in_range() {
        for i in 0..100i64 {
            let v = Value::Int(i);
            let b = v.bucket(16);
            assert!(b < 16);
            assert_eq!(b, v.bucket(16), "bucketing must be deterministic");
        }
    }

    #[test]
    fn equal_values_bucket_together() {
        assert_eq!(Value::Int(42).bucket(64), Value::Int(42).bucket(64));
        assert_eq!(
            Value::Str("key".into()).bucket(8),
            Value::Str("key".into()).bucket(8)
        );
    }

    #[test]
    fn schema_operations() {
        let r = Schema::new(vec!["r_key", "r_payload"]);
        let s = Schema::new(vec!["s_key", "s_payload"]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.position("r_payload"), Some(1));
        assert_eq!(r.position("missing"), None);
        let joined = r.join(&s);
        assert_eq!(joined.arity(), 4);
        assert_eq!(joined.attributes()[2], "s_key");
    }

    #[test]
    fn tuple_operations() {
        let t1 = Tuple::new(vec![Value::Int(1), Value::Str("a".into())]);
        let t2 = Tuple::new(vec![Value::Int(2)]);
        assert_eq!(t1.arity(), 2);
        assert_eq!(t1.value(0), &Value::Int(1));
        let joined = t1.concat(&t2);
        assert_eq!(joined.arity(), 3);
        assert_eq!(joined.values()[2], Value::Int(2));
        assert_eq!(format!("{t1}"), "(1, 'a')");
    }
}
