//! # dlb-storage
//!
//! Relation storage for the hierdb workspace: schemas and tuples, horizontal
//! hash partitioning of relations across SM-nodes and disks, bucket-level
//! fragmentation for parallel hash joins, data placement (relation *homes*)
//! and the catalog tying it all together.
//!
//! The paper's evaluation does not depend on relation *content*: partition and
//! bucket sizes (possibly skewed) are what drive execution. This crate
//! therefore describes relations both **statistically** (cardinalities split
//! into per-node partitions and per-bucket fragments, with optional Zipf
//! skew) and — for examples, tests and small-scale real execution —
//! **physically** (synthetic tuple generation with attribute-value skew).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bucket;
pub mod catalog;
pub mod generator;
pub mod hashjoin;
pub mod partition;
pub mod rehome;
pub mod relation;
pub mod tuple;

pub use bucket::BucketMap;
pub use catalog::Catalog;
pub use hashjoin::{hash_join, HashTable};
pub use partition::{PartitionLayout, RelationHome};
pub use rehome::{RehomeOutcome, RehomePolicy};
pub use relation::{RelationDef, SizeClass};
pub use tuple::{Schema, Tuple, Value};
