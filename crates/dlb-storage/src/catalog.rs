//! Catalog: the registry of relations, their layouts and homes.

use crate::partition::{PartitionLayout, RelationHome};
use crate::relation::RelationDef;
use dlb_common::{DlbError, NodeId, RelationId, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The catalog of one database instance: every base relation with its
/// definition and physical layout.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    relations: BTreeMap<u32, (RelationDef, PartitionLayout)>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a relation and its layout. Replaces any previous entry with
    /// the same id.
    pub fn register(&mut self, def: RelationDef, layout: PartitionLayout) {
        self.relations.insert(def.id.0, (def, layout));
    }

    /// Registers a relation fully partitioned (unskewed) across `nodes` nodes
    /// with `disks_per_node` disks each — the evaluation assumption of the
    /// paper.
    pub fn register_fully_partitioned(
        &mut self,
        def: RelationDef,
        nodes: u32,
        disks_per_node: u32,
    ) {
        let layout =
            PartitionLayout::compute(&def, RelationHome::all_nodes(nodes), disks_per_node, 0.0);
        self.register(def, layout);
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Looks up a relation definition.
    pub fn relation(&self, id: RelationId) -> Result<&RelationDef> {
        self.relations
            .get(&id.0)
            .map(|(def, _)| def)
            .ok_or_else(|| DlbError::not_found(format!("relation {id}")))
    }

    /// Looks up a relation layout.
    pub fn layout(&self, id: RelationId) -> Result<&PartitionLayout> {
        self.relations
            .get(&id.0)
            .map(|(_, layout)| layout)
            .ok_or_else(|| DlbError::not_found(format!("relation {id}")))
    }

    /// Home of a relation.
    pub fn home(&self, id: RelationId) -> Result<&RelationHome> {
        Ok(self.layout(id)?.home())
    }

    /// Iterates over all relations in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelationDef, &PartitionLayout)> {
        self.relations.values().map(|(d, l)| (d, l))
    }

    /// Total base-data volume in tuples.
    pub fn total_tuples(&self) -> u64 {
        self.relations
            .values()
            .map(|(def, _)| def.cardinality)
            .sum()
    }

    /// Tuples of all relations stored on `node`.
    pub fn tuples_on_node(&self, node: NodeId) -> u64 {
        self.relations
            .values()
            .map(|(_, layout)| layout.tuples_on(node))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::SizeClass;

    fn sample_catalog() -> Catalog {
        let mut cat = Catalog::new();
        for i in 0..3u32 {
            let def = RelationDef::new(
                RelationId::new(i),
                format!("R{i}"),
                1_000 * (i as u64 + 1),
                SizeClass::Small,
            );
            cat.register_fully_partitioned(def, 4, 2);
        }
        cat
    }

    #[test]
    fn register_and_lookup() {
        let cat = sample_catalog();
        assert_eq!(cat.len(), 3);
        assert!(!cat.is_empty());
        let r1 = cat.relation(RelationId::new(1)).unwrap();
        assert_eq!(r1.cardinality, 2_000);
        assert_eq!(cat.home(RelationId::new(1)).unwrap().len(), 4);
        assert!(cat.relation(RelationId::new(9)).is_err());
        assert!(cat.layout(RelationId::new(9)).is_err());
    }

    #[test]
    fn totals_and_node_volumes() {
        let cat = sample_catalog();
        assert_eq!(cat.total_tuples(), 6_000);
        // Fully partitioned without skew: each of 4 nodes holds 1/4.
        assert_eq!(cat.tuples_on_node(NodeId::new(0)), 1_500);
        assert_eq!(cat.tuples_on_node(NodeId::new(3)), 1_500);
        assert_eq!(cat.iter().count(), 3);
    }

    #[test]
    fn re_register_replaces() {
        let mut cat = sample_catalog();
        let def = RelationDef::new(RelationId::new(0), "R0", 42, SizeClass::Small);
        cat.register_fully_partitioned(def, 2, 1);
        assert_eq!(cat.len(), 3);
        assert_eq!(cat.relation(RelationId::new(0)).unwrap().cardinality, 42);
        assert_eq!(cat.home(RelationId::new(0)).unwrap().len(), 2);
    }
}
