//! Synthetic data generation.
//!
//! Generates physical tuples for a [`RelationDef`], with the join-attribute
//! values drawn from a Zipf distribution when the relation has attribute
//! skew. This is used by examples and integration tests that run real
//! in-memory joins; the performance experiments only need the statistical
//! description (cardinalities and bucket maps).

use crate::relation::RelationDef;
use crate::tuple::{Tuple, Value};
use dlb_common::rng::stream_rng;
use dlb_common::ZipfDistribution;
use rand::Rng;

/// Generates the physical tuples of `relation`.
///
/// * The key attribute takes values in `0..key_domain`, drawn Zipf-skewed with
///   the relation's `attribute_skew` (uniform when zero).
/// * The payload attribute is a small string derived from the tuple index.
///
/// Generation is deterministic for a given `(seed, relation id)`.
pub fn generate_tuples(relation: &RelationDef, key_domain: u64, seed: u64) -> Vec<Tuple> {
    assert!(key_domain > 0, "key domain must be non-empty");
    let mut rng = stream_rng(seed, relation.id.0 as u64);
    let zipf = ZipfDistribution::new(key_domain.min(10_000) as usize, relation.attribute_skew);
    let weights = zipf.weights();

    // Pre-compute a cumulative distribution for value draws.
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in weights {
        acc += w;
        cumulative.push(acc);
    }

    (0..relation.cardinality)
        .map(|i| {
            let u: f64 = rng.random_range(0.0..1.0);
            let idx = cumulative.partition_point(|&c| c < u);
            let key = (idx as u64).min(key_domain - 1) as i64;
            Tuple::new(vec![
                Value::Int(key),
                Value::Str(format!("{}-{}", relation.name, i)),
            ])
        })
        .collect()
}

/// Computes the exact number of matching pairs between two generated tuple
/// sets on their key attribute (a reference nested-loop count used to verify
/// hash-join implementations in tests).
pub fn reference_join_count(left: &[Tuple], right: &[Tuple]) -> u64 {
    use std::collections::HashMap;
    let mut counts: HashMap<i64, u64> = HashMap::new();
    for t in left {
        if let Some(k) = t.value(0).as_int() {
            *counts.entry(k).or_insert(0) += 1;
        }
    }
    right
        .iter()
        .filter_map(|t| t.value(0).as_int())
        .map(|k| counts.get(&k).copied().unwrap_or(0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::SizeClass;
    use dlb_common::RelationId;

    fn rel(card: u64, skew: f64) -> RelationDef {
        RelationDef::new(RelationId::new(1), "R", card, SizeClass::Small).with_skew(skew)
    }

    #[test]
    fn generates_requested_cardinality() {
        let tuples = generate_tuples(&rel(500, 0.0), 100, 7);
        assert_eq!(tuples.len(), 500);
        for t in &tuples {
            let k = t.value(0).as_int().unwrap();
            assert!((0..100).contains(&k));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_tuples(&rel(200, 0.5), 50, 99);
        let b = generate_tuples(&rel(200, 0.5), 50, 99);
        assert_eq!(a, b);
        let c = generate_tuples(&rel(200, 0.5), 50, 100);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn skewed_generation_concentrates_keys() {
        let uniform = generate_tuples(&rel(2_000, 0.0), 100, 3);
        let skewed = generate_tuples(&rel(2_000, 1.0), 100, 3);
        let max_freq = |tuples: &[Tuple]| {
            let mut counts = std::collections::HashMap::new();
            for t in tuples {
                *counts.entry(t.value(0).as_int().unwrap()).or_insert(0u64) += 1;
            }
            counts.values().copied().max().unwrap()
        };
        assert!(max_freq(&skewed) > 2 * max_freq(&uniform));
    }

    #[test]
    fn reference_join_count_matches_hand_computation() {
        let left = vec![
            Tuple::new(vec![Value::Int(1), Value::Str("a".into())]),
            Tuple::new(vec![Value::Int(1), Value::Str("b".into())]),
            Tuple::new(vec![Value::Int(2), Value::Str("c".into())]),
        ];
        let right = vec![
            Tuple::new(vec![Value::Int(1), Value::Str("x".into())]),
            Tuple::new(vec![Value::Int(3), Value::Str("y".into())]),
        ];
        assert_eq!(reference_join_count(&left, &right), 2);
        assert_eq!(reference_join_count(&right, &left), 2);
        assert_eq!(reference_join_count(&[], &right), 0);
    }
}
