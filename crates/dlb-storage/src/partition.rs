//! Horizontal partitioning of relations across SM-nodes and disks.
//!
//! Relations are horizontally partitioned across nodes and, within each node,
//! across disks (paper §2.1). Partitioning is based on a hash function applied
//! to the partitioning attribute; the *home* of a relation is the set of
//! SM-nodes storing its partitions. The evaluation assumes every relation is
//! fully partitioned across all SM-nodes; the layout type nevertheless
//! supports arbitrary homes so that operator homes (§2.2) can be exercised.
//!
//! Tuple-placement / attribute-value skew makes partitions unequal; this is
//! modelled by splitting the cardinality with a Zipf distribution over the
//! home nodes (and uniformly across the disks within a node, since the paper
//! attributes intra-node imbalance to bucket-level skew, not disk placement).

use crate::relation::RelationDef;
use dlb_common::config::CostConstants;
use dlb_common::{DiskId, NodeId, ZipfDistribution};
use serde::{Deserialize, Serialize};

/// The set of SM-nodes holding partitions of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationHome {
    nodes: Vec<NodeId>,
}

impl RelationHome {
    /// Creates a home from a list of nodes (deduplicated, order preserved).
    pub fn new(mut nodes: Vec<NodeId>) -> Self {
        let mut seen = std::collections::HashSet::new();
        nodes.retain(|n| seen.insert(*n));
        Self { nodes }
    }

    /// Home spanning nodes `0..nodes` (the "fully partitioned" assumption of
    /// the paper's evaluation).
    pub fn all_nodes(nodes: u32) -> Self {
        Self {
            nodes: (0..nodes).map(NodeId::new).collect(),
        }
    }

    /// Nodes of the home.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of nodes in the home.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the home is empty (an invalid configuration).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True when `node` belongs to this home.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node)
    }

    /// Intersection with another home (used for join operator homes).
    pub fn union(&self, other: &RelationHome) -> RelationHome {
        let mut nodes = self.nodes.clone();
        nodes.extend(other.nodes.iter().copied());
        RelationHome::new(nodes)
    }
}

/// Number of tuples of one relation stored on one node, split across disks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePartition {
    /// Node holding this partition.
    pub node: NodeId,
    /// Tuples per disk of the node (index = local disk id).
    pub tuples_per_disk: Vec<u64>,
}

impl NodePartition {
    /// Total tuples on this node.
    pub fn tuples(&self) -> u64 {
        self.tuples_per_disk.iter().sum()
    }

    /// Disk holding the largest share.
    pub fn max_disk_tuples(&self) -> u64 {
        self.tuples_per_disk.iter().copied().max().unwrap_or(0)
    }
}

/// The physical layout of one relation: how many tuples live on each node and
/// disk of its home.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionLayout {
    home: RelationHome,
    partitions: Vec<NodePartition>,
}

impl PartitionLayout {
    /// Computes the layout of `relation` over `home`, spreading tuples with a
    /// Zipf distribution of parameter `placement_skew` across home nodes
    /// (0 = perfectly balanced) and uniformly across `disks_per_node` disks.
    pub fn compute(
        relation: &RelationDef,
        home: RelationHome,
        disks_per_node: u32,
        placement_skew: f64,
    ) -> Self {
        assert!(
            !home.is_empty(),
            "relation home must contain at least one node"
        );
        assert!(disks_per_node > 0, "need at least one disk per node");
        let zipf = ZipfDistribution::new(home.len(), placement_skew);
        let per_node = zipf.split(relation.cardinality);
        let partitions = home
            .nodes()
            .iter()
            .zip(per_node)
            .map(|(&node, tuples)| {
                let uniform = ZipfDistribution::new(disks_per_node as usize, 0.0);
                NodePartition {
                    node,
                    tuples_per_disk: uniform.split(tuples),
                }
            })
            .collect();
        Self { home, partitions }
    }

    /// Assembles a layout from an explicit home and partition list (used by
    /// re-homing, which redistributes an existing layout rather than
    /// splitting a relation afresh).
    pub(crate) fn from_parts(home: RelationHome, partitions: Vec<NodePartition>) -> Self {
        Self { home, partitions }
    }

    /// The relation home.
    pub fn home(&self) -> &RelationHome {
        &self.home
    }

    /// Per-node partitions.
    pub fn partitions(&self) -> &[NodePartition] {
        &self.partitions
    }

    /// Tuples stored on `node` (zero if the node is not in the home).
    pub fn tuples_on(&self, node: NodeId) -> u64 {
        self.partitions
            .iter()
            .find(|p| p.node == node)
            .map(|p| p.tuples())
            .unwrap_or(0)
    }

    /// Tuples stored on a given disk.
    pub fn tuples_on_disk(&self, disk: DiskId) -> u64 {
        self.partitions
            .iter()
            .find(|p| p.node == disk.node)
            .and_then(|p| p.tuples_per_disk.get(disk.local as usize).copied())
            .unwrap_or(0)
    }

    /// Total tuples across all partitions (equals the relation cardinality).
    pub fn total_tuples(&self) -> u64 {
        self.partitions.iter().map(|p| p.tuples()).sum()
    }

    /// Pages stored on `node` under the given cost constants.
    pub fn pages_on(&self, node: NodeId, costs: &CostConstants) -> u64 {
        costs.pages_for_tuples(self.tuples_on(node))
    }

    /// Ratio of the largest node partition to the average (1.0 = perfectly
    /// balanced; larger = more placement skew).
    pub fn imbalance(&self) -> f64 {
        if self.partitions.is_empty() {
            return 1.0;
        }
        let total = self.total_tuples() as f64;
        if total == 0.0 {
            return 1.0;
        }
        let avg = total / self.partitions.len() as f64;
        let max = self
            .partitions
            .iter()
            .map(|p| p.tuples())
            .max()
            .unwrap_or(0) as f64;
        max / avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::SizeClass;
    use dlb_common::RelationId;

    fn rel(card: u64) -> RelationDef {
        RelationDef::new(RelationId::new(0), "R", card, SizeClass::Medium)
    }

    #[test]
    fn home_construction_and_membership() {
        let h = RelationHome::all_nodes(4);
        assert_eq!(h.len(), 4);
        assert!(h.contains(NodeId::new(3)));
        assert!(!h.contains(NodeId::new(4)));
        let dedup = RelationHome::new(vec![NodeId::new(1), NodeId::new(1), NodeId::new(2)]);
        assert_eq!(dedup.len(), 2);
        let u = dedup.union(&RelationHome::new(vec![NodeId::new(3)]));
        assert_eq!(u.len(), 3);
        assert!(!u.is_empty());
    }

    #[test]
    fn balanced_layout_conserves_and_splits_evenly() {
        let layout = PartitionLayout::compute(&rel(4_000), RelationHome::all_nodes(4), 2, 0.0);
        assert_eq!(layout.total_tuples(), 4_000);
        for node in 0..4 {
            assert_eq!(layout.tuples_on(NodeId::new(node)), 1_000);
            assert_eq!(
                layout.tuples_on_disk(DiskId::new(NodeId::new(node), 0)),
                500
            );
        }
        assert!((layout.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_layout_is_unbalanced_but_conserves() {
        let layout = PartitionLayout::compute(&rel(100_000), RelationHome::all_nodes(4), 1, 0.8);
        assert_eq!(layout.total_tuples(), 100_000);
        assert!(layout.imbalance() > 1.5, "imbalance {}", layout.imbalance());
    }

    #[test]
    fn nodes_outside_home_hold_nothing() {
        let home = RelationHome::new(vec![NodeId::new(0), NodeId::new(2)]);
        let layout = PartitionLayout::compute(&rel(1_000), home, 1, 0.0);
        assert_eq!(layout.tuples_on(NodeId::new(1)), 0);
        assert_eq!(layout.tuples_on(NodeId::new(0)), 500);
        assert_eq!(layout.tuples_on_disk(DiskId::new(NodeId::new(1), 0)), 0);
    }

    #[test]
    fn pages_on_node_uses_cost_constants() {
        let costs = CostConstants::default();
        let layout = PartitionLayout::compute(&rel(8_100), RelationHome::all_nodes(1), 1, 0.0);
        assert_eq!(layout.pages_on(NodeId::new(0), &costs), 100);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_home_rejected() {
        let _ = PartitionLayout::compute(&rel(10), RelationHome::new(vec![]), 1, 0.0);
    }
}
