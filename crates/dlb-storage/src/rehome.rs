//! Partition re-homing after a topology change.
//!
//! When an SM-node leaves the machine (failure or drain), every partition it
//! held — base-relation fragments as well as in-flight operator state such as
//! hash-table partitions — must move to the surviving nodes. Two classic
//! re-partitioning disciplines are provided, selected with [`RehomePolicy`]:
//!
//! * **Consistent hashing** — each key picks its survivor by
//!   highest-random-weight (rendezvous) hashing, so re-homing a second failed
//!   node moves only the dead node's keys and never reshuffles keys between
//!   survivors.
//! * **Range re-partitioning** — the dead node's keys are split into
//!   contiguous ranges assigned to the survivors in order, minimizing the
//!   number of distinct (source, destination) transfer streams at the cost of
//!   reshuffling when the survivor set changes again.
//!
//! Both are pure functions of `(key, survivor set)`, so the execution engine
//! and the storage layer re-home the same key to the same survivor without
//! coordination — and deterministically, which the co-simulated fault
//! injection of `dlb-exec` relies on for bit-identical replays.

use crate::partition::{NodePartition, PartitionLayout};
use dlb_common::NodeId;
use serde::{Deserialize, Serialize};

/// How the contents of a departed node are redistributed over the survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RehomePolicy {
    /// Highest-random-weight (rendezvous) hashing: minimal movement across
    /// successive topology changes.
    #[default]
    ConsistentHash,
    /// Contiguous range split over the survivors, in node order.
    Range,
}

impl RehomePolicy {
    /// Stable label used in scenario JSON and reports.
    pub fn label(&self) -> &'static str {
        match self {
            RehomePolicy::ConsistentHash => "consistent-hash",
            RehomePolicy::Range => "range",
        }
    }

    /// Parses a [`Self::label`] spelling.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "consistent-hash" => Some(RehomePolicy::ConsistentHash),
            "range" => Some(RehomePolicy::Range),
            _ => None,
        }
    }

    /// Picks the surviving node for item `key` of `total` keyed items being
    /// re-homed. `survivors` must be non-empty; the choice is a pure function
    /// of the inputs.
    ///
    /// Under [`RehomePolicy::Range`], `key` is interpreted as a position in
    /// `0..total` and mapped to a contiguous range per survivor; under
    /// [`RehomePolicy::ConsistentHash`], `total` is ignored and the key picks
    /// the survivor with the highest rendezvous weight.
    pub fn survivor(&self, key: u64, total: u64, survivors: &[NodeId]) -> NodeId {
        assert!(
            !survivors.is_empty(),
            "re-homing needs at least one survivor"
        );
        match self {
            RehomePolicy::ConsistentHash => *survivors
                .iter()
                .max_by_key(|n| mix64(key ^ mix64(n.index() as u64 + 1)))
                .expect("non-empty survivor set"),
            RehomePolicy::Range => {
                let total = total.max(1);
                let slot = ((key.min(total - 1) as u128 * survivors.len() as u128) / total as u128)
                    as usize;
                survivors[slot.min(survivors.len() - 1)]
            }
        }
    }
}

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixing function.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The outcome of re-homing one layout after a node departure: the new
/// layout plus the movement accounting the caller reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RehomeOutcome {
    /// The layout with the departed node's tuples folded into the survivors.
    pub layout: PartitionLayout,
    /// Tuples that moved off the departed node.
    pub moved_tuples: u64,
}

impl PartitionLayout {
    /// Re-homes this layout after `departed` leaves: its tuples are
    /// redistributed over the remaining home nodes according to `policy`
    /// (disk-uniform within each receiving node, like the initial layout).
    /// Returns `None` when the departed node held no partition of this
    /// layout, or when it was the layout's only home (nothing survives to
    /// receive the data — the caller must treat the partition as lost or
    /// re-create it elsewhere).
    pub fn rehome(&self, departed: NodeId, policy: RehomePolicy) -> Option<RehomeOutcome> {
        if !self.home().contains(departed) || self.home().len() < 2 {
            return None;
        }
        let survivors: Vec<NodeId> = self
            .home()
            .nodes()
            .iter()
            .copied()
            .filter(|&n| n != departed)
            .collect();
        let moved_tuples = self.tuples_on(departed);
        // Split the departed node's tuples into per-survivor shares: walk the
        // tuples in fixed-size units so both policies see a keyed stream.
        let mut share = vec![0u64; survivors.len()];
        const UNIT: u64 = 1 << 10;
        let units = moved_tuples.div_ceil(UNIT).max(1);
        let mut remaining = moved_tuples;
        for unit in 0..units {
            let chunk = remaining.min(UNIT);
            remaining -= chunk;
            let dest = policy.survivor(unit, units, &survivors);
            let slot = survivors.iter().position(|&n| n == dest).expect("survivor");
            share[slot] += chunk;
        }
        let partitions: Vec<NodePartition> = self
            .partitions()
            .iter()
            .filter(|p| p.node != departed)
            .map(|p| {
                let gained = share[survivors.iter().position(|&n| n == p.node).expect("home")];
                if gained == 0 {
                    return p.clone();
                }
                // Spread the gained tuples uniformly over the node's disks,
                // like the initial disk split.
                let disks = p.tuples_per_disk.len().max(1) as u64;
                let per_disk = gained / disks;
                let mut rem = gained - per_disk * disks;
                let tuples_per_disk = p
                    .tuples_per_disk
                    .iter()
                    .map(|&t| {
                        let extra = if rem > 0 {
                            rem -= 1;
                            1
                        } else {
                            0
                        };
                        t + per_disk + extra
                    })
                    .collect();
                NodePartition {
                    node: p.node,
                    tuples_per_disk,
                }
            })
            .collect();
        Some(RehomeOutcome {
            layout: PartitionLayout::from_parts(
                crate::partition::RelationHome::new(survivors),
                partitions,
            ),
            moved_tuples,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::RelationHome;
    use crate::relation::{RelationDef, SizeClass};
    use dlb_common::RelationId;

    fn layout(nodes: u32, card: u64) -> PartitionLayout {
        let rel = RelationDef::new(RelationId::new(0), "R", card, SizeClass::Medium);
        PartitionLayout::compute(&rel, RelationHome::all_nodes(nodes), 2, 0.0)
    }

    #[test]
    fn labels_round_trip() {
        for p in [RehomePolicy::ConsistentHash, RehomePolicy::Range] {
            assert_eq!(RehomePolicy::from_label(p.label()), Some(p));
        }
        assert_eq!(RehomePolicy::from_label("nope"), None);
        assert_eq!(RehomePolicy::default(), RehomePolicy::ConsistentHash);
    }

    #[test]
    fn survivor_choice_is_deterministic_and_in_set() {
        let survivors: Vec<NodeId> = [0usize, 2, 3].into_iter().map(NodeId::from).collect();
        for policy in [RehomePolicy::ConsistentHash, RehomePolicy::Range] {
            for key in 0..64 {
                let a = policy.survivor(key, 64, &survivors);
                let b = policy.survivor(key, 64, &survivors);
                assert_eq!(a, b, "{policy:?} key {key}");
                assert!(survivors.contains(&a));
            }
        }
    }

    #[test]
    fn consistent_hash_moves_only_the_departed_nodes_keys() {
        // Keys mapped to a survivor keep their placement when another node
        // leaves — the defining property of rendezvous hashing.
        let all: Vec<NodeId> = (0..4usize).map(NodeId::from).collect();
        let without_3: Vec<NodeId> = (0..3usize).map(NodeId::from).collect();
        let policy = RehomePolicy::ConsistentHash;
        for key in 0..256 {
            let before = policy.survivor(key, 256, &all);
            let after = policy.survivor(key, 256, &without_3);
            if before != NodeId::from(3usize) {
                assert_eq!(before, after, "key {key} reshuffled between survivors");
            } else {
                assert!(without_3.contains(&after));
            }
        }
    }

    #[test]
    fn range_policy_assigns_contiguous_blocks() {
        let survivors: Vec<NodeId> = [0usize, 1, 2].into_iter().map(NodeId::from).collect();
        let picks: Vec<NodeId> = (0..9)
            .map(|k| RehomePolicy::Range.survivor(k, 9, &survivors))
            .collect();
        // Three contiguous runs of three.
        assert_eq!(picks[0..3], [NodeId::from(0usize); 3]);
        assert_eq!(picks[3..6], [NodeId::from(1usize); 3]);
        assert_eq!(picks[6..9], [NodeId::from(2usize); 3]);
    }

    #[test]
    fn rehome_conserves_tuples_and_shrinks_the_home() {
        for policy in [RehomePolicy::ConsistentHash, RehomePolicy::Range] {
            let before = layout(4, 40_000);
            let dead = NodeId::from(1usize);
            let moved = before.tuples_on(dead);
            let out = before.rehome(dead, policy).expect("multi-node home");
            assert_eq!(out.moved_tuples, moved);
            assert_eq!(out.layout.total_tuples(), before.total_tuples());
            assert_eq!(out.layout.home().len(), 3);
            assert!(!out.layout.home().contains(dead));
            assert_eq!(out.layout.tuples_on(dead), 0);
            // Every survivor holds at least what it held before.
            for n in out.layout.home().nodes() {
                assert!(
                    out.layout.tuples_on(*n) >= before.tuples_on(*n),
                    "{policy:?}"
                );
            }
        }
    }

    #[test]
    fn rehome_of_foreign_or_last_node_is_none() {
        let single = layout(1, 1_000);
        assert!(single
            .rehome(NodeId::from(0usize), RehomePolicy::Range)
            .is_none());
        let multi = layout(2, 1_000);
        assert!(multi
            .rehome(NodeId::from(7usize), RehomePolicy::Range)
            .is_none());
    }
}
