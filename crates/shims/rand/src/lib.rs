//! Offline API-compatible stand-in for the parts of `rand` 0.9 this
//! workspace uses.
//!
//! The build environment has no crates.io access, so `StdRng` is implemented
//! here as **xoshiro256++** seeded through the SplitMix64 expander. The
//! sequences differ from the real `rand::rngs::StdRng` (ChaCha12), but every
//! consumer in this workspace only relies on *determinism for a given seed*,
//! which this shim provides. The API mirrors rand 0.9 (`random`,
//! `random_range`, `random_bool`, `SeedableRng::seed_from_u64`,
//! `prelude::IndexedRandom::choose`) so the real crate can be swapped back in
//! with a manifest-only change.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing randomness helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard uniform distribution.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types sampleable from the standard uniform distribution.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges sampleable uniformly, mirroring `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps a uniform `u64` onto `[0, n)` with the widening-multiply technique.
#[inline]
fn bounded(raw: u64, n: u64) -> u64 {
    ((raw as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng.next_u64(), span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardUniform>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardUniform>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Construction of RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256++ (Blackman/Vigna),
    /// seeded via the SplitMix64 expander. Deterministic for a given seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Stand-in for `rand::rngs::SmallRng` (same engine as the shim StdRng).
    pub type SmallRng = StdRng;
}

/// Slice helpers, mirroring `rand::seq::IndexedRandom`.
pub mod seq {
    use super::RngCore;

    /// Random selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = super::bounded(rng.next_u64(), self.len() as u64) as usize;
                Some(&self[idx])
            }
        }
    }
}

/// Non-uniform distributions, mirroring the subset of `rand_distr` this
/// workspace uses for arrival processes.
pub mod distr {
    use super::{RngCore, StandardUniform};

    /// A distribution sampleable with any RNG, mirroring
    /// `rand::distr::Distribution`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// The exponential distribution `Exp(λ)` via inversion: with `U` uniform
    /// in `[0, 1)`, `-ln(1 - U) / λ` is exponential with rate `λ`. Mean is
    /// `1/λ`, variance `1/λ²` — the inter-arrival law of a Poisson process.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Exp {
        lambda: f64,
    }

    impl Exp {
        /// Creates an exponential distribution with rate `lambda` (events per
        /// unit time). `lambda` must be finite and strictly positive.
        pub fn new(lambda: f64) -> Result<Self, &'static str> {
            if lambda.is_finite() && lambda > 0.0 {
                Ok(Self { lambda })
            } else {
                Err("Exp rate must be finite and > 0")
            }
        }

        /// The rate parameter `λ`.
        pub fn lambda(&self) -> f64 {
            self.lambda
        }
    }

    impl Distribution<f64> for Exp {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            let u = f64::sample(rng); // in [0, 1), so 1 - u is in (0, 1]
            -(1.0 - u).ln() / self.lambda
        }
    }

    /// The geometric distribution on `{0, 1, 2, …}`: the number of failures
    /// before the first success in Bernoulli(`p`) trials, sampled by
    /// inverting the exponential envelope (`⌊ln(1-U)/ln(1-p)⌋`). Mean is
    /// `(1-p)/p`, variance `(1-p)/p²`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Geometric {
        p: f64,
    }

    impl Geometric {
        /// Creates a geometric distribution with success probability `p` in
        /// `(0, 1]`.
        pub fn new(p: f64) -> Result<Self, &'static str> {
            if p.is_finite() && p > 0.0 && p <= 1.0 {
                Ok(Self { p })
            } else {
                Err("Geometric success probability must be in (0, 1]")
            }
        }

        /// The success probability `p`.
        pub fn p(&self) -> f64 {
            self.p
        }
    }

    impl Distribution<u64> for Geometric {
        fn sample<R: RngCore>(&self, rng: &mut R) -> u64 {
            if self.p >= 1.0 {
                return 0;
            }
            let u = f64::sample(rng);
            let draws = ((1.0 - u).ln() / (1.0 - self.p).ln()).floor();
            if draws >= u64::MAX as f64 {
                u64::MAX
            } else {
                draws as u64
            }
        }
    }
}

/// The usual glob import, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::distr::Distribution;
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::IndexedRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.random_range(10..=20);
            assert!((10..=20).contains(&y));
            let f: f64 = rng.random_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let g: f64 = rng.random_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&g));
            let i: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert_eq!((0..100).filter(|_| rng.random_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.random_bool(1.0)).count(), 100);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..256 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    /// Empirical mean and (population) variance of `n` draws.
    fn moments(samples: impl Iterator<Item = f64>) -> (f64, f64, usize) {
        let samples: Vec<f64> = samples.collect();
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        (mean, var, n)
    }

    #[test]
    fn exponential_matches_closed_form_moments() {
        // Exp(λ): mean 1/λ, variance 1/λ². 100k draws keep the sample mean
        // within a few percent of the closed form (std error ≈ 1/(λ√n)).
        for &lambda in &[0.5, 2.0, 40.0] {
            let exp = crate::distr::Exp::new(lambda).unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            let (mean, var, _) = moments((0..100_000).map(|_| exp.sample(&mut rng)));
            let m = 1.0 / lambda;
            assert!(
                (mean - m).abs() < 0.02 * m,
                "λ={lambda}: mean {mean} vs {m}"
            );
            let v = 1.0 / (lambda * lambda);
            assert!((var - v).abs() < 0.05 * v, "λ={lambda}: var {var} vs {v}");
        }
    }

    #[test]
    fn exponential_is_positive_and_deterministic() {
        let exp = crate::distr::Exp::new(3.0).unwrap();
        let mut a = StdRng::seed_from_u64(21);
        let mut b = StdRng::seed_from_u64(21);
        for _ in 0..1_000 {
            let x = exp.sample(&mut a);
            assert!(x >= 0.0 && x.is_finite());
            assert_eq!(x.to_bits(), exp.sample(&mut b).to_bits());
        }
        assert!(crate::distr::Exp::new(0.0).is_err());
        assert!(crate::distr::Exp::new(f64::INFINITY).is_err());
    }

    #[test]
    fn geometric_matches_closed_form_moments() {
        // Geometric(p) on {0,1,…}: mean (1-p)/p, variance (1-p)/p².
        for &p in &[0.1, 0.5, 0.9] {
            let geo = crate::distr::Geometric::new(p).unwrap();
            let mut rng = StdRng::seed_from_u64(13);
            let (mean, var, _) = moments((0..100_000).map(|_| geo.sample(&mut rng) as f64));
            let m = (1.0 - p) / p;
            assert!(
                (mean - m).abs() < 0.05 * m.max(0.05),
                "p={p}: mean {mean} vs {m}"
            );
            let v = (1.0 - p) / (p * p);
            assert!(
                (var - v).abs() < 0.08 * v.max(0.05),
                "p={p}: var {var} vs {v}"
            );
        }
    }

    #[test]
    fn geometric_degenerate_and_bounds() {
        let sure = crate::distr::Geometric::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..100 {
            assert_eq!(sure.sample(&mut rng), 0);
        }
        assert!(crate::distr::Geometric::new(0.0).is_err());
        assert!(crate::distr::Geometric::new(1.5).is_err());
    }
}
