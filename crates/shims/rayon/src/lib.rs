//! Offline API-compatible stand-in for the subset of `rayon` this workspace
//! uses.
//!
//! The build environment has no crates.io access, so this shim provides
//! `par_iter()` / `into_par_iter()` / `map` / `collect` over scoped OS
//! threads. Work is distributed **dynamically**: workers pull the next item
//! index from a shared atomic counter, so heterogeneous item costs (plans
//! whose simulations differ by orders of magnitude) balance across cores just
//! as they would under rayon's work stealing. `collect` is order-preserving —
//! results come back in item order regardless of which worker ran what, which
//! is what keeps parallel experiment runs bit-identical to sequential ones.
//!
//! Thread count resolution (first match wins):
//! 1. `ThreadPoolBuilder::new().num_threads(n).build_global()`,
//! 2. the `RAYON_NUM_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.

use std::panic;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Returns the number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    let configured = CONFIGURED_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Stand-in for `rayon::ThreadPoolBuilder` (only global configuration is
/// supported).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Starts building the global pool configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Installs the configuration globally. Unlike rayon, calling this more
    /// than once simply overwrites the previous configuration.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        CONFIGURED_THREADS.store(self.num_threads.unwrap_or(0), Ordering::Relaxed);
        Ok(())
    }
}

/// Error type of [`ThreadPoolBuilder::build_global`] (never produced by the
/// shim, present for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool already initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Worker threads currently spawned by in-flight parallel maps, across all
/// nesting levels. Nested maps (e.g. sweep points × plans) claim slots from
/// the same budget, so the configured thread count bounds the total spawned
/// threads instead of multiplying per level.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// RAII release of claimed worker slots (drop-safe under panics).
struct WorkerClaim(usize);

impl WorkerClaim {
    /// Claims up to `wanted` slots from the shared budget; returns `None`
    /// when the budget is exhausted (the caller then runs inline, which is
    /// itself the correct degradation: its parent worker already holds a
    /// slot). The claim is a single atomic compare-exchange, so simultaneous
    /// nested claims cannot each be granted the same remaining budget.
    fn take(wanted: usize) -> Option<WorkerClaim> {
        let budget = current_num_threads();
        let mut granted = 0usize;
        let claimed =
            ACTIVE_WORKERS.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |in_flight| {
                granted = budget.saturating_sub(in_flight).min(wanted);
                if granted <= 1 {
                    None
                } else {
                    Some(in_flight + granted)
                }
            });
        claimed.ok().map(|_| WorkerClaim(granted))
    }
}

impl Drop for WorkerClaim {
    fn drop(&mut self) {
        ACTIVE_WORKERS.fetch_sub(self.0, Ordering::Relaxed);
    }
}

/// Sets the shared stop flag when its worker unwinds, so sibling workers
/// abandon the map instead of completing every remaining item first.
struct StopOnPanic<'a>(&'a AtomicBool);

impl Drop for StopOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Relaxed);
        }
    }
}

/// Runs `f` over `0..n`, fanning out across worker threads with dynamic
/// (pull-based) distribution. Returns `(index, result)` pairs sorted by
/// index. `stop` inspects each result; once it returns `true` no *further*
/// indices are pulled (in-flight items still finish), mirroring rayon's
/// short-circuiting `Result` collect. Because indices are handed out
/// monotonically, every index below a stopping item is always present in the
/// output.
fn run_indexed<U, F, S>(n: usize, f: F, stop: S) -> Vec<(usize, U)>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
    S: Fn(&U) -> bool + Sync,
{
    let run_inline = |n: usize| {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let u = f(i);
            let stopped = stop(&u);
            out.push((i, u));
            if stopped {
                break;
            }
        }
        out
    };
    if n <= 1 || current_num_threads() <= 1 {
        return run_inline(n);
    }
    let Some(claim) = WorkerClaim::take(n) else {
        return run_inline(n);
    };
    let workers = claim.0;
    let next = AtomicUsize::new(0);
    let stopped = AtomicBool::new(false);
    let gathered: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let stopped = &stopped;
                let gathered = &gathered;
                let f = &f;
                let stop = &stop;
                scope.spawn(move || {
                    // If this worker panics (in `f`), stop the siblings from
                    // pulling further indices so the panic surfaces fail-fast
                    // instead of after every remaining item completes.
                    let _guard = StopOnPanic(stopped);
                    let mut local: Vec<(usize, U)> = Vec::new();
                    while !stopped.load(Ordering::Relaxed) {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let u = f(i);
                        if stop(&u) {
                            stopped.store(true, Ordering::Relaxed);
                        }
                        local.push((i, u));
                    }
                    gathered
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .extend(local);
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                panic::resume_unwind(payload);
            }
        }
    });
    let mut pairs = gathered.into_inner().unwrap_or_else(|e| e.into_inner());
    pairs.sort_unstable_by_key(|(i, _)| *i);
    pairs
}

/// Collection targets of [`ParallelMap::collect`].
pub trait FromParallelMap<U>: Sized {
    /// True when this result makes further items unnecessary (used to
    /// short-circuit, e.g. on the first `Err`).
    fn stop_early(_item: &U) -> bool {
        false
    }

    /// Builds the collection from `(index, result)` pairs sorted by index.
    /// The pairs cover `0..n` completely unless [`stop_early`] fired, in
    /// which case they cover every index up to (at least) the stopping item.
    ///
    /// [`stop_early`]: FromParallelMap::stop_early
    fn from_pairs(pairs: Vec<(usize, U)>, n: usize) -> Self;
}

impl<U> FromParallelMap<U> for Vec<U> {
    fn from_pairs(pairs: Vec<(usize, U)>, n: usize) -> Self {
        debug_assert_eq!(pairs.len(), n);
        pairs.into_iter().map(|(_, u)| u).collect()
    }
}

impl<V, E> FromParallelMap<Result<V, E>> for Result<Vec<V>, E> {
    fn stop_early(item: &Result<V, E>) -> bool {
        item.is_err()
    }

    // Indices are pulled monotonically, so everything below the first error
    // is present: the error returned is the lowest-index one, exactly as a
    // sequential collect would produce.
    fn from_pairs(pairs: Vec<(usize, Result<V, E>)>, _n: usize) -> Self {
        let mut out = Vec::with_capacity(pairs.len());
        for (_, item) in pairs {
            out.push(item?);
        }
        Ok(out)
    }
}

/// A parallel iterator over shared slice elements.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Pairs every element with its index.
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate { items: self.items }
    }

    /// Maps every element through `f` in parallel.
    pub fn map<U, F>(
        self,
        f: F,
    ) -> ParallelMap<F, impl Fn(usize, &F) -> U + Sync + use<'a, T, U, F>>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        let items = self.items;
        ParallelMap {
            len: items.len(),
            f,
            apply: move |i: usize, f: &F| f(&items[i]),
        }
    }
}

/// A parallel iterator over `(index, &element)` pairs.
pub struct ParEnumerate<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParEnumerate<'a, T> {
    /// Maps every `(index, &element)` pair through `f` in parallel.
    pub fn map<U, F>(
        self,
        f: F,
    ) -> ParallelMap<F, impl Fn(usize, &F) -> U + Sync + use<'a, T, U, F>>
    where
        U: Send,
        F: Fn((usize, &'a T)) -> U + Sync,
    {
        let items = self.items;
        ParallelMap {
            len: items.len(),
            f,
            apply: move |i: usize, f: &F| f((i, &items[i])),
        }
    }
}

/// A parallel iterator over an owned range of `usize`.
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParRange {
    /// Maps every index through `f` in parallel.
    pub fn map<U, F>(self, f: F) -> ParallelMap<F, impl Fn(usize, &F) -> U + Sync>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let start = self.range.start;
        ParallelMap {
            len: self.range.len(),
            f,
            apply: move |i: usize, f: &F| f(start + i),
        }
    }
}

/// The result of a parallel `map`, awaiting `collect`.
pub struct ParallelMap<F, A> {
    len: usize,
    f: F,
    apply: A,
}

impl<F, A> ParallelMap<F, A> {
    /// Executes the map across worker threads and gathers ordered results.
    pub fn collect<C, U>(self) -> C
    where
        U: Send,
        A: Fn(usize, &F) -> U + Sync,
        F: Sync,
        C: FromParallelMap<U>,
    {
        let f = &self.f;
        let apply = &self.apply;
        let pairs = run_indexed(self.len, move |i| apply(i, f), C::stop_early);
        C::from_pairs(pairs, self.len)
    }
}

/// Conversion into a by-reference parallel iterator, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The element type.
    type Item: 'data;
    /// The iterator produced.
    type Iter;

    /// Creates a parallel iterator borrowing from `self`.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Conversion into an owning parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator` (ranges of `usize` only).
pub trait IntoParallelIterator {
    /// The iterator produced.
    type Iter;

    /// Creates a parallel iterator consuming `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// The usual glob import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Iterator types, mirroring `rayon::iter`.
pub mod iter {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..1_000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), items.len());
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, items[i] * 2);
        }
    }

    #[test]
    fn enumerate_map_sees_correct_indices() {
        let items = vec![10u64, 20, 30, 40];
        let tagged: Vec<(usize, u64)> =
            items.par_iter().enumerate().map(|(i, x)| (i, *x)).collect();
        assert_eq!(tagged, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn range_map_collects_in_order() {
        let squares: Vec<usize> = (0..100).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[7], 49);
        assert_eq!(squares.len(), 100);
    }

    #[test]
    fn result_collect_short_circuits_to_err() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<usize> = (0..64).collect();
        let ok: Result<Vec<usize>, String> = items.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap().len(), 64);
        // An early error stops index hand-out: with the error at index 0 of
        // a large input, only a small prefix (bounded by the worker count,
        // not the input size) is ever computed.
        let big: Vec<usize> = (0..10_000).collect();
        let computed = AtomicUsize::new(0);
        let early: Result<Vec<usize>, String> = big
            .par_iter()
            .map(|&x| {
                computed.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    Err("first".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(early.unwrap_err(), "first");
        assert!(
            computed.load(Ordering::Relaxed) < 5_000,
            "error did not short-circuit: {} items computed",
            computed.load(Ordering::Relaxed)
        );
        let err: Result<Vec<usize>, String> = items
            .par_iter()
            .map(|&x| {
                if x == 13 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn worker_panic_stops_siblings_and_propagates() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<usize> = (0..10_000).collect();
        let computed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Vec<usize> = items
                .par_iter()
                .map(|&x| {
                    computed.fetch_add(1, Ordering::Relaxed);
                    if x == 0 {
                        panic!("worker down");
                    }
                    x
                })
                .collect();
        }));
        assert!(result.is_err(), "worker panic must propagate to the caller");
        assert!(
            computed.load(Ordering::Relaxed) < 5_000,
            "panic did not stop siblings: {} items computed",
            computed.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = Vec::new();
        let out: Vec<u8> = items.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    // Single test for everything that touches the global thread
    // configuration (tests run concurrently; two tests mutating the global
    // builder would race).
    fn threads_env_and_builder_do_not_break_results() {
        crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(crate::current_num_threads(), 3);
        let items: Vec<u64> = (0..257).collect();
        let sums: Vec<u64> = items.par_iter().map(|x| x + 1).collect();
        assert_eq!(sums.iter().sum::<u64>(), (1..=257).sum::<u64>());

        // Nested maps draw from the shared budget (inner calls degrade to
        // inline once the budget is claimed) and stay order-correct.
        let outer: Vec<usize> = (0..6).collect();
        let nested: Vec<u64> = outer
            .par_iter()
            .map(|&o| {
                let inner: Vec<u64> = (0..64)
                    .into_par_iter()
                    .map(|i| (o * 64 + i) as u64)
                    .collect();
                inner.iter().sum()
            })
            .collect();
        let expected: Vec<u64> = (0..6u64)
            .map(|o| (0..64).map(|i| o * 64 + i).sum())
            .collect();
        assert_eq!(nested, expected);

        crate::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }
}
