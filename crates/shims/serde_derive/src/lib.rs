//! No-op derive macros for the offline serde shim.
//!
//! The shim's `Serialize` / `Deserialize` traits are blanket-implemented for
//! every type, so the derives have nothing to generate; they exist so that
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` helper attributes
//! parse exactly as with the real serde_derive.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers); expands to
/// nothing because the shim trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers); expands to
/// nothing because the shim trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
