//! Offline API-compatible stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free, non-poisoning
//! API surface (`lock()` returns the guard directly). Poisoned locks are
//! recovered transparently, matching parking_lot's behaviour of not having
//! poisoning at all.

use std::sync;

/// Stand-in for `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Stand-in for `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
