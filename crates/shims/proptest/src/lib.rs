//! Offline API-compatible stand-in for the subset of `proptest` this
//! workspace's tests use.
//!
//! The build environment has no crates.io access. This shim keeps the
//! `proptest!` test files compiling and *meaningful*: every test still runs
//! the configured number of cases over deterministically sampled inputs
//! (seeded per test name and case index), and `prop_assert!` failures report
//! the case number. What is missing versus the real crate is shrinking and
//! failure persistence — acceptable for a deterministic simulation workspace,
//! where a failing case is already reproducible by construction.

/// Strategies: how input values are sampled.
pub mod strategy {
    use crate::test_runner::Sampler;
    use std::ops::Range;

    /// A source of sampled values, mirroring `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of sampled values.
        type Value;

        /// Draws one value.
        fn sample(&self, sampler: &mut Sampler) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, sampler: &mut Sampler) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + sampler.below(span) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, sampler: &mut Sampler) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + sampler.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    /// Strategy for vectors of sampled elements.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, sampler: &mut Sampler) -> Vec<S::Value> {
            let len = Strategy::sample(&self.len, sampler);
            (0..len).map(|_| self.element.sample(sampler)).collect()
        }
    }

    /// Strategy producing arbitrary booleans (see [`crate::bool::ANY`]).
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn sample(&self, sampler: &mut Sampler) -> bool {
            sampler.below(2) == 1
        }
    }

    macro_rules! impl_tuple {
        ($($s:ident / $i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, sampler: &mut Sampler) -> Self::Value {
                    ($(self.$i.sample(sampler),)+)
                }
            }
        };
    }
    impl_tuple!(A / 0, B / 1);
    impl_tuple!(A / 0, B / 1, C / 2);
    impl_tuple!(A / 0, B / 1, C / 2, D / 3);
}

/// `any::<T>()` support, mirroring `proptest::arbitrary`.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::Sampler;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(sampler: &mut Sampler) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(sampler: &mut Sampler) -> $t {
                    sampler.raw_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(sampler: &mut Sampler) -> bool {
            sampler.below(2) == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, sampler: &mut Sampler) -> T {
            T::arbitrary(sampler)
        }
    }

    /// Samples any value of `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Samples vectors whose length lies in `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Boolean strategies, mirroring `proptest::bool`.
pub mod bool {
    /// Samples arbitrary booleans.
    pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
}

/// Test-runner machinery: configuration, sampling, failure type.
pub mod test_runner {
    /// Runner configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each test runs.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    impl Config {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// A failed `prop_assert!`.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-(test, case) input sampler (SplitMix64 stream).
    pub struct Sampler {
        state: u64,
    }

    impl Sampler {
        /// Creates the sampler for `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// One raw word of the stream (for full-domain `any::<T>()`).
        pub fn raw_u64(&mut self) -> u64 {
            self.next_u64()
        }
    }
}

/// The usual glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!($crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for __case in 0..config.cases {
                    let mut __sampler = $crate::test_runner::Sampler::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __sampler);
                    )*
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = __result {
                        panic!("case {} of {}: {}", __case, stringify!($name), e);
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_sample_in_bounds(n in 1usize..512, theta in 0.0f64..1.0, total in 0u64..2_000) {
            prop_assert!((1..512).contains(&n));
            prop_assert!((0.0..1.0).contains(&theta));
            prop_assert!(total < 2_000);
        }

        #[test]
        fn vec_strategy_obeys_length(v in crate::collection::vec(1u64..4_096, 1..200), flag in crate::bool::ANY) {
            prop_assert!((1..200).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (1..4_096).contains(&x)));
            let _ = flag;
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        let mut a = crate::test_runner::Sampler::for_case("t", 3);
        let mut b = crate::test_runner::Sampler::for_case("t", 3);
        assert_eq!(a.below(1_000), b.below(1_000));
        assert_eq!(a.unit_f64(), b.unit_f64());
        let mut c = crate::test_runner::Sampler::for_case("t", 4);
        assert_ne!(a.below(u64::MAX), c.below(u64::MAX));
    }
}
