//! Offline API-compatible stand-in for the subset of `criterion` this
//! workspace's benches use.
//!
//! The build environment has no crates.io access. This shim keeps every
//! `benches/*.rs` file compiling and producing *useful* numbers under
//! `cargo bench`: each benchmark runs a configurable warm-up, collects a
//! configurable number of samples, and summarizes them with the robust
//! statistics in [`stats`] — MAD outlier rejection, mean, median, minimum
//! and a 95% confidence interval — a small, honest subset of criterion's
//! statistical machinery. The [`stats`] module is public so harness
//! binaries (`bench_report`) can apply the same summary to their own
//! timings.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod stats {
    //! Robust summary statistics for timing samples.
    //!
    //! Wall-clock benchmark samples are contaminated by scheduler noise in
    //! one direction only — samples are occasionally *slow*, never
    //! impossibly fast — so a trimmed mean around the median is far more
    //! stable than the raw mean. The classic robust recipe used here:
    //! reject samples more than 3.5 scaled-MADs from the median (the MAD,
    //! scaled by 1.4826, estimates the standard deviation of the
    //! uncontaminated normal core), then report moments of the survivors.

    /// Factor that turns a median absolute deviation into a consistent
    /// estimate of the standard deviation for normally distributed data.
    const MAD_SCALE: f64 = 1.4826;
    /// Rejection threshold in scaled-MAD units (the conventional cutoff).
    const MAD_CUTOFF: f64 = 3.5;
    /// Two-sided 95% normal quantile for the confidence interval.
    const Z_95: f64 = 1.96;

    /// Summary of a set of timing samples, in nanoseconds.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Stats {
        /// Raw sample count, before outlier rejection.
        pub samples: usize,
        /// Samples surviving MAD rejection (the basis of every moment).
        pub kept: usize,
        /// Samples rejected as outliers (`samples - kept`).
        pub outliers: usize,
        /// Mean of the kept samples.
        pub mean_ns: f64,
        /// Median of the kept samples.
        pub median_ns: f64,
        /// Minimum of the kept samples.
        pub min_ns: f64,
        /// Sample standard deviation of the kept samples (0 when `kept < 2`).
        pub std_ns: f64,
        /// Half-width of the 95% confidence interval on the mean:
        /// `1.96 * std / sqrt(kept)`.
        pub ci95_ns: f64,
    }

    fn median_of_sorted(sorted: &[f64]) -> f64 {
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        }
    }

    /// Summarizes `samples_ns` (timings in nanoseconds, any order).
    ///
    /// Samples farther than 3.5 scaled-MADs from the median are rejected
    /// before the moments are computed. When the MAD is zero (at least half
    /// the samples are identical) rejection is skipped entirely — every
    /// deviation would otherwise be infinitely many MADs out.
    ///
    /// # Panics
    /// Panics when `samples_ns` is empty.
    pub fn summarize(samples_ns: &[f64]) -> Stats {
        assert!(!samples_ns.is_empty(), "cannot summarize zero samples");
        let mut sorted = samples_ns.to_vec();
        sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let raw_median = median_of_sorted(&sorted);
        let mut deviations: Vec<f64> = sorted.iter().map(|x| (x - raw_median).abs()).collect();
        deviations.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mad = median_of_sorted(&deviations);
        let kept: Vec<f64> = if mad > 0.0 {
            let cutoff = MAD_CUTOFF * MAD_SCALE * mad;
            sorted
                .iter()
                .copied()
                .filter(|x| (x - raw_median).abs() <= cutoff)
                .collect()
        } else {
            sorted.clone()
        };
        debug_assert!(!kept.is_empty(), "the median always survives rejection");
        let n = kept.len();
        let mean = kept.iter().sum::<f64>() / n as f64;
        let std = if n > 1 {
            let var = kept.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        Stats {
            samples: sorted.len(),
            kept: n,
            outliers: sorted.len() - n,
            mean_ns: mean,
            median_ns: median_of_sorted(&kept),
            min_ns: kept[0],
            std_ns: std,
            ci95_ns: Z_95 * std / (n as f64).sqrt(),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn identical_samples_have_zero_spread() {
            let s = summarize(&[5.0; 8]);
            assert_eq!(s.samples, 8);
            assert_eq!(s.kept, 8);
            assert_eq!(s.outliers, 0);
            assert_eq!(s.mean_ns, 5.0);
            assert_eq!(s.median_ns, 5.0);
            assert_eq!(s.min_ns, 5.0);
            assert_eq!(s.std_ns, 0.0);
            assert_eq!(s.ci95_ns, 0.0);
        }

        #[test]
        fn mad_rejection_drops_a_gross_outlier() {
            // Nine tight samples and one scheduler hiccup 100x out.
            let mut xs = vec![10.0, 10.2, 9.8, 10.1, 9.9, 10.0, 10.3, 9.7, 10.0];
            xs.push(1_000.0);
            let s = summarize(&xs);
            assert_eq!(s.samples, 10);
            assert_eq!(s.kept, 9);
            assert_eq!(s.outliers, 1);
            assert!((s.mean_ns - 10.0).abs() < 0.1, "mean {}", s.mean_ns);
            assert!(s.min_ns >= 9.7);
        }

        #[test]
        fn zero_mad_skips_rejection() {
            // More than half the samples identical: MAD = 0; the distant
            // sample must survive rather than trip a divide-by-zero cutoff.
            let s = summarize(&[7.0, 7.0, 7.0, 7.0, 7.0, 50.0]);
            assert_eq!(s.kept, 6);
            assert_eq!(s.outliers, 0);
        }

        #[test]
        fn ci_shrinks_with_sample_count() {
            let few: Vec<f64> = (0..5).map(|i| 100.0 + i as f64).collect();
            let many: Vec<f64> = (0..50).map(|i| 100.0 + (i % 5) as f64).collect();
            let s_few = summarize(&few);
            let s_many = summarize(&many);
            assert!(s_few.ci95_ns > 0.0);
            assert!(s_many.ci95_ns < s_few.ci95_ns);
        }

        #[test]
        fn single_sample_is_degenerate_but_defined() {
            let s = summarize(&[42.0]);
            assert_eq!(s.kept, 1);
            assert_eq!(s.mean_ns, 42.0);
            assert_eq!(s.median_ns, 42.0);
            assert_eq!(s.std_ns, 0.0);
            assert_eq!(s.ci95_ns, 0.0);
        }

        #[test]
        #[should_panic(expected = "zero samples")]
        fn empty_input_panics() {
            let _ = summarize(&[]);
        }
    }
}

/// How a batched input is sized; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Measurement state handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    warm_up: usize,
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize, warm_up: usize) -> Self {
        Self {
            samples,
            warm_up,
            results: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over the configured number of samples, after the
    /// configured number of unmeasured warm-up iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warm_up {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warm_up {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.results.is_empty() {
            println!("{name}: no samples");
            return;
        }
        let ns: Vec<f64> = self.results.iter().map(|d| d.as_nanos() as f64).collect();
        let s = stats::summarize(&ns);
        println!(
            "{name}: mean {:?} ± {:?}  median {:?}  min {:?}  ({}/{} samples kept)",
            Duration::from_nanos(s.mean_ns as u64),
            Duration::from_nanos(s.ci95_ns as u64),
            Duration::from_nanos(s.median_ns as u64),
            Duration::from_nanos(s.min_ns as u64),
            s.kept,
            s.samples,
        );
        self.results.clear();
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up: 2,
        }
    }
}

impl Criterion {
    /// Accepts command-line configuration (ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the number of unmeasured warm-up iterations per benchmark
    /// (shim extension; real criterion sizes warm-up by wall time).
    pub fn warm_up_iters(&mut self, n: usize) -> &mut Self {
        self.warm_up = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.warm_up);
        f(&mut b);
        b.report(name.as_ref());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    warm_up: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the number of unmeasured warm-up iterations for this group.
    pub fn warm_up_iters(&mut self, n: usize) -> &mut Self {
        self.warm_up = n;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.warm_up);
        f(&mut b);
        b.report(&format!("{}/{}", self.prefix, name.as_ref()));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares the benchmark entry list, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // 2 warm-up (default) + 3 measured.
        assert_eq!(runs, 5);
    }

    #[test]
    fn warm_up_is_configurable() {
        let mut c = Criterion::default();
        c.sample_size(4).warm_up_iters(0);
        let mut runs = 0;
        c.bench_function("cold", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 4);

        let mut group = c.benchmark_group("g");
        group.sample_size(2).warm_up_iters(5);
        let mut grouped = 0;
        group.bench_function("hot", |b| b.iter(|| grouped += 1));
        group.finish();
        assert_eq!(grouped, 7);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut built = 0;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    built += 1;
                    vec![0u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(built, 6);
    }
}
