//! Offline API-compatible stand-in for the subset of `criterion` this
//! workspace's benches use.
//!
//! The build environment has no crates.io access. This shim keeps every
//! `benches/*.rs` file compiling and producing *useful* (wall-clock median)
//! numbers under `cargo bench`, without criterion's statistical machinery.
//! Each benchmark runs a short warm-up, then reports the median and minimum
//! iteration time over a fixed sample count.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a batched input is sized; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Measurement state handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            results: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..2 {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }

    fn report(&mut self, name: &str) {
        if self.results.is_empty() {
            println!("{name}: no samples");
            return;
        }
        self.results.sort_unstable();
        let median = self.results[self.results.len() / 2];
        let min = self.results[0];
        println!(
            "{name}: median {median:?}  min {min:?}  ({} samples)",
            self.results.len()
        );
        self.results.clear();
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepts command-line configuration (ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name.as_ref());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.prefix, name.as_ref()));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares the benchmark entry list, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        // 2 warm-up + 3 measured.
        assert_eq!(runs, 5);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut built = 0;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    built += 1;
                    vec![0u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(built, 6);
    }
}
