//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal API-compatible shim: `Serialize` / `Deserialize` are marker
//! traits with blanket implementations, and the derive macros (re-exported
//! from the sibling `serde_derive` shim) expand to nothing. Code that only
//! *derives* the traits — which is all this workspace does — compiles and
//! behaves identically; swapping back to the real serde is a manifest-only
//! change.

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Stand-in for `serde::de`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stand-in for `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

pub use serde_derive::{Deserialize, Serialize};
