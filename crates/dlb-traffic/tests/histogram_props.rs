//! Property tests for the latency sketch: quantile estimates stay within one
//! bucket's relative error of the exact order statistics, and merging two
//! histograms is indistinguishable from bulk-building one.

use dlb_traffic::LatencyHistogram;
use proptest::prelude::*;

/// The exact `q`-quantile under the histogram's rank convention.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_within_one_bucket_of_exact(
        raw in proptest::collection::vec(1u64..50_000_000, 1..400),
        scale in 0.000_001f64..0.01,
    ) {
        // Samples span ~7 decades once scaled — wide enough to cross many
        // bucket boundaries.
        let values: Vec<f64> = raw.iter().map(|&v| v as f64 * scale).collect();
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let tolerance = h.growth();
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q).unwrap();
            prop_assert!(
                est / exact < tolerance && exact / est < tolerance,
                "q={}: estimate {} vs exact {} (growth {})",
                q, est, exact, tolerance
            );
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *sorted.last().unwrap());
    }

    #[test]
    fn merge_matches_bulk_build(
        raw in proptest::collection::vec(1u64..50_000_000, 2..400),
        split_fraction in 0.0f64..1.0,
        scale in 0.000_001f64..0.01,
    ) {
        let values: Vec<f64> = raw.iter().map(|&v| v as f64 * scale).collect();
        let split = ((values.len() as f64 * split_fraction) as usize).min(values.len());
        let mut bulk = LatencyHistogram::new();
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            bulk.record(v);
            if i < split {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        prop_assert_eq!(left.bucket_counts(), bulk.bucket_counts());
        prop_assert_eq!(left.count(), bulk.count());
        prop_assert_eq!(left.max(), bulk.max());
        for q in [0.0, 0.25, 0.5, 0.75, 0.95, 1.0] {
            prop_assert_eq!(left.quantile(q), bulk.quantile(q));
        }
        // Mean accumulates in a different order, so compare approximately.
        let (a, b) = (left.mean(), bulk.mean());
        prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1.0), "means {} vs {}", a, b);
    }
}
