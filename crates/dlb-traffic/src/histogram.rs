//! HDR-style log-bucketed latency sketch.
//!
//! [`LatencyHistogram`] records non-negative samples (response times, waits,
//! slowdown ratios) into geometrically spaced buckets: bucket `i` covers
//! `[g^i, g^(i+1))` for a growth factor `g` slightly above 1. Memory is
//! O(occupied buckets) regardless of how many samples are recorded, so an
//! open-system run can retire millions of queries while the report stays
//! constant-size. Quantile estimates return the geometric midpoint of the
//! bucket holding the requested rank, which bounds the relative error by
//! `√g` (within one bucket) — the property the crate's tests pin down.
//!
//! Two histograms with the same growth factor can be [`merged`]
//! (bucket-wise addition), and merging is exactly equivalent to having
//! recorded all samples into one histogram, because a sample's bucket index
//! is a pure function of its value.
//!
//! [`merged`]: LatencyHistogram::merge

use std::collections::BTreeMap;

/// Default growth factor: ~2% relative bucket width, ~1% quantile error.
pub const DEFAULT_GROWTH: f64 = 1.02;

/// A log-bucketed histogram of non-negative `f64` samples (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    growth: f64,
    inv_log_growth: f64,
    /// Samples equal to zero (or clamped negatives) get a dedicated bucket.
    zero: u64,
    buckets: BTreeMap<i64, u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::with_growth(DEFAULT_GROWTH)
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram with the default growth factor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty histogram with bucket growth factor `growth`
    /// (must be finite and > 1).
    pub fn with_growth(growth: f64) -> Self {
        assert!(
            growth.is_finite() && growth > 1.0,
            "histogram growth factor must be > 1: {growth}"
        );
        Self {
            growth,
            inv_log_growth: 1.0 / growth.ln(),
            zero: 0,
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// The growth factor buckets are spaced by.
    pub fn growth(&self) -> f64 {
        self.growth
    }

    /// Records one sample. Non-finite samples are rejected with a panic;
    /// negative samples clamp to the zero bucket.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "histogram sample must be finite");
        self.count += 1;
        if value <= 0.0 {
            self.zero += 1;
            return;
        }
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
        let index = (value.ln() * self.inv_log_growth).floor() as i64;
        *self.buckets.entry(index).or_insert(0) += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Exact arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The occupied buckets as `(index, count)` pairs in ascending value
    /// order, plus the zero-bucket count. Exposed for merge/equality tests.
    pub fn bucket_counts(&self) -> (u64, Vec<(i64, u64)>) {
        (
            self.zero,
            self.buckets.iter().map(|(&i, &c)| (i, c)).collect(),
        )
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`): the geometric midpoint
    /// of the bucket containing the rank-`⌈q·n⌉` sample. Returns `None` on an
    /// empty histogram. The estimate is within a factor `√growth` of the
    /// exact order statistic.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]: {q}");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank <= self.zero {
            return Some(0.0);
        }
        let mut seen = self.zero;
        for (&index, &count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return Some(self.growth.powf(index as f64 + 0.5));
            }
        }
        // Unreachable: bucket counts always sum to `count`.
        Some(self.max)
    }

    /// Merges `other` into `self` bucket-wise. Panics if the growth factors
    /// differ (the bucket grids would not line up).
    pub fn merge(&mut self, other: &Self) {
        assert!(
            self.growth.to_bits() == other.growth.to_bits(),
            "cannot merge histograms with different growth factors"
        );
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
        for (&index, &count) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += count;
        }
    }

    /// Snapshots the headline statistics, or `None` on an empty histogram —
    /// an empty per-class or per-outcome breakdown must read as "no data",
    /// never as a row of fabricated zeros.
    pub fn summary(&self) -> Option<LatencySummary> {
        if self.count == 0 {
            return None;
        }
        Some(LatencySummary {
            count: self.count,
            mean: self.mean(),
            p50: self.quantile(0.50).expect("non-empty"),
            p95: self.quantile(0.95).expect("non-empty"),
            p99: self.quantile(0.99).expect("non-empty"),
            max: self.max,
        })
    }
}

/// Headline statistics of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Arithmetic mean (exact).
    pub mean: f64,
    /// Median estimate (within one bucket).
    pub p50: f64,
    /// 95th-percentile estimate (within one bucket).
    pub p95: f64,
    /// 99th-percentile estimate (within one bucket).
    pub p99: f64,
    /// Maximum (exact).
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
        // Regression: `summary()` used to collapse empty quantiles to 0.0,
        // so a priority class with zero completions rendered as a row of
        // fabricated zero-latency percentiles.
        assert_eq!(h.summary(), None);
    }

    #[test]
    fn single_sample_summary_is_exact_where_it_can_be() {
        let mut h = LatencyHistogram::new();
        h.record(2.5);
        let s = h.summary().expect("non-empty histogram has a summary");
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.max, 2.5);
        assert!(s.p50 > 0.0 && s.p99 > 0.0);
    }

    #[test]
    fn zero_and_negative_samples_fill_the_zero_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(0.0);
        h.record(-1.0);
        h.record(2.0);
        let (zero, buckets) = h.bucket_counts();
        assert_eq!(zero, 2);
        assert_eq!(buckets.len(), 1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.5), Some(0.0));
        assert!(h.quantile(1.0).unwrap() > 0.0);
    }

    #[test]
    fn quantiles_sit_within_one_bucket_of_exact() {
        let mut h = LatencyHistogram::new();
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.003).collect();
        for &v in &values {
            h.record(v);
        }
        let tolerance = h.growth();
        for q in [0.1, 0.5, 0.9, 0.95, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = h.quantile(q).unwrap();
            assert!(
                est / exact < tolerance && exact / est < tolerance,
                "q={q}: estimate {est} vs exact {exact}"
            );
        }
        assert_eq!(h.max(), 3.0);
        assert!((h.mean() - 1.5015).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_bulk_build() {
        let mut bulk = LatencyHistogram::new();
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for i in 0..500 {
            let v = (i as f64 * 0.7).sin().abs() * 10.0;
            bulk.record(v);
            if i % 3 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.bucket_counts(), bulk.bucket_counts());
        assert_eq!(left.count(), bulk.count());
        assert_eq!(left.max(), bulk.max());
        for q in [0.25, 0.5, 0.75, 0.99] {
            assert_eq!(left.quantile(q), bulk.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "different growth factors")]
    fn merging_mismatched_grids_panics() {
        let mut a = LatencyHistogram::with_growth(1.02);
        let b = LatencyHistogram::with_growth(1.05);
        a.merge(&b);
    }
}
