//! Open-system traffic for the co-simulated engine.
//!
//! Closed workloads fix a set of N queries up front and score one makespan.
//! This crate supplies the two pieces that turn the engine into an *open*
//! queueing system instead:
//!
//! - [`arrival`] — deterministic-per-seed stochastic arrival processes
//!   (Poisson, bursty Markov-modulated on/off, diurnal trace) over a query
//!   template pool, parameterized by a target QPS and a total query count;
//! - [`histogram`] — an HDR-style log-bucketed latency sketch recording
//!   per-query response/wait/slowdown in O(buckets) memory, so millions of
//!   retired queries never need to be materialized.
//!
//! Both are pure data structures with no dependency on the engine: the
//! executor pulls arrivals lazily and feeds retirements into the sketches.

#![warn(missing_docs)]

pub mod arrival;
pub mod histogram;

pub use arrival::{Arrival, ArrivalKind, ArrivalSpec, ArrivalStream};
pub use histogram::{LatencyHistogram, LatencySummary};
