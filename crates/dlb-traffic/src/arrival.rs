//! Stochastic arrival processes over a query-template pool.
//!
//! An [`ArrivalStream`] is a deterministic-per-seed iterator of
//! [`Arrival`]s: each one carries an absolute arrival offset (seconds from
//! the start of the run), the index of the query template it instantiates,
//! and a priority class. Three processes are provided:
//!
//! - **Poisson** — i.i.d. exponential inter-arrival gaps at the target rate;
//!   the memoryless baseline of the open-queueing literature.
//! - **Bursty** — a Markov-modulated on/off process (MMPP-2): an ON state
//!   emitting Poisson arrivals at an elevated rate alternates with a silent
//!   OFF state, both with exponential sojourns. A `burstiness` knob in
//!   `[0, 1)` sets the OFF fraction; the long-run rate always matches the
//!   target QPS, so sweeps compare equal offered load at different
//!   clumpiness.
//! - **Diurnal** — a non-homogeneous Poisson process whose rate follows a
//!   fixed 24-point "hour of day" trace (overnight trough, daytime double
//!   peak), compressed so one trace period spans the expected run duration
//!   (`queries / rate_qps` seconds). The trace is normalized to mean 1, so
//!   the long-run rate again matches the target QPS.
//!
//! Timing, template choice and priority choice draw from three *independent*
//! sub-streams of the master seed, so changing the template pool size does
//! not perturb arrival instants and vice versa.

use dlb_common::rng::stream_rng;
use rand::distr::{Distribution, Exp};
use rand::rngs::StdRng;
use rand::Rng;

/// Mean number of arrivals per ON burst of the bursty process.
const BURST_MEAN_ARRIVALS: f64 = 16.0;

/// Hourly rate multipliers of the diurnal trace before normalization:
/// an overnight trough, a morning ramp, and a broad daytime double peak.
const DIURNAL_TRACE: [f64; 24] = [
    0.30, 0.20, 0.15, 0.12, 0.12, 0.20, 0.45, 0.80, 1.20, 1.50, 1.60, 1.55, 1.45, 1.55, 1.65, 1.60,
    1.50, 1.40, 1.30, 1.15, 0.95, 0.75, 0.55, 0.40,
];

/// The shape of an arrival process (rate and seed live in [`ArrivalSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Homogeneous Poisson arrivals.
    Poisson,
    /// Markov-modulated on/off (bursty) arrivals.
    Bursty,
    /// Non-homogeneous Poisson arrivals following the diurnal trace.
    Diurnal,
}

impl ArrivalKind {
    /// Stable lower-case label (used by scenario serialization).
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Bursty => "bursty",
            ArrivalKind::Diurnal => "diurnal",
        }
    }

    /// Parses a label produced by [`ArrivalKind::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "poisson" => Some(ArrivalKind::Poisson),
            "bursty" => Some(ArrivalKind::Bursty),
            "diurnal" => Some(ArrivalKind::Diurnal),
            _ => None,
        }
    }
}

/// Parameters of an arrival stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalSpec {
    /// Which process generates the arrival instants.
    pub kind: ArrivalKind,
    /// Long-run target arrival rate in queries per second.
    pub rate_qps: f64,
    /// OFF fraction of the bursty process, in `[0, 1)`. `0` degenerates to
    /// Poisson; ignored by the other kinds.
    pub burstiness: f64,
    /// Total number of queries the stream emits before ending.
    pub queries: usize,
    /// Size of the query-template pool arrivals are drawn from (uniformly).
    pub templates: usize,
    /// Probability in `[0, 1)` that an arrival targets template 0 (the "hot"
    /// template) instead of drawing uniformly. `0` keeps the historical
    /// uniform draw — and consumes exactly the same RNG stream, so existing
    /// seeded streams are byte-identical.
    pub template_skew: f64,
    /// Number of priority classes; each arrival draws a priority uniformly
    /// from `1..=priority_classes`.
    pub priority_classes: u32,
    /// Master seed; the whole stream is a pure function of the spec.
    pub seed: u64,
}

impl ArrivalSpec {
    /// Validates the parameter ranges, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.rate_qps.is_finite() && self.rate_qps > 0.0) {
            return Err(format!("arrival rate must be positive: {}", self.rate_qps));
        }
        if !(0.0..1.0).contains(&self.burstiness) {
            return Err(format!(
                "burstiness must lie in [0, 1): {}",
                self.burstiness
            ));
        }
        if self.queries == 0 {
            return Err("arrival stream needs at least one query".into());
        }
        if self.templates == 0 {
            return Err("arrival stream needs a non-empty template pool".into());
        }
        if !(0.0..1.0).contains(&self.template_skew) {
            return Err(format!(
                "template skew must lie in [0, 1): {}",
                self.template_skew
            ));
        }
        if self.priority_classes == 0 {
            return Err("arrival stream needs at least one priority class".into());
        }
        Ok(())
    }
}

/// One query arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival instant, seconds from the start of the run (non-decreasing).
    pub offset_secs: f64,
    /// Index into the template pool, in `0..templates`.
    pub template: usize,
    /// Priority class, in `1..=priority_classes`.
    pub priority: u32,
}

/// State of the bursty (MMPP-2) modulation: time left in the current ON
/// sojourn, plus the sojourn-length distributions.
#[derive(Debug, Clone)]
struct BurstState {
    on_remaining: f64,
    on_sojourn: Exp,
    off_sojourn: Exp,
    on_rate: f64,
}

/// State of the diurnal thinning: seconds per trace bucket and the
/// normalized multipliers.
#[derive(Debug, Clone)]
struct DiurnalState {
    bucket_secs: f64,
    trace: [f64; 24],
}

#[derive(Debug, Clone)]
enum ProcessState {
    Poisson(Exp),
    Bursty(BurstState),
    Diurnal(DiurnalState),
}

/// A deterministic iterator of [`Arrival`]s (see the module docs).
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    spec: ArrivalSpec,
    emitted: usize,
    now_secs: f64,
    state: ProcessState,
    timing_rng: StdRng,
    template_rng: StdRng,
    priority_rng: StdRng,
}

impl ArrivalStream {
    /// Builds the stream for `spec`, validating its parameters.
    pub fn new(spec: ArrivalSpec) -> Result<Self, String> {
        spec.validate()?;
        let mut timing_rng = stream_rng(spec.seed, 0x41_52_52);
        let state = match spec.kind {
            ArrivalKind::Poisson => {
                ProcessState::Poisson(Exp::new(spec.rate_qps).expect("validated rate"))
            }
            ArrivalKind::Bursty if spec.burstiness == 0.0 => {
                ProcessState::Poisson(Exp::new(spec.rate_qps).expect("validated rate"))
            }
            ArrivalKind::Bursty => {
                // ON rate is inflated so the long-run average over the
                // ON/OFF cycle equals the target: rate_on * (1 - b) = rate.
                let on_rate = spec.rate_qps / (1.0 - spec.burstiness);
                let on_mean = BURST_MEAN_ARRIVALS / on_rate;
                let off_mean = on_mean * spec.burstiness / (1.0 - spec.burstiness);
                let on_sojourn = Exp::new(1.0 / on_mean).expect("positive mean");
                let off_sojourn = Exp::new(1.0 / off_mean).expect("positive mean");
                let on_remaining = on_sojourn.sample(&mut timing_rng);
                ProcessState::Bursty(BurstState {
                    on_remaining,
                    on_sojourn,
                    off_sojourn,
                    on_rate,
                })
            }
            ArrivalKind::Diurnal => {
                let sum: f64 = DIURNAL_TRACE.iter().sum();
                let mut trace = DIURNAL_TRACE;
                for m in &mut trace {
                    *m *= 24.0 / sum;
                }
                // One trace period spans the expected run duration.
                let day_secs = spec.queries as f64 / spec.rate_qps;
                ProcessState::Diurnal(DiurnalState {
                    bucket_secs: day_secs / 24.0,
                    trace,
                })
            }
        };
        Ok(Self {
            spec,
            emitted: 0,
            now_secs: 0.0,
            state,
            timing_rng,
            template_rng: stream_rng(spec.seed, 0x54_50_4C),
            priority_rng: stream_rng(spec.seed, 0x50_52_49),
        })
    }

    /// The spec this stream was built from.
    pub fn spec(&self) -> &ArrivalSpec {
        &self.spec
    }

    /// Number of arrivals still to come.
    pub fn remaining(&self) -> usize {
        self.spec.queries - self.emitted
    }

    /// Advances the clock past the next arrival instant and returns it.
    fn next_instant(&mut self) -> f64 {
        match &mut self.state {
            ProcessState::Poisson(gap) => {
                self.now_secs += gap.sample(&mut self.timing_rng);
            }
            ProcessState::Bursty(burst) => {
                // Draw the gap in ON-time, then splice in OFF sojourns
                // whenever it crosses the end of an ON period.
                let mut gap = Exp::new(burst.on_rate)
                    .expect("positive rate")
                    .sample(&mut self.timing_rng);
                while gap > burst.on_remaining {
                    gap -= burst.on_remaining;
                    self.now_secs += burst.on_remaining;
                    self.now_secs += burst.off_sojourn.sample(&mut self.timing_rng);
                    burst.on_remaining = burst.on_sojourn.sample(&mut self.timing_rng);
                }
                burst.on_remaining -= gap;
                self.now_secs += gap;
            }
            ProcessState::Diurnal(diurnal) => {
                // Piecewise-constant inversion: spend one Exp(1) unit of
                // integrated rate, walking bucket by bucket.
                let mut residual = Exp::new(1.0)
                    .expect("unit rate")
                    .sample(&mut self.timing_rng);
                loop {
                    let bucket = (self.now_secs / diurnal.bucket_secs) as usize % 24;
                    let rate = self.spec.rate_qps * diurnal.trace[bucket];
                    let bucket_end =
                        ((self.now_secs / diurnal.bucket_secs).floor() + 1.0) * diurnal.bucket_secs;
                    let capacity = (bucket_end - self.now_secs) * rate;
                    if residual <= capacity {
                        self.now_secs += residual / rate;
                        break;
                    }
                    residual -= capacity;
                    self.now_secs = bucket_end;
                }
            }
        }
        self.now_secs
    }
}

impl Iterator for ArrivalStream {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        if self.emitted >= self.spec.queries {
            return None;
        }
        self.emitted += 1;
        let offset_secs = self.next_instant();
        // The skew branch must not touch the RNG when disabled: a zero-skew
        // stream stays bit-identical to streams generated before the knob
        // existed (golden outputs depend on this).
        let template = if self.spec.template_skew > 0.0
            && self.template_rng.random_bool(self.spec.template_skew)
        {
            0
        } else {
            self.template_rng.random_range(0..self.spec.templates)
        };
        let priority = self
            .priority_rng
            .random_range(1..=self.spec.priority_classes);
        Some(Arrival {
            offset_secs,
            template,
            priority,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.remaining();
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: ArrivalKind, burstiness: f64) -> ArrivalSpec {
        ArrivalSpec {
            kind,
            rate_qps: 50.0,
            burstiness,
            queries: 20_000,
            templates: 6,
            template_skew: 0.0,
            priority_classes: 3,
            seed: 0xD1B_1996,
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        for kind in [
            ArrivalKind::Poisson,
            ArrivalKind::Bursty,
            ArrivalKind::Diurnal,
        ] {
            let a: Vec<Arrival> = ArrivalStream::new(spec(kind, 0.5)).unwrap().collect();
            let b: Vec<Arrival> = ArrivalStream::new(spec(kind, 0.5)).unwrap().collect();
            assert_eq!(a, b);
            let mut other = spec(kind, 0.5);
            other.seed ^= 1;
            let c: Vec<Arrival> = ArrivalStream::new(other).unwrap().collect();
            assert_ne!(a, c);
        }
    }

    #[test]
    fn arrivals_are_monotone_and_well_formed() {
        for kind in [
            ArrivalKind::Poisson,
            ArrivalKind::Bursty,
            ArrivalKind::Diurnal,
        ] {
            let s = spec(kind, 0.7);
            let arrivals: Vec<Arrival> = ArrivalStream::new(s).unwrap().collect();
            assert_eq!(arrivals.len(), s.queries);
            let mut prev = 0.0;
            for a in &arrivals {
                assert!(a.offset_secs >= prev, "time went backwards");
                assert!(a.template < s.templates);
                assert!((1..=s.priority_classes).contains(&a.priority));
                prev = a.offset_secs;
            }
        }
    }

    #[test]
    fn long_run_rate_matches_target() {
        // All three processes are calibrated to the same offered load: over
        // 20k arrivals the empirical rate should sit within ~10% of target.
        for (kind, b) in [
            (ArrivalKind::Poisson, 0.0),
            (ArrivalKind::Bursty, 0.6),
            (ArrivalKind::Diurnal, 0.0),
        ] {
            let s = spec(kind, b);
            let last = ArrivalStream::new(s).unwrap().last().unwrap();
            let empirical = s.queries as f64 / last.offset_secs;
            assert!(
                (empirical - s.rate_qps).abs() < 0.1 * s.rate_qps,
                "{kind:?}: empirical rate {empirical} vs target {}",
                s.rate_qps
            );
        }
    }

    #[test]
    fn burstier_streams_have_heavier_gap_tails() {
        // Same offered load, but a bursty stream concentrates arrivals: its
        // maximum inter-arrival gap (the OFF periods) dwarfs Poisson's.
        let gaps = |kind, b| -> f64 {
            let arrivals: Vec<Arrival> = ArrivalStream::new(spec(kind, b)).unwrap().collect();
            arrivals
                .windows(2)
                .map(|w| w[1].offset_secs - w[0].offset_secs)
                .fold(0.0, f64::max)
        };
        let poisson_max = gaps(ArrivalKind::Poisson, 0.0);
        let bursty_max = gaps(ArrivalKind::Bursty, 0.8);
        assert!(
            bursty_max > 2.0 * poisson_max,
            "bursty max gap {bursty_max} vs poisson {poisson_max}"
        );
    }

    #[test]
    fn diurnal_rate_varies_across_the_day() {
        // Arrivals per trace bucket should follow the trough/peak shape.
        let s = spec(ArrivalKind::Diurnal, 0.0);
        let day_secs = s.queries as f64 / s.rate_qps;
        let bucket_secs = day_secs / 24.0;
        let mut counts = [0usize; 24];
        for a in ArrivalStream::new(s).unwrap() {
            let b = ((a.offset_secs / bucket_secs) as usize).min(23);
            counts[b] += 1;
        }
        let trough = counts[3] as f64; // 0.12 multiplier
        let peak = counts[14] as f64; // 1.65 multiplier
        assert!(
            peak > 5.0 * trough,
            "peak bucket {peak} vs trough bucket {trough}"
        );
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = spec(ArrivalKind::Poisson, 0.0);
        s.rate_qps = 0.0;
        assert!(ArrivalStream::new(s).is_err());
        let mut s = spec(ArrivalKind::Bursty, 0.0);
        s.burstiness = 1.0;
        assert!(ArrivalStream::new(s).is_err());
        let mut s = spec(ArrivalKind::Poisson, 0.0);
        s.templates = 0;
        assert!(ArrivalStream::new(s).is_err());
        let mut s = spec(ArrivalKind::Poisson, 0.0);
        s.queries = 0;
        assert!(ArrivalStream::new(s).is_err());
        let mut s = spec(ArrivalKind::Poisson, 0.0);
        s.priority_classes = 0;
        assert!(ArrivalStream::new(s).is_err());
        let mut s = spec(ArrivalKind::Poisson, 0.0);
        s.template_skew = 1.0;
        assert!(ArrivalStream::new(s).is_err());
        let mut s = spec(ArrivalKind::Poisson, 0.0);
        s.template_skew = -0.1;
        assert!(ArrivalStream::new(s).is_err());
    }

    #[test]
    fn template_skew_concentrates_arrivals_on_the_hot_template() {
        let hot_fraction = |skew: f64| -> f64 {
            let mut s = spec(ArrivalKind::Poisson, 0.0);
            s.template_skew = skew;
            let arrivals: Vec<Arrival> = ArrivalStream::new(s).unwrap().collect();
            arrivals.iter().filter(|a| a.template == 0).count() as f64 / arrivals.len() as f64
        };
        let uniform = hot_fraction(0.0);
        assert!(
            (uniform - 1.0 / 6.0).abs() < 0.02,
            "zero skew should stay uniform: {uniform}"
        );
        // Expected hot fraction is skew + (1 - skew)/templates.
        let skewed = hot_fraction(0.8);
        assert!(
            (skewed - (0.8 + 0.2 / 6.0)).abs() < 0.02,
            "0.8 skew hot fraction: {skewed}"
        );
        // Skew only redirects template choice: arrival instants and
        // priorities come from independent sub-streams and must not move.
        let mut s = spec(ArrivalKind::Poisson, 0.0);
        s.template_skew = 0.8;
        let skewed_stream: Vec<Arrival> = ArrivalStream::new(s).unwrap().collect();
        let base: Vec<Arrival> = ArrivalStream::new(spec(ArrivalKind::Poisson, 0.0))
            .unwrap()
            .collect();
        for (a, b) in base.iter().zip(&skewed_stream) {
            assert_eq!(a.offset_secs, b.offset_secs);
            assert_eq!(a.priority, b.priority);
        }
    }

    #[test]
    fn labels_round_trip() {
        for kind in [
            ArrivalKind::Poisson,
            ArrivalKind::Bursty,
            ArrivalKind::Diurnal,
        ] {
            assert_eq!(ArrivalKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(ArrivalKind::from_label("uniform"), None);
    }
}
