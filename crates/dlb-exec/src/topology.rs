//! Deterministic topology-event streams for the co-simulated engine.
//!
//! A fault-injection scenario specifies, per run, a list of [`TopologyEvent`]s
//! at fixed simulated times: node failures (state lost, recovered per the
//! configured [`crate::RecoveryPolicy`]), graceful drains (state migrated, no
//! loss) and re-joins of previously departed nodes. The engine merges the
//! stream into its seeded event loop, so a faulted run is as bit-replayable
//! as a fault-free one.
//!
//! The stream is validated up front against the machine shape by
//! [`validate_topology`]: times must be finite and non-negative, nodes must
//! exist, failures/drains may only hit live nodes, joins may only revive
//! previously departed nodes, and the live set may never become empty.

use dlb_common::{DlbError, NodeId};
use serde::{Deserialize, Serialize};

/// What happens to a node at a topology event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyChange {
    /// Crash failure: queued activations and operator state on the node are
    /// lost and recovered on the survivors per the recovery policy.
    NodeFail,
    /// Graceful departure: the node stops accepting work and its queued state
    /// migrates to the survivors (never lost, independent of the recovery
    /// policy).
    NodeDrain,
    /// A previously failed or drained node re-joins with empty memory and
    /// fresh threads, and becomes eligible for routing and stealing again.
    NodeJoin,
}

impl TopologyChange {
    /// Stable label, also the JSON spelling (`fail` / `drain` / `join`).
    pub fn label(&self) -> &'static str {
        match self {
            TopologyChange::NodeFail => "fail",
            TopologyChange::NodeDrain => "drain",
            TopologyChange::NodeJoin => "join",
        }
    }

    /// Parses a [`Self::label`] spelling.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "fail" => Some(TopologyChange::NodeFail),
            "drain" => Some(TopologyChange::NodeDrain),
            "join" => Some(TopologyChange::NodeJoin),
            _ => None,
        }
    }

    /// Discriminant used in cache-key fingerprints.
    pub fn bits(&self) -> u64 {
        match self {
            TopologyChange::NodeFail => 0,
            TopologyChange::NodeDrain => 1,
            TopologyChange::NodeJoin => 2,
        }
    }
}

/// One scheduled change to the live node set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyEvent {
    /// Simulated time at which the change takes effect.
    pub at_secs: f64,
    /// The affected node.
    pub node: NodeId,
    /// What happens to it.
    pub change: TopologyChange,
}

impl TopologyEvent {
    /// A failure of `node` at `at_secs`.
    pub fn fail(at_secs: f64, node: usize) -> Self {
        Self {
            at_secs,
            node: NodeId::from(node),
            change: TopologyChange::NodeFail,
        }
    }

    /// A graceful drain of `node` at `at_secs`.
    pub fn drain(at_secs: f64, node: usize) -> Self {
        Self {
            at_secs,
            node: NodeId::from(node),
            change: TopologyChange::NodeDrain,
        }
    }

    /// A re-join of `node` at `at_secs`.
    pub fn join(at_secs: f64, node: usize) -> Self {
        Self {
            at_secs,
            node: NodeId::from(node),
            change: TopologyChange::NodeJoin,
        }
    }
}

/// Checks a topology stream against a machine of `nodes` SM-nodes and returns
/// it sorted by time (stable, so same-time events keep their spec order).
///
/// Rules enforced: finite non-negative times; node indices in range; a fail
/// or drain only hits a currently live node; a join only revives a node that
/// previously failed or drained; at least one node stays live at all times.
pub fn validate_topology(
    events: &[TopologyEvent],
    nodes: u32,
) -> Result<Vec<TopologyEvent>, DlbError> {
    let mut sorted = events.to_vec();
    for ev in &sorted {
        if !ev.at_secs.is_finite() || ev.at_secs < 0.0 {
            return Err(DlbError::config(format!(
                "topology event time {} must be finite and >= 0",
                ev.at_secs
            )));
        }
        if ev.node.index() >= nodes as usize {
            return Err(DlbError::config(format!(
                "topology event targets node {} but the machine has {} nodes",
                ev.node.index(),
                nodes
            )));
        }
    }
    sorted.sort_by(|a, b| a.at_secs.partial_cmp(&b.at_secs).expect("finite times"));
    let mut live = vec![true; nodes as usize];
    for ev in &sorted {
        let n = ev.node.index();
        match ev.change {
            TopologyChange::NodeFail | TopologyChange::NodeDrain => {
                if !live[n] {
                    return Err(DlbError::config(format!(
                        "topology event {}s: node {} is already down",
                        ev.at_secs, n
                    )));
                }
                live[n] = false;
                if !live.iter().any(|&l| l) {
                    return Err(DlbError::config(format!(
                        "topology event {}s: removing node {} leaves no live nodes",
                        ev.at_secs, n
                    )));
                }
            }
            TopologyChange::NodeJoin => {
                if live[n] {
                    return Err(DlbError::config(format!(
                        "topology event {}s: node {} joins but never departed",
                        ev.at_secs, n
                    )));
                }
                live[n] = true;
            }
        }
    }
    Ok(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for c in [
            TopologyChange::NodeFail,
            TopologyChange::NodeDrain,
            TopologyChange::NodeJoin,
        ] {
            assert_eq!(TopologyChange::from_label(c.label()), Some(c));
        }
        assert_eq!(TopologyChange::from_label("reboot"), None);
    }

    #[test]
    fn valid_stream_is_sorted_stably() {
        let evs = vec![
            TopologyEvent::fail(0.5, 2),
            TopologyEvent::fail(0.1, 1),
            TopologyEvent::join(0.5, 1),
        ];
        let sorted = validate_topology(&evs, 4).unwrap();
        assert_eq!(sorted[0].node.index(), 1);
        // Same-time events keep input order: fail(2) before join(1).
        assert_eq!(sorted[1].change, TopologyChange::NodeFail);
        assert_eq!(sorted[2].change, TopologyChange::NodeJoin);
    }

    #[test]
    fn rejects_bad_time_node_and_sequencing() {
        let bad_time = [TopologyEvent::fail(f64::NAN, 0)];
        assert!(validate_topology(&bad_time, 4).is_err());
        let neg = [TopologyEvent::fail(-1.0, 0)];
        assert!(validate_topology(&neg, 4).is_err());
        let out_of_range = [TopologyEvent::fail(0.1, 4)];
        assert!(validate_topology(&out_of_range, 4).is_err());
        let double_fail = [TopologyEvent::fail(0.1, 1), TopologyEvent::drain(0.2, 1)];
        assert!(validate_topology(&double_fail, 4).is_err());
        let join_live = [TopologyEvent::join(0.1, 1)];
        assert!(validate_topology(&join_live, 4).is_err());
        let all_dead = [TopologyEvent::fail(0.1, 0), TopologyEvent::fail(0.2, 1)];
        assert!(validate_topology(&all_dead, 2).is_err());
        // ... but failing down to one node is fine, and a re-join revives.
        let ok = [
            TopologyEvent::fail(0.1, 0),
            TopologyEvent::join(0.3, 0),
            TopologyEvent::fail(0.4, 1),
        ];
        assert!(validate_topology(&ok, 2).is_ok());
    }
}
