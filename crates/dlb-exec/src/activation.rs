//! Activations and activation queues.
//!
//! The *activation* is the central concept of the paper's execution model
//! (§3.1): the finest unit of sequential work, self-contained so that **any**
//! thread of an SM-node can execute it. Two kinds exist:
//!
//! * **trigger activations** start a leaf (scan) operator; they reference the
//!   operator and the base-relation pages to scan,
//! * **data activations** carry pipelined tuples to a build or probe
//!   operator.
//!
//! The paper tunes granularity both ways: trigger activations cover one or
//! more *pages* of a bucket rather than a whole bucket, and data activations
//! are *buffered* (a batch of tuples rather than a single tuple). Activations
//! move between operators through *activation queues*; one queue exists per
//! (operator, thread) pair, and queue sizes are bounded for flow control.

use dlb_common::{DiskId, OperatorId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The payload of an activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Start a scan over `pages` pages holding `tuples` tuples, resident on
    /// `disk`.
    Trigger {
        /// Number of contiguous pages to read.
        pages: u64,
        /// Disk holding those pages.
        disk: DiskId,
    },
    /// Process a batch of pipelined tuples with a build or probe operator.
    Data,
}

/// A self-contained unit of sequential work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Activation {
    /// The operator (within its query's plan) that must process this
    /// activation.
    pub op: OperatorId,
    /// The query the activation belongs to. Single-query executions tag
    /// everything with query 0; the co-simulated engine mode (see
    /// [`crate::engine::execute_cosimulated`]) interleaves activations of
    /// several queries in one event loop, preserves the tag across steals
    /// and transfers, and charges per-query accounting to it (`op` is
    /// plan-local, so only the pair identifies the operator globally).
    pub query: u32,
    /// Trigger or data payload.
    pub kind: ActivationKind,
    /// Number of tuples covered by this activation.
    pub tuples: u64,
}

impl Activation {
    /// Creates a trigger activation (tagged with query 0).
    pub fn trigger(op: OperatorId, pages: u64, tuples: u64, disk: DiskId) -> Self {
        Self {
            op,
            query: 0,
            kind: ActivationKind::Trigger { pages, disk },
            tuples,
        }
    }

    /// Creates a data activation carrying `tuples` buffered tuples (tagged
    /// with query 0).
    pub fn data(op: OperatorId, tuples: u64) -> Self {
        Self {
            op,
            query: 0,
            kind: ActivationKind::Data,
            tuples,
        }
    }

    /// Retags this activation as belonging to `query` (co-simulated mode).
    pub fn for_query(mut self, query: u32) -> Self {
        self.query = query;
        self
    }

    /// True for trigger activations.
    pub fn is_trigger(&self) -> bool {
        matches!(self.kind, ActivationKind::Trigger { .. })
    }
}

/// Accounting of one [`ActivationQueue::drain_into`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DrainOutcome {
    /// Number of activations moved out of the queue.
    pub count: usize,
    /// Total tuples carried by the moved activations.
    pub tuples: u64,
}

/// A bounded activation queue (one per operator per thread).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ActivationQueue {
    items: VecDeque<Activation>,
    capacity: usize,
    enqueued: u64,
    dequeued: u64,
    high_water: usize,
    /// Tuples currently enqueued, maintained incrementally so the steal
    /// scheduler's load scans are O(1) per queue instead of O(len).
    tuples: u64,
}

impl ActivationQueue {
    /// Creates a queue bounded to `capacity` activations (0 = unbounded).
    pub fn new(capacity: usize) -> Self {
        Self {
            items: VecDeque::new(),
            capacity,
            enqueued: 0,
            dequeued: 0,
            high_water: 0,
            tuples: 0,
        }
    }

    /// True when no more activations can be accepted (flow control).
    pub fn is_full(&self) -> bool {
        self.capacity > 0 && self.items.len() >= self.capacity
    }

    /// True when the queue has no activations.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of queued activations.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Pushes an activation; returns `false` (and drops nothing — the caller
    /// keeps ownership semantics simple by checking [`is_full`] first) when
    /// the queue is full.
    ///
    /// [`is_full`]: ActivationQueue::is_full
    pub fn push(&mut self, a: Activation) -> bool {
        if self.is_full() {
            return false;
        }
        self.items.push_back(a);
        self.enqueued += 1;
        self.high_water = self.high_water.max(self.items.len());
        self.tuples += a.tuples;
        true
    }

    /// Pops the oldest activation.
    pub fn pop(&mut self) -> Option<Activation> {
        let out = self.items.pop_front();
        if let Some(a) = out {
            self.dequeued += 1;
            self.tuples -= a.tuples;
        }
        out
    }

    /// Number of activations ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Number of activations ever dequeued.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued
    }

    /// Largest queue length observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drains up to `max` activations (used when a queue is stolen by another
    /// SM-node during global load balancing).
    ///
    /// Allocates a fresh buffer per call; hot paths should prefer
    /// [`drain_into`], which reuses a caller-provided buffer and returns the
    /// drained tuple count without a second pass.
    ///
    /// [`drain_into`]: ActivationQueue::drain_into
    pub fn drain(&mut self, max: usize) -> Vec<Activation> {
        let mut out = Vec::new();
        self.drain_into(max, &mut out);
        out
    }

    /// Drains up to `max` activations, appending them to `out` (reusing its
    /// capacity across calls), and returns the drain accounting — how many
    /// activations and how many tuples moved — computed in the same pass.
    pub fn drain_into(&mut self, max: usize, out: &mut Vec<Activation>) -> DrainOutcome {
        let take = max.min(self.items.len());
        out.reserve(take);
        let mut tuples = 0u64;
        for a in self.items.drain(..take) {
            tuples += a.tuples;
            out.push(a);
        }
        self.dequeued += take as u64;
        self.tuples -= tuples;
        DrainOutcome {
            count: take,
            tuples,
        }
    }

    /// Total tuples currently enqueued (O(1): maintained incrementally).
    pub fn queued_tuples(&self) -> u64 {
        debug_assert_eq!(
            self.tuples,
            self.items.iter().map(|a| a.tuples).sum::<u64>(),
            "incremental tuple counter drifted from queue contents"
        );
        self.tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_common::NodeId;

    fn disk() -> DiskId {
        DiskId::new(NodeId::new(0), 0)
    }

    #[test]
    fn activation_constructors() {
        let t = Activation::trigger(OperatorId::new(1), 8, 640, disk());
        assert!(t.is_trigger());
        assert_eq!(t.tuples, 640);
        assert_eq!(t.query, 0);
        let d = Activation::data(OperatorId::new(2), 128);
        assert!(!d.is_trigger());
        assert_eq!(d.op, OperatorId::new(2));
        let tagged = d.for_query(3);
        assert_eq!(tagged.query, 3);
        assert_eq!(tagged.tuples, d.tuples);
    }

    #[test]
    fn queue_respects_capacity() {
        let mut q = ActivationQueue::new(2);
        assert!(q.push(Activation::data(OperatorId::new(0), 1)));
        assert!(q.push(Activation::data(OperatorId::new(0), 2)));
        assert!(q.is_full());
        assert!(!q.push(Activation::data(OperatorId::new(0), 3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_enqueued(), 2);
        q.pop().unwrap();
        assert!(!q.is_full());
        assert!(q.push(Activation::data(OperatorId::new(0), 3)));
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn unbounded_queue_never_fills() {
        let mut q = ActivationQueue::new(0);
        for i in 0..10_000u64 {
            assert!(q.push(Activation::data(OperatorId::new(0), i)));
        }
        assert!(!q.is_full());
        assert_eq!(q.len(), 10_000);
    }

    #[test]
    fn queue_is_fifo() {
        let mut q = ActivationQueue::new(0);
        for i in 0..5u64 {
            q.push(Activation::data(OperatorId::new(0), i));
        }
        for i in 0..5u64 {
            assert_eq!(q.pop().unwrap().tuples, i);
        }
        assert!(q.pop().is_none());
        assert_eq!(q.total_dequeued(), 5);
    }

    #[test]
    fn drain_into_reuses_capacity_and_accounts_in_one_pass() {
        let mut q = ActivationQueue::new(0);
        for i in 1..=10u64 {
            q.push(Activation::data(OperatorId::new(0), i));
        }
        let mut buf: Vec<Activation> = Vec::new();
        let first = q.drain_into(4, &mut buf);
        assert_eq!(
            first,
            DrainOutcome {
                count: 4,
                tuples: 1 + 2 + 3 + 4
            }
        );
        assert_eq!(buf.len(), 4);
        assert_eq!(q.total_dequeued(), 4);
        let cap = buf.capacity();
        buf.clear();
        // A second drain of the same size fits in the retained capacity.
        let second = q.drain_into(4, &mut buf);
        assert_eq!(
            second,
            DrainOutcome {
                count: 4,
                tuples: 5 + 6 + 7 + 8
            }
        );
        assert_eq!(buf.capacity(), cap);
        // Draining past the end accounts only what was available.
        buf.clear();
        let rest = q.drain_into(100, &mut buf);
        assert_eq!(
            rest,
            DrainOutcome {
                count: 2,
                tuples: 9 + 10
            }
        );
        assert!(q.is_empty());
        assert_eq!(q.total_dequeued(), 10);
        // Totals stay consistent with push accounting.
        assert_eq!(q.total_enqueued(), 10);
        let empty = q.drain_into(4, &mut buf);
        assert_eq!(empty, DrainOutcome::default());
    }

    #[test]
    fn drain_takes_oldest_first() {
        let mut q = ActivationQueue::new(0);
        for i in 0..10u64 {
            q.push(Activation::data(OperatorId::new(0), i));
        }
        let taken = q.drain(4);
        assert_eq!(taken.len(), 4);
        assert_eq!(taken[0].tuples, 0);
        assert_eq!(q.len(), 6);
        assert_eq!(q.queued_tuples(), (4..10).sum::<u64>());
        let rest = q.drain(100);
        assert_eq!(rest.len(), 6);
        assert!(q.is_empty());
    }
}
