//! Pluggable load-balancing strategies: the [`Policy`] trait and the zoo.
//!
//! The paper is a *comparison of load-balancing strategies*; this module makes
//! the comparison axis first-class. A [`Policy`] is a stateless singleton
//! describing one strategy through two surfaces:
//!
//! * a **plan-time allocation hook** ([`Policy::constrains_threads`] /
//!   [`Policy::allocate`]) — how a node's threads are statically assigned to
//!   operators before execution, with access to the (possibly distorted) cost
//!   model. FP lives here; DP returns `None` (any thread, any operator).
//! * a **run-time balancing hook** ([`Policy::work_mask`],
//!   [`Policy::starving_scope`], [`Policy::steal_provider`],
//!   [`Policy::push_config`], …) — work selection and steal/push decisions,
//!   consulted from the batched event loop. [`Policy::work_mask`] operates
//!   directly on the bitset words the selection path extracts from
//!   `LaneHot`-indexed ready sets, so a policy never forces the engine back to
//!   pointer-chasing.
//!
//! A [`Strategy`] value is a `Copy` handle pairing a `&'static dyn Policy`
//! with its parameter vector — cheap to pass around, comparable, and
//! fingerprintable into the run cache (`dlb_core::RunKey`) by name + parameter
//! bit patterns. The registered zoo is enumerated by [`policies`]; scenario
//! specs refer to policies by [`Policy::name`] with optional parameter maps.

use dlb_query::cost::CostModel;
use dlb_query::plan::ParallelPlan;
use rand::rngs::StdRng;
use std::fmt;

use crate::fp::ThreadAssignment;

/// One tunable parameter of a policy: its spec name and default value.
///
/// Parameter order is part of a policy's public identity: scenario serde,
/// labels and `RunKey` fingerprints all follow the order of
/// [`Policy::params`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamSpec {
    /// Parameter name as spelled in scenario specs (e.g. `error_rate`).
    pub name: &'static str,
    /// Default value when a spec names the policy without parameters.
    pub default: f64,
}

/// How a policy reacts when a whole node runs out of eligible work
/// (the §3.2 acquisition protocol's *Starving* trigger).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealScope {
    /// Never requests remote work (SP has no queues; Threshold is
    /// sender-initiated, so receivers stay passive).
    None,
    /// One untargeted request on behalf of the whole node; providers offer
    /// their most loaded eligible queue (DP, Diffusion).
    Node,
    /// One targeted request per starving operator the requesting thread is
    /// allowed to process (FP: static allocation means only the *same*
    /// operator's remote queue is eligible).
    TargetedOps,
}

/// Sender-initiated push thresholds (the `Threshold` policy): a node whose
/// queued-tuple load exceeds `hi` probes a neighbour; the neighbour accepts
/// when its own load is below `lo`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushConfig {
    /// Queued-tuple load above which a node tries to push work away.
    pub hi: f64,
    /// Queued-tuple load below which a probed node accepts pushed work.
    pub lo: f64,
}

/// A load-balancing policy: identity + plan-time allocation + run-time
/// balancing decisions. Implementations are stateless `'static` singletons;
/// per-run parameters travel in the [`Strategy`] handle and are passed back
/// into every hook that needs them.
pub trait Policy: Sync {
    /// Stable short name: spec spelling, column label stem, `RunKey` tag.
    fn name(&self) -> &'static str;

    /// One-line description for `scenario --strategies`.
    fn summary(&self) -> &'static str;

    /// Where the policy comes from (paper section or related work).
    fn citation(&self) -> &'static str;

    /// The policy's tunable parameters, in identity order (at most
    /// [`MAX_PARAMS`]).
    fn params(&self) -> &'static [ParamSpec] {
        &[]
    }

    /// Whether the policy statically restricts which operators each thread
    /// may process (plan-time surface; FP-style allocation).
    fn constrains_threads(&self) -> bool {
        false
    }

    /// Plan-time thread→operator allocation for one node, given the cost
    /// model and the strategy RNG stream. `None` means every thread may
    /// process every operator. Only consulted when
    /// [`Policy::constrains_threads`] is true.
    fn allocate(
        &self,
        _params: &Params,
        _plan: &ParallelPlan,
        _processors: u32,
        _cost: &CostModel,
        _rng: &mut StdRng,
    ) -> Option<ThreadAssignment> {
        None
    }

    /// Whether the policy executes on the queue-based activation engine.
    /// `false` selects the analytic Synchronous Pipelining model (single
    /// shared-memory node only).
    fn queue_based(&self) -> bool {
        true
    }

    /// Run-time work-selection mask: given the 64-bit window of ready
    /// operator queues a thread extracted from its lane (`ready`), and the
    /// matching window of its static allocation when one exists (`allowed`),
    /// returns the candidate set the thread may dequeue from. The default
    /// intersects the two; policies may reorder-free filter further but must
    /// return a subset of `ready`.
    fn work_mask(&self, ready: u64, allowed: Option<u64>) -> u64 {
        match allowed {
            Some(a) => ready & a,
            None => ready,
        }
    }

    /// Whether this policy overrides [`Policy::work_mask`]. The engine
    /// caches this at construction and keeps the default intersection
    /// *inline* in the per-lane selection fast path — the refactor's trait
    /// indirection never reaches the hottest loop. A policy that overrides
    /// `work_mask` must return `true` here to be consulted there (the
    /// registry tests pin non-custom policies to the default's output).
    fn custom_work_mask(&self) -> bool {
        false
    }

    /// What a fully starving node does (see [`StealScope`]).
    fn starving_scope(&self) -> StealScope {
        StealScope::None
    }

    /// Whether node `to` is a candidate provider for a steal request from
    /// node `from` on an `nodes`-node machine. The default lets any remote
    /// node provide; neighbourhood-limited policies (Diffusion) narrow it.
    fn steal_provider(&self, _params: &Params, from: usize, to: usize, _nodes: usize) -> bool {
        from != to
    }

    /// Whether offer arbitration prefers providers whose hash table is
    /// already cached on the requester (DP's table-affinity tie-break).
    fn prefers_cached_tables(&self) -> bool {
        false
    }

    /// Sender-initiated push thresholds, when the policy pushes work from
    /// overloaded nodes instead of (or in addition to) pulling into starving
    /// ones. `None` disables the push path entirely.
    fn push_config(&self, _params: &Params) -> Option<PushConfig> {
        None
    }
}

/// Maximum number of parameters a policy may declare (sized so a parameter
/// vector stays `Copy` and fingerprints into a fixed-width `RunKey` field).
pub const MAX_PARAMS: usize = 2;

/// Parameter values of one [`Strategy`] handle, in [`Policy::params`] order
/// (unused trailing slots hold `0.0`).
#[derive(Debug, Clone, Copy)]
pub struct Params(pub [f64; MAX_PARAMS]);

/// The execution strategy to evaluate: a registered [`Policy`] plus its
/// parameter values. `Copy`, comparable, and hashable by (name, parameter
/// bits) — the same identity the run cache fingerprints.
#[derive(Clone, Copy)]
pub struct Strategy {
    policy: &'static dyn Policy,
    params: Params,
}

impl Strategy {
    /// **Dynamic Processing** (DP) — the paper's contribution: no static
    /// association between threads and operators; any thread of an SM-node
    /// processes any unblocked activation of that node; global load sharing
    /// only when the whole node starves.
    pub const fn dynamic() -> Self {
        Self {
            policy: &DpPolicy,
            params: Params([0.0; MAX_PARAMS]),
        }
    }

    /// **Fixed Processing** (FP) — shared-nothing style static allocation of
    /// processors to operators, proportional to estimated operator
    /// complexity, with intra-operator load balancing only. `error_rate`
    /// injects relative errors into the cardinality estimates used for the
    /// allocation (Figure 7).
    pub const fn fixed(error_rate: f64) -> Self {
        Self {
            policy: &FpPolicy,
            params: Params([error_rate, 0.0]),
        }
    }

    /// **Synchronous Pipelining** (SP) — the shared-memory reference model
    /// where every processor executes whole pipeline chains through procedure
    /// calls. Only valid on single-node (shared-memory) configurations.
    pub const fn synchronous() -> Self {
        Self {
            policy: &SpPolicy,
            params: Params([0.0; MAX_PARAMS]),
        }
    }

    /// **Diffusion** nearest-neighbour balancing (Demirel & Sbalzarini):
    /// starving nodes pull only from ring neighbours within `radius` hops, so
    /// load diffuses through the topology instead of being arbitrated
    /// globally.
    pub const fn diffusion(radius: f64) -> Self {
        Self {
            policy: &DiffusionPolicy,
            params: Params([radius, 0.0]),
        }
    }

    /// **Threshold** sender-initiated balancing (Mandal & Pal): a node whose
    /// queued load crosses `hi` probes a neighbour and pushes part of its
    /// most loaded queue when the neighbour sits below `lo`. Starving nodes
    /// never request work themselves.
    pub const fn threshold(hi: f64, lo: f64) -> Self {
        Self {
            policy: &ThresholdPolicy,
            params: Params([hi, lo]),
        }
    }

    /// The underlying policy singleton.
    pub fn policy(&self) -> &'static dyn Policy {
        self.policy
    }

    /// The policy's stable short name (`"DP"`, `"FP"`, …).
    pub fn name(&self) -> &'static str {
        self.policy.name()
    }

    /// Column/row label: the bare policy name when every parameter holds its
    /// default (`"FP"` for `error_rate = 0`), else the name with the values
    /// appended — `FP@0.5` for single-parameter policies,
    /// `Threshold@hi=4096,lo=512` for multi-parameter ones — so two handles
    /// of one policy never render identically unless they *are* identical.
    pub fn label(&self) -> String {
        let specs = self.policy.params();
        let defaulted = specs
            .iter()
            .enumerate()
            .all(|(i, spec)| self.params.0[i].to_bits() == spec.default.to_bits());
        if defaulted {
            return self.name().to_string();
        }
        let suffix = if specs.len() == 1 {
            format!("{}", self.params.0[0])
        } else {
            specs
                .iter()
                .enumerate()
                .map(|(i, spec)| format!("{}={}", spec.name, self.params.0[i]))
                .collect::<Vec<_>>()
                .join(",")
        };
        format!("{}@{}", self.name(), suffix)
    }

    /// The parameter values, in [`Policy::params`] order.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The value of parameter `name`, when the policy declares it.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.policy
            .params()
            .iter()
            .position(|spec| spec.name == name)
            .map(|i| self.params.0[i])
    }

    /// A copy with parameter `name` set to `value`; unchanged when the policy
    /// does not declare that parameter (so axis sweeps apply uniformly across
    /// a strategy set and only bite the policies that listen).
    pub fn with_param(&self, name: &str, value: f64) -> Self {
        let mut out = *self;
        if let Some(i) = self.policy.params().iter().position(|s| s.name == name) {
            out.params.0[i] = value;
        }
        out
    }

    /// Parameter bit patterns (identity order, `0` in unused slots): the
    /// run-cache fingerprint companion of [`Strategy::name`].
    pub fn param_bits(&self) -> [u64; MAX_PARAMS] {
        let mut bits = [0u64; MAX_PARAMS];
        for (slot, value) in bits.iter_mut().zip(self.params.0) {
            *slot = value.to_bits();
        }
        bits
    }

    /// Looks a policy up by [`Policy::name`] and returns its all-defaults
    /// handle.
    pub fn from_name(name: &str) -> Option<Self> {
        let policy = *policies().iter().find(|p| p.name() == name)?;
        let mut params = Params([0.0; MAX_PARAMS]);
        for (i, spec) in policy.params().iter().enumerate() {
            params.0[i] = spec.default;
        }
        Some(Self { policy, params })
    }

    // ---- delegated policy surfaces (parameters threaded automatically) ----

    /// See [`Policy::constrains_threads`].
    pub fn constrains_threads(&self) -> bool {
        self.policy.constrains_threads()
    }

    /// See [`Policy::allocate`].
    pub fn allocate(
        &self,
        plan: &ParallelPlan,
        processors: u32,
        cost: &CostModel,
        rng: &mut StdRng,
    ) -> Option<ThreadAssignment> {
        self.policy
            .allocate(&self.params, plan, processors, cost, rng)
    }

    /// See [`Policy::queue_based`].
    pub fn queue_based(&self) -> bool {
        self.policy.queue_based()
    }

    /// See [`Policy::work_mask`].
    #[inline]
    pub fn work_mask(&self, ready: u64, allowed: Option<u64>) -> u64 {
        self.policy.work_mask(ready, allowed)
    }

    /// See [`Policy::custom_work_mask`].
    pub fn custom_work_mask(&self) -> bool {
        self.policy.custom_work_mask()
    }

    /// See [`Policy::starving_scope`].
    pub fn starving_scope(&self) -> StealScope {
        self.policy.starving_scope()
    }

    /// See [`Policy::steal_provider`].
    pub fn steal_provider(&self, from: usize, to: usize, nodes: usize) -> bool {
        self.policy.steal_provider(&self.params, from, to, nodes)
    }

    /// See [`Policy::prefers_cached_tables`].
    pub fn prefers_cached_tables(&self) -> bool {
        self.policy.prefers_cached_tables()
    }

    /// See [`Policy::push_config`].
    pub fn push_config(&self) -> Option<PushConfig> {
        self.policy.push_config(&self.params)
    }
}

impl fmt::Debug for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

impl PartialEq for Strategy {
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name() && self.param_bits() == other.param_bits()
    }
}

/// The registered policy zoo, in presentation order. Scenario serde, the
/// `--strategies` listing and the conservation property tests all iterate
/// this slice, so registering a policy here is the single step that plugs it
/// into specs, docs and CI.
pub fn policies() -> &'static [&'static dyn Policy] {
    &[
        &DpPolicy,
        &FpPolicy,
        &SpPolicy,
        &DiffusionPolicy,
        &ThresholdPolicy,
    ]
}

/// Dynamic Processing (§5.2.1): the paper's strategy.
pub struct DpPolicy;

impl Policy for DpPolicy {
    fn name(&self) -> &'static str {
        "DP"
    }

    fn summary(&self) -> &'static str {
        "Dynamic Processing: any thread runs any unblocked operator; whole-node starvation triggers a global steal"
    }

    fn citation(&self) -> &'static str {
        "Bouganim, Florescu & Valduriez, VLDB '96 (this paper, §3)"
    }

    fn starving_scope(&self) -> StealScope {
        StealScope::Node
    }

    fn prefers_cached_tables(&self) -> bool {
        true
    }
}

/// Fixed Processing (§5.2.1): static processor-to-operator allocation.
pub struct FpPolicy;

impl Policy for FpPolicy {
    fn name(&self) -> &'static str {
        "FP"
    }

    fn summary(&self) -> &'static str {
        "Fixed Processing: threads statically allocated to operators by estimated complexity; per-operator steals only"
    }

    fn citation(&self) -> &'static str {
        "Bouganim, Florescu & Valduriez, VLDB '96 (§5.2.1, shared-nothing style)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        &[ParamSpec {
            name: "error_rate",
            default: 0.0,
        }]
    }

    fn constrains_threads(&self) -> bool {
        true
    }

    fn allocate(
        &self,
        params: &Params,
        plan: &ParallelPlan,
        processors: u32,
        cost: &CostModel,
        rng: &mut StdRng,
    ) -> Option<ThreadAssignment> {
        Some(crate::fp::allocate_threads(
            plan,
            processors,
            cost,
            params.0[0],
            rng,
        ))
    }

    fn starving_scope(&self) -> StealScope {
        StealScope::TargetedOps
    }
}

/// Synchronous Pipelining (§5.2.1): the analytic shared-memory reference.
pub struct SpPolicy;

impl Policy for SpPolicy {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn summary(&self) -> &'static str {
        "Synchronous Pipelining: every processor runs whole chains by procedure call (analytic, single SM-node only)"
    }

    fn citation(&self) -> &'static str {
        "Bouganim, Florescu & Valduriez, VLDB '96 (§5.2.1, after Shekita '93 / Hong '92)"
    }

    fn queue_based(&self) -> bool {
        false
    }
}

/// Diffusion nearest-neighbour balancing (Demirel & Sbalzarini).
pub struct DiffusionPolicy;

impl Policy for DiffusionPolicy {
    fn name(&self) -> &'static str {
        "Diffusion"
    }

    fn summary(&self) -> &'static str {
        "Diffusion: starving nodes pull only from ring neighbours within `radius` hops; load spreads hop by hop"
    }

    fn citation(&self) -> &'static str {
        "Demirel & Sbalzarini, arXiv:1308.0148 (nearest-neighbour balancing in arbitrary networks)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        &[ParamSpec {
            name: "radius",
            default: 1.0,
        }]
    }

    fn starving_scope(&self) -> StealScope {
        StealScope::Node
    }

    fn steal_provider(&self, params: &Params, from: usize, to: usize, nodes: usize) -> bool {
        if from == to {
            return false;
        }
        let distance = from.abs_diff(to).min(nodes - from.abs_diff(to));
        (distance as f64) <= params.0[0]
    }
}

/// Threshold sender-initiated balancing (Mandal & Pal).
pub struct ThresholdPolicy;

impl Policy for ThresholdPolicy {
    fn name(&self) -> &'static str {
        "Threshold"
    }

    fn summary(&self) -> &'static str {
        "Threshold: nodes above `hi` queued tuples push work to a probed neighbour below `lo`; receivers stay passive"
    }

    fn citation(&self) -> &'static str {
        "Mandal & Pal, arXiv:1109.1650 (sender-initiated threshold policies)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        &[
            ParamSpec {
                name: "hi",
                default: 2048.0,
            },
            ParamSpec {
                name: "lo",
                default: 256.0,
            },
        ]
    }

    fn push_config(&self, params: &Params) -> Option<PushConfig> {
        Some(PushConfig {
            hi: params.0[0],
            lo: params.0[1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_suppress_defaults_and_disambiguate_otherwise() {
        assert_eq!(Strategy::dynamic().label(), "DP");
        assert_eq!(Strategy::fixed(0.0).label(), "FP");
        assert_eq!(Strategy::fixed(0.5).label(), "FP@0.5");
        assert_eq!(Strategy::synchronous().label(), "SP");
        assert_eq!(Strategy::diffusion(1.0).label(), "Diffusion");
        assert_eq!(Strategy::diffusion(2.0).label(), "Diffusion@2");
        assert_eq!(Strategy::threshold(2048.0, 256.0).label(), "Threshold");
        assert_eq!(
            Strategy::threshold(4096.0, 512.0).label(),
            "Threshold@hi=4096,lo=512"
        );
    }

    #[test]
    fn equality_is_name_plus_param_bits() {
        assert_eq!(Strategy::fixed(0.2), Strategy::fixed(0.2));
        assert_ne!(Strategy::fixed(0.2), Strategy::fixed(0.3));
        assert_ne!(Strategy::dynamic(), Strategy::fixed(0.0));
        assert_eq!(
            Strategy::from_name("Diffusion").unwrap(),
            Strategy::diffusion(1.0)
        );
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let zoo = policies();
        for (i, p) in zoo.iter().enumerate() {
            assert!(
                zoo[..i].iter().all(|q| q.name() != p.name()),
                "duplicate policy name {}",
                p.name()
            );
            assert!(p.params().len() <= MAX_PARAMS);
            assert!(!p.citation().is_empty());
            assert!(!p.summary().is_empty());
            assert!(Strategy::from_name(p.name()).is_some());
        }
        assert!(Strategy::from_name("XP").is_none());
    }

    #[test]
    fn with_param_only_bites_declared_params() {
        let fp = Strategy::fixed(0.0).with_param("error_rate", 0.4);
        assert_eq!(fp.param("error_rate"), Some(0.4));
        let dp = Strategy::dynamic().with_param("error_rate", 0.4);
        assert_eq!(dp, Strategy::dynamic());
    }

    #[test]
    fn default_work_mask_intersects_allowed() {
        let dp = Strategy::dynamic();
        assert_eq!(dp.work_mask(0b1011, None), 0b1011);
        let fp = Strategy::fixed(0.0);
        assert_eq!(fp.work_mask(0b1011, Some(0b0110)), 0b0010);
    }

    /// The engine devirtualizes the default `work_mask` behind the cached
    /// `custom_work_mask` flag; a registered policy that overrides the mask
    /// without raising the flag would silently run the default in the fast
    /// path. Pin the equivalence on sampled words for every non-custom
    /// policy.
    #[test]
    fn non_custom_policies_match_the_default_work_mask() {
        let samples = [0u64, 1, 0b1011, 0xDEAD_BEEF, u64::MAX, 1 << 63];
        for policy in policies() {
            if policy.custom_work_mask() {
                continue;
            }
            for &ready in &samples {
                for allowed in [None, Some(0u64), Some(0b0110), Some(u64::MAX)] {
                    assert_eq!(
                        policy.work_mask(ready, allowed),
                        ready & allowed.unwrap_or(u64::MAX),
                        "{} diverges from the default work mask it claims to use",
                        policy.name()
                    );
                }
            }
        }
    }

    #[test]
    fn diffusion_limits_providers_to_ring_neighbours() {
        let d = Strategy::diffusion(1.0);
        // 8-node ring: node 0's neighbours are 1 and 7.
        assert!(d.steal_provider(0, 1, 8));
        assert!(d.steal_provider(0, 7, 8));
        assert!(!d.steal_provider(0, 2, 8));
        assert!(!d.steal_provider(0, 4, 8));
        assert!(!d.steal_provider(0, 0, 8));
        let wide = Strategy::diffusion(2.0);
        assert!(wide.steal_provider(0, 2, 8));
        assert!(!wide.steal_provider(0, 3, 8));
        // DP's default: everyone but yourself.
        let dp = Strategy::dynamic();
        assert!(dp.steal_provider(0, 4, 8));
        assert!(!dp.steal_provider(3, 3, 8));
    }

    #[test]
    fn scopes_and_push_configs_match_the_paper_roles() {
        assert_eq!(Strategy::dynamic().starving_scope(), StealScope::Node);
        assert_eq!(
            Strategy::fixed(0.1).starving_scope(),
            StealScope::TargetedOps
        );
        assert_eq!(Strategy::synchronous().starving_scope(), StealScope::None);
        assert_eq!(
            Strategy::threshold(2048.0, 256.0).starving_scope(),
            StealScope::None
        );
        assert!(Strategy::dynamic().push_config().is_none());
        let push = Strategy::threshold(1000.0, 100.0).push_config().unwrap();
        assert_eq!(push.hi, 1000.0);
        assert_eq!(push.lo, 100.0);
        assert!(Strategy::dynamic().queue_based());
        assert!(!Strategy::synchronous().queue_based());
        assert!(Strategy::fixed(0.0).constrains_threads());
        assert!(!Strategy::diffusion(1.0).constrains_threads());
    }
}
