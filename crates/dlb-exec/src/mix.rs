//! Inter-query (multi-query) scheduling: admission, placement and
//! processor-sharing of N concurrent queries on the SM-nodes of one machine.
//!
//! The paper's hierarchical architecture is motivated by *many* queries
//! sharing a few powerful SM-nodes, but the intra-query engines of this crate
//! execute one plan at a time. This module adds the missing inter-query
//! layer as a deterministic scheduler simulation on top of engine-measured
//! per-query costs:
//!
//! * each query is a [`MixJob`]: an arrival offset, a priority, the
//!   standalone (solo) response time the engine measured for it on its
//!   placement shape, and a working-set estimate (its hash tables) used for
//!   memory admission;
//! * a [`MixPolicy`] decides placement: [`MixPolicy::Fcfs`] admits queries
//!   in arrival order onto the whole machine, [`MixPolicy::RoundRobin`]
//!   pins each query to one SM-node in rotation, and
//!   [`MixPolicy::LoadAware`] pins each query to the SM-node with the least
//!   outstanding work at admission time (the same load metric — queued work
//!   seconds — the engine's global load balancing reasons about);
//! * admitted queries time-share their nodes under priority-weighted
//!   processor sharing: a query of weight `w` on a node whose admitted
//!   weights sum to `W` progresses at rate `w / W`, so a query alone on its
//!   placement finishes in exactly its solo time;
//! * a query is only admitted when every node of its placement has enough
//!   free memory for its share of the working set (the admission limit the
//!   engine's steal policy also respects); otherwise it waits, in strict
//!   arrival order with head-of-line blocking (priorities weight the
//!   sharing of admitted queries, they never jump the admission queue).
//!
//! [`schedule_mix`] runs the event-driven simulation to completion and
//! returns a [`MixSchedule`] with per-query response times
//! ([`QueryOutcome`]) and the aggregate metrics the scenario layer renders.

use dlb_common::{DlbError, Result};
use serde::{Deserialize, Serialize};

/// How an inter-query mix is evaluated.
///
/// The scheduler of this module ([`schedule_mix`]) and the engine's
/// co-simulated mode ([`crate::engine::execute_cosimulated`]) answer the
/// same question — what do N concurrent queries experience on the shared
/// SM-nodes? — at two fidelities. Both support every placement policy and
/// per-node memory admission. `Composed` is cheap (per-query solo runs plus
/// an analytic model); `CoSimulated` actually interleaves the queries'
/// activations in one event loop, so queue contention, flow control,
/// cross-query steal traffic and admission serialization are simulated
/// rather than modeled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MixMode {
    /// Compose engine-measured **solo** runs with priority-weighted
    /// processor sharing and per-node memory admission (the analytic model
    /// of [`schedule_mix`]). The default.
    #[default]
    Composed,
    /// Interleave all queries inside **one** engine event loop
    /// ([`crate::engine::execute_cosimulated`]): query-tagged activations,
    /// priority-aware local scheduling, steal decisions that see cross-query
    /// load, per-query placement masks (pinning policies re-home each plan
    /// onto its node) and per-node memory admission with head-of-line FCFS
    /// queueing — the same admission discipline as [`schedule_mix`], driven
    /// by the simulated completion instants instead of the analytic ones.
    CoSimulated,
}

impl MixMode {
    /// Stable lower-case label, also the JSON spelling (`composed`,
    /// `co-simulated`).
    pub fn label(&self) -> &'static str {
        match self {
            MixMode::Composed => "composed",
            MixMode::CoSimulated => "co-simulated",
        }
    }

    /// Parses a [`MixMode::label`] spelling.
    pub fn from_label(label: &str) -> Result<Self> {
        match label {
            "composed" => Ok(MixMode::Composed),
            "co-simulated" => Ok(MixMode::CoSimulated),
            other => Err(DlbError::Parse(format!(
                "unknown mix mode {other:?} (expected composed | co-simulated)"
            ))),
        }
    }
}

/// Admission / placement policy of an inter-query mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MixPolicy {
    /// First come, first served onto the *whole* machine: every admitted
    /// query spreads over all SM-nodes and time-shares them with every other
    /// admitted query.
    Fcfs,
    /// Each query is pinned to one SM-node, assigned in admission rotation
    /// (query `i` to node `i mod nodes`). Blind but cheap placement.
    RoundRobin,
    /// Each query is pinned to the SM-node with the least outstanding
    /// admitted work (in remaining solo-seconds) at its admission instant —
    /// placement driven by the engine's load metric.
    LoadAware,
}

impl MixPolicy {
    /// Stable lower-case label, also the JSON spelling (`fcfs`,
    /// `round-robin`, `load-aware`).
    pub fn label(&self) -> &'static str {
        match self {
            MixPolicy::Fcfs => "fcfs",
            MixPolicy::RoundRobin => "round-robin",
            MixPolicy::LoadAware => "load-aware",
        }
    }

    /// Parses a [`MixPolicy::label`] spelling.
    pub fn from_label(label: &str) -> Result<Self> {
        match label {
            "fcfs" => Ok(MixPolicy::Fcfs),
            "round-robin" => Ok(MixPolicy::RoundRobin),
            "load-aware" => Ok(MixPolicy::LoadAware),
            other => Err(DlbError::Parse(format!(
                "unknown mix policy {other:?} (expected fcfs | round-robin | load-aware)"
            ))),
        }
    }
}

/// One query of a mix, as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixJob {
    /// Arrival offset from the start of the mix, in seconds.
    pub arrival_secs: f64,
    /// Scheduling priority (≥ 1). Used as the processor-sharing weight: a
    /// priority-2 query progresses twice as fast as a priority-1 query
    /// sharing the same node.
    pub priority: u32,
    /// Standalone response time on the query's placement shape (one SM-node
    /// for pinning policies, the full machine for FCFS), as measured by the
    /// execution engine.
    pub solo_secs: f64,
    /// Working-set estimate (hash tables) used for memory admission, spread
    /// evenly over the nodes of the placement.
    pub memory_bytes: u64,
}

/// The scheduler's verdict on one query of the mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Index of the query within the mix.
    pub query: usize,
    /// The SM-node the query was pinned to, or `None` when it spread over
    /// the whole machine (FCFS).
    pub node: Option<u32>,
    /// Arrival offset, in seconds.
    pub arrival_secs: f64,
    /// Instant the query was admitted (= arrival unless memory was tight).
    pub admitted_secs: f64,
    /// Instant the query completed.
    pub completion_secs: f64,
    /// Response time: completion − arrival.
    pub response_secs: f64,
    /// Admission delay: admitted − arrival.
    pub wait_secs: f64,
    /// The standalone response time the query was charged with.
    pub solo_secs: f64,
    /// Multi-query slowdown: response / solo (1.0 = no interference).
    pub slowdown: f64,
}

/// The outcome of scheduling one mix: per-query outcomes plus the aggregate
/// response-time metrics of the paper-style evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixSchedule {
    /// The policy that produced this schedule.
    pub policy: MixPolicy,
    /// Whether the schedule came from the analytic composition
    /// ([`schedule_mix`]) or from a co-simulated engine run.
    pub mode: MixMode,
    /// One outcome per query, in mix order.
    pub queries: Vec<QueryOutcome>,
    /// Completion instant of the last query (seconds from mix start).
    pub makespan_secs: f64,
    /// Mean per-query response time.
    pub mean_response_secs: f64,
    /// Largest per-query response time.
    pub max_response_secs: f64,
    /// Mean per-query slowdown against the solo run.
    pub mean_slowdown: f64,
    /// Mean admission delay.
    pub mean_wait_secs: f64,
}

/// Completion slack under which a query counts as finished (guards the event
/// loop against floating-point residue).
const EPS: f64 = 1e-9;

/// An admitted query mid-flight.
struct Active {
    job: usize,
    nodes: Vec<u32>,
    weight: f64,
    remaining_secs: f64,
    mem_per_node: u64,
}

/// Runs the inter-query schedule of `jobs` on a machine of `nodes` SM-nodes
/// with `memory_per_node` bytes of shared memory each, under `policy`.
///
/// The simulation is deterministic: outcomes depend only on the inputs. A
/// query whose memory demand can never fit (even on an idle machine) is an
/// [`DlbError::InvalidConfig`] error rather than a deadlock.
pub fn schedule_mix(
    jobs: &[MixJob],
    nodes: u32,
    memory_per_node: u64,
    policy: MixPolicy,
) -> Result<MixSchedule> {
    if nodes == 0 {
        return Err(DlbError::config("mix machine needs at least one node"));
    }
    let placement_size = match policy {
        MixPolicy::Fcfs => nodes as u64,
        MixPolicy::RoundRobin | MixPolicy::LoadAware => 1,
    };
    for (i, job) in jobs.iter().enumerate() {
        if job.priority == 0 {
            return Err(DlbError::config(format!("query {i} has priority 0")));
        }
        if !(job.arrival_secs.is_finite() && job.arrival_secs >= 0.0) {
            return Err(DlbError::config(format!(
                "query {i} has invalid arrival {}",
                job.arrival_secs
            )));
        }
        if !(job.solo_secs.is_finite() && job.solo_secs >= 0.0) {
            return Err(DlbError::config(format!(
                "query {i} has invalid solo time {}",
                job.solo_secs
            )));
        }
        let per_node = job.memory_bytes.div_ceil(placement_size);
        if per_node > memory_per_node {
            return Err(DlbError::config(format!(
                "query {i} needs {per_node} bytes per node of its placement \
                 but nodes have {memory_per_node}"
            )));
        }
    }

    // Arrival order (stable on ties by mix index).
    let mut arrival_order: Vec<usize> = (0..jobs.len()).collect();
    arrival_order.sort_by(|&a, &b| {
        jobs[a]
            .arrival_secs
            .total_cmp(&jobs[b].arrival_secs)
            .then(a.cmp(&b))
    });

    let mut outcomes: Vec<Option<QueryOutcome>> = vec![None; jobs.len()];
    let mut free_mem: Vec<u64> = vec![memory_per_node; nodes as usize];
    let mut active: Vec<Active> = Vec::new();
    // Waiting queries in strict arrival order; admission stops at the first
    // query that does not fit (head-of-line blocking).
    let mut waiting: Vec<usize> = Vec::new();
    let mut next_arrival = 0usize;
    let mut admitted_count = 0usize; // round-robin rotation cursor
    let mut now = 0.0f64;

    // Per-node admitted weight, recomputed on every membership change.
    let node_weight = |active: &[Active]| -> Vec<f64> {
        let mut w = vec![0.0f64; nodes as usize];
        for a in active {
            for &n in &a.nodes {
                w[n as usize] += a.weight;
            }
        }
        w
    };
    // Progress rate of one active query under priority-weighted processor
    // sharing, averaged over its placement nodes so that a query alone on
    // its whole placement runs at rate 1.
    let rate_of = |a: &Active, weights: &[f64]| -> f64 {
        let share: f64 = a
            .nodes
            .iter()
            .map(|&n| a.weight / weights[n as usize].max(a.weight))
            .sum();
        share / a.nodes.len() as f64
    };

    while next_arrival < arrival_order.len() || !active.is_empty() || !waiting.is_empty() {
        // Admit as many waiting queries as memory allows, in queue order.
        let mut admitted_any = true;
        while admitted_any {
            admitted_any = false;
            if let Some(&job_idx) = waiting.first() {
                let job = &jobs[job_idx];
                let placement: Vec<u32> = match policy {
                    MixPolicy::Fcfs => (0..nodes).collect(),
                    MixPolicy::RoundRobin => vec![(admitted_count as u32) % nodes],
                    MixPolicy::LoadAware => {
                        // Outstanding admitted work per node, in remaining
                        // solo-seconds.
                        let mut load = vec![0.0f64; nodes as usize];
                        for a in &active {
                            for &n in &a.nodes {
                                load[n as usize] += a.remaining_secs / a.nodes.len() as f64;
                            }
                        }
                        let best = (0..nodes)
                            .min_by(|&x, &y| load[x as usize].total_cmp(&load[y as usize]))
                            .expect("at least one node");
                        vec![best]
                    }
                };
                let mem_per_node = job.memory_bytes.div_ceil(placement.len() as u64);
                let fits = placement
                    .iter()
                    .all(|&n| free_mem[n as usize] >= mem_per_node);
                if fits {
                    waiting.remove(0);
                    for &n in &placement {
                        free_mem[n as usize] -= mem_per_node;
                    }
                    admitted_count += 1;
                    // Arrivals are enqueued at `arrival_secs <= now + EPS`,
                    // so `now` can sit an epsilon *before* the arrival —
                    // clamp so the recorded wait is never negative.
                    let wait_secs = (now - job.arrival_secs).max(0.0);
                    debug_assert!(wait_secs >= 0.0);
                    outcomes[job_idx] = Some(QueryOutcome {
                        query: job_idx,
                        node: (placement.len() == 1).then(|| placement[0]),
                        arrival_secs: job.arrival_secs,
                        admitted_secs: now.max(job.arrival_secs),
                        completion_secs: 0.0, // filled at completion
                        response_secs: 0.0,
                        wait_secs,
                        solo_secs: job.solo_secs,
                        slowdown: 1.0,
                    });
                    active.push(Active {
                        job: job_idx,
                        nodes: placement,
                        weight: job.priority as f64,
                        remaining_secs: job.solo_secs,
                        mem_per_node,
                    });
                    admitted_any = true;
                }
            }
        }

        // Immediate completions (zero-work queries, floating-point residue).
        if finish_done(&mut active, &mut free_mem, &mut outcomes, now) {
            continue;
        }
        if active.is_empty() && waiting.is_empty() && next_arrival >= arrival_order.len() {
            break;
        }

        // Time of the next event: the earliest pending arrival or the
        // earliest completion at current rates.
        let weights = node_weight(&active);
        let arrival_t = arrival_order
            .get(next_arrival)
            .map(|&j| jobs[j].arrival_secs.max(now));
        let completion_t = active
            .iter()
            .map(|a| now + a.remaining_secs / rate_of(a, &weights))
            .min_by(f64::total_cmp);
        let t_next = match (arrival_t, completion_t) {
            (Some(a), Some(c)) => a.min(c),
            (Some(a), None) => a,
            (None, Some(c)) => c,
            (None, None) => {
                // Waiting queries but nothing active and no arrivals left:
                // unreachable thanks to the feasibility pre-check.
                return Err(DlbError::exec("mix admission deadlocked"));
            }
        };

        // Advance every active query to t_next.
        let dt = t_next - now;
        if dt > 0.0 {
            for a in active.iter_mut() {
                a.remaining_secs -= dt * rate_of(a, &weights);
            }
        }
        now = t_next;

        // Enqueue arrivals due now. Admission is strictly first come, first
        // served: priorities weight the processor sharing of *admitted*
        // queries but never jump the admission queue.
        while next_arrival < arrival_order.len()
            && jobs[arrival_order[next_arrival]].arrival_secs <= now + EPS
        {
            waiting.push(arrival_order[next_arrival]);
            next_arrival += 1;
        }

        finish_done(&mut active, &mut free_mem, &mut outcomes, now);
    }

    // Memory conservation: every admitted query released exactly what it
    // reserved, so each node's free memory is back at its capacity. A
    // violation would mean admission double-booked or leaked memory — fail
    // loudly instead of returning a schedule built on corrupt accounting.
    if free_mem.iter().any(|&f| f != memory_per_node) {
        return Err(DlbError::exec(format!(
            "mix admission leaked memory: free per node {free_mem:?} after completion, \
             expected {memory_per_node} everywhere"
        )));
    }

    let mut queries: Vec<QueryOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every query was scheduled"))
        .collect();
    queries.sort_by_key(|o| o.query);

    let n = queries.len() as f64;
    let mean = |f: &dyn Fn(&QueryOutcome) -> f64| -> f64 {
        if queries.is_empty() {
            0.0
        } else {
            queries.iter().map(f).sum::<f64>() / n
        }
    };
    Ok(MixSchedule {
        policy,
        mode: MixMode::Composed,
        makespan_secs: queries
            .iter()
            .map(|o| o.completion_secs)
            .fold(0.0, f64::max),
        mean_response_secs: mean(&|o| o.response_secs),
        max_response_secs: queries.iter().map(|o| o.response_secs).fold(0.0, f64::max),
        mean_slowdown: mean(&|o| o.slowdown),
        mean_wait_secs: mean(&|o| o.wait_secs),
        queries,
    })
}

/// Completes every active query whose remaining work is (numerically) zero,
/// freeing its memory. Returns whether anything completed.
fn finish_done(
    active: &mut Vec<Active>,
    free_mem: &mut [u64],
    outcomes: &mut [Option<QueryOutcome>],
    now: f64,
) -> bool {
    let mut any = false;
    let mut i = 0;
    while i < active.len() {
        if active[i].remaining_secs <= EPS {
            let a = active.swap_remove(i);
            for &n in &a.nodes {
                free_mem[n as usize] += a.mem_per_node;
            }
            let o = outcomes[a.job].as_mut().expect("admitted before completed");
            // Like the admission instant, `now` can carry an epsilon of
            // floating-point residue; a completion never precedes the
            // (already arrival-clamped) admission, and a response is never
            // negative.
            o.completion_secs = now.max(o.admitted_secs);
            o.response_secs = (o.completion_secs - o.arrival_secs).max(0.0);
            debug_assert!(o.response_secs >= 0.0 && o.wait_secs >= 0.0);
            o.slowdown = if o.solo_secs > 0.0 {
                o.response_secs / o.solo_secs
            } else {
                1.0
            };
            any = true;
        } else {
            i += 1;
        }
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    fn job(arrival: f64, solo: f64) -> MixJob {
        MixJob {
            arrival_secs: arrival,
            priority: 1,
            solo_secs: solo,
            memory_bytes: MB,
        }
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in [MixPolicy::Fcfs, MixPolicy::RoundRobin, MixPolicy::LoadAware] {
            assert_eq!(MixPolicy::from_label(p.label()).unwrap(), p);
        }
        assert!(MixPolicy::from_label("shortest-first").is_err());
    }

    #[test]
    fn mode_labels_round_trip() {
        for m in [MixMode::Composed, MixMode::CoSimulated] {
            assert_eq!(MixMode::from_label(m.label()).unwrap(), m);
        }
        assert!(MixMode::from_label("interleaved").is_err());
        assert_eq!(MixMode::default(), MixMode::Composed);
        // The analytic scheduler stamps its schedules as composed.
        let s = schedule_mix(&[job(0.0, 1.0)], 1, MB, MixPolicy::Fcfs).unwrap();
        assert_eq!(s.mode, MixMode::Composed);
    }

    #[test]
    fn lone_query_runs_at_solo_speed() {
        for policy in [MixPolicy::Fcfs, MixPolicy::RoundRobin, MixPolicy::LoadAware] {
            let s = schedule_mix(&[job(0.0, 10.0)], 4, 64 * MB, policy).unwrap();
            assert!(close(s.queries[0].response_secs, 10.0), "{policy:?}");
            assert!(close(s.queries[0].slowdown, 1.0));
            assert!(close(s.makespan_secs, 10.0));
            assert_eq!(s.queries[0].wait_secs, 0.0);
        }
    }

    #[test]
    fn fcfs_processor_sharing_doubles_equal_queries() {
        let s = schedule_mix(
            &[job(0.0, 10.0), job(0.0, 10.0)],
            2,
            64 * MB,
            MixPolicy::Fcfs,
        )
        .unwrap();
        for q in &s.queries {
            assert!(close(q.response_secs, 20.0), "got {}", q.response_secs);
            assert!(close(q.slowdown, 2.0));
        }
        assert!(close(s.makespan_secs, 20.0));
    }

    #[test]
    fn staggered_fcfs_arrival_matches_processor_sharing_arithmetic() {
        // A (solo 10) at t=0, B (solo 10) at t=5 sharing one machine: they
        // split capacity from 5 to 15 (A completes), then B runs alone and
        // completes at 20.
        let s = schedule_mix(
            &[job(0.0, 10.0), job(5.0, 10.0)],
            1,
            64 * MB,
            MixPolicy::Fcfs,
        )
        .unwrap();
        assert!(close(s.queries[0].completion_secs, 15.0));
        assert!(close(s.queries[1].completion_secs, 20.0));
        assert!(close(s.queries[1].response_secs, 15.0));
    }

    #[test]
    fn priorities_weight_the_sharing() {
        let hi = MixJob {
            priority: 3,
            ..job(0.0, 10.0)
        };
        let lo = job(0.0, 10.0);
        let s = schedule_mix(&[hi, lo], 1, 64 * MB, MixPolicy::Fcfs).unwrap();
        // The weight-3 query gets 3/4 of the machine until it finishes.
        assert!(
            s.queries[0].response_secs < s.queries[1].response_secs,
            "priority 3 ({}) should finish before priority 1 ({})",
            s.queries[0].response_secs,
            s.queries[1].response_secs
        );
        assert!(close(s.queries[0].response_secs, 10.0 * 4.0 / 3.0));
        // Total work conserved: the low-priority query still completes at 20.
        assert!(close(s.queries[1].completion_secs, 20.0));
    }

    #[test]
    fn round_robin_spreads_queries_across_nodes() {
        let s = schedule_mix(
            &[job(0.0, 10.0), job(0.0, 10.0)],
            2,
            64 * MB,
            MixPolicy::RoundRobin,
        )
        .unwrap();
        assert_eq!(s.queries[0].node, Some(0));
        assert_eq!(s.queries[1].node, Some(1));
        // Different nodes: no interference at all.
        for q in &s.queries {
            assert!(close(q.response_secs, 10.0));
            assert!(close(q.slowdown, 1.0));
        }
    }

    #[test]
    fn load_aware_avoids_the_loaded_node() {
        // A long query lands on node 0; round-robin would put the third
        // query back on node 0, load-aware keeps it away.
        let jobs = [job(0.0, 100.0), job(1.0, 1.0), job(2.0, 10.0)];
        let s = schedule_mix(&jobs, 2, 64 * MB, MixPolicy::LoadAware).unwrap();
        assert_eq!(s.queries[0].node, Some(0));
        assert_eq!(s.queries[1].node, Some(1));
        assert_eq!(
            s.queries[2].node,
            Some(1),
            "node 0 still holds ~98s of work"
        );
        assert!(close(s.queries[2].response_secs, 10.0));

        let rr = schedule_mix(&jobs, 2, 64 * MB, MixPolicy::RoundRobin).unwrap();
        assert_eq!(rr.queries[2].node, Some(0));
        assert!(
            rr.queries[2].response_secs > 10.0 + 1.0,
            "round-robin shares the loaded node: {}",
            rr.queries[2].response_secs
        );
        assert!(s.mean_response_secs < rr.mean_response_secs);
    }

    #[test]
    fn memory_admission_serializes_queries() {
        // Each query needs the whole node's memory: the second waits for the
        // first to complete even though processors are free.
        let big = MixJob {
            memory_bytes: 8 * MB,
            ..job(0.0, 10.0)
        };
        let s = schedule_mix(&[big, big], 1, 8 * MB, MixPolicy::Fcfs).unwrap();
        assert!(close(s.queries[0].response_secs, 10.0));
        assert!(close(s.queries[1].wait_secs, 10.0));
        assert!(close(s.queries[1].response_secs, 20.0));
        assert!(close(s.mean_wait_secs, 5.0));
        // With twice the memory both are admitted immediately and share.
        let s = schedule_mix(&[big, big], 1, 16 * MB, MixPolicy::Fcfs).unwrap();
        assert_eq!(s.queries[1].wait_secs, 0.0);
        assert!(close(s.queries[1].response_secs, 20.0));
    }

    #[test]
    fn priorities_never_jump_the_admission_queue() {
        // One node whose memory holds a single query at a time. A long query
        // occupies it; a priority-1 query arrives before a priority-3 query.
        // FCFS admission must admit them in arrival order regardless of
        // priority (priorities only weight the sharing once admitted).
        let hog = MixJob {
            memory_bytes: 8 * MB,
            ..job(0.0, 10.0)
        };
        let low_first = MixJob {
            memory_bytes: 8 * MB,
            ..job(1.0, 5.0)
        };
        let high_later = MixJob {
            priority: 3,
            memory_bytes: 8 * MB,
            ..job(2.0, 5.0)
        };
        let s = schedule_mix(&[hog, low_first, high_later], 1, 8 * MB, MixPolicy::Fcfs).unwrap();
        assert!(
            close(s.queries[1].admitted_secs, 10.0),
            "first in, first admitted"
        );
        assert!(
            close(s.queries[2].admitted_secs, 15.0),
            "priority 3 waits its turn"
        );
        // Round-robin keeps the documented arrival-order node rotation too.
        let rr = schedule_mix(
            &[job(0.0, 1.0), job(0.5, 1.0), job(1.0, 1.0)],
            2,
            64 * MB,
            MixPolicy::RoundRobin,
        )
        .unwrap();
        assert_eq!(rr.queries[0].node, Some(0));
        assert_eq!(rr.queries[1].node, Some(1));
        assert_eq!(rr.queries[2].node, Some(0));
    }

    #[test]
    fn infeasible_memory_demand_is_an_error_not_a_deadlock() {
        let hog = MixJob {
            memory_bytes: 64 * MB,
            ..job(0.0, 1.0)
        };
        let err = schedule_mix(&[hog], 2, 8 * MB, MixPolicy::RoundRobin).unwrap_err();
        assert!(matches!(err, DlbError::InvalidConfig(_)), "{err}");
        // FCFS spreads the demand over both nodes and fits.
        assert!(schedule_mix(&[hog], 2, 32 * MB, MixPolicy::Fcfs).is_ok());
    }

    #[test]
    fn zero_priority_and_bad_inputs_are_rejected() {
        let bad = MixJob {
            priority: 0,
            ..job(0.0, 1.0)
        };
        assert!(schedule_mix(&[bad], 1, MB, MixPolicy::Fcfs).is_err());
        let nan = MixJob {
            solo_secs: f64::NAN,
            ..job(0.0, 1.0)
        };
        assert!(schedule_mix(&[nan], 1, MB, MixPolicy::Fcfs).is_err());
        assert!(schedule_mix(&[], 0, MB, MixPolicy::Fcfs).is_err());
    }

    #[test]
    fn empty_mix_yields_an_empty_schedule() {
        let s = schedule_mix(&[], 2, MB, MixPolicy::LoadAware).unwrap();
        assert!(s.queries.is_empty());
        assert_eq!(s.makespan_secs, 0.0);
        assert_eq!(s.mean_response_secs, 0.0);
    }

    #[test]
    fn zero_work_queries_complete_instantly() {
        let s = schedule_mix(&[job(3.0, 0.0)], 1, MB, MixPolicy::Fcfs).unwrap();
        assert!(close(s.queries[0].completion_secs, 3.0));
        assert_eq!(s.queries[0].response_secs, 0.0);
        assert!(close(s.queries[0].slowdown, 1.0));
    }

    #[test]
    fn schedule_is_deterministic() {
        let jobs: Vec<MixJob> = (0..8)
            .map(|i| MixJob {
                arrival_secs: i as f64 * 0.7,
                priority: 1 + (i % 3) as u32,
                solo_secs: 3.0 + i as f64,
                memory_bytes: (1 + i as u64) * MB,
            })
            .collect();
        let a = schedule_mix(&jobs, 3, 16 * MB, MixPolicy::LoadAware).unwrap();
        let b = schedule_mix(&jobs, 3, 16 * MB, MixPolicy::LoadAware).unwrap();
        assert_eq!(a, b);
    }
}
