//! Execution reports.
//!
//! Every engine run produces an [`ExecutionReport`] carrying the response
//! time and the counters the paper's evaluation relies on: processor busy and
//! idle time, message counts, bytes moved over the interconnect, and the
//! share of that traffic caused by global load balancing (the §5.3
//! experiment compares exactly this quantity between FP and DP).
//!
//! Co-simulated multi-query runs (see [`crate::engine::execute_cosimulated`])
//! additionally produce a [`CoSimReport`]: the machine-wide aggregate plus
//! one [`QueryExecReport`] per query of the mix, carrying each query's
//! arrival-to-completion response time and work counters.

use crate::strategy::Strategy;
use dlb_common::{Duration, NodeId};
use dlb_frontend::FrontendStats;
use dlb_traffic::{LatencyHistogram, LatencySummary};
use serde::{Deserialize, Serialize};

/// The outcome of executing one parallel plan on one simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Strategy that produced this report (the one labeling source of truth
    /// for benchmark and rendering output — see [`Strategy::label`]).
    pub strategy: Strategy,
    /// Number of SM-nodes of the machine.
    pub nodes: u32,
    /// Processors per SM-node.
    pub processors_per_node: u32,
    /// Query response time (virtual).
    pub response_time: Duration,
    /// Number of activations processed across all threads.
    pub activations: u64,
    /// Number of tuples processed across all operators.
    pub tuples_processed: u64,
    /// Number of result tuples produced by the root operator.
    pub result_tuples: u64,
    /// Total busy time summed over all processors.
    pub total_busy: Duration,
    /// Total idle time summed over all processors
    /// (`processors * response_time - total_busy`).
    pub total_idle: Duration,
    /// Average processor utilization in `[0, 1]`.
    pub utilization: f64,
    /// Busy time per node (summed over the node's processors).
    pub per_node_busy: Vec<Duration>,
    /// Total messages exchanged between SM-nodes.
    pub messages: u64,
    /// Total bytes exchanged between SM-nodes (pipelined data, control
    /// traffic and load balancing).
    pub network_bytes: u64,
    /// Number of global load-balancing requests issued (starving messages
    /// for DP, per-operator steal requests for FP).
    pub lb_requests: u64,
    /// Number of successful work acquisitions.
    pub lb_acquisitions: u64,
    /// Bytes transferred specifically for global load balancing (activations
    /// plus hash tables).
    pub lb_bytes: u64,
    /// Number of simulation events processed (diagnostic).
    pub events: u64,
}

impl ExecutionReport {
    /// Total processors of the machine.
    pub fn processors(&self) -> u32 {
        self.nodes * self.processors_per_node
    }

    /// Response time in seconds (convenience for plotting).
    pub fn response_secs(&self) -> f64 {
        self.response_time.as_secs_f64()
    }

    /// Fraction of total time the processors were idle.
    pub fn idle_fraction(&self) -> f64 {
        1.0 - self.utilization
    }

    /// Busy time of one node.
    pub fn node_busy(&self, node: NodeId) -> Duration {
        self.per_node_busy
            .get(node.index())
            .copied()
            .unwrap_or(Duration::ZERO)
    }

    /// Load imbalance across nodes: max node busy time over mean node busy
    /// time (1.0 = perfectly balanced).
    pub fn node_imbalance(&self) -> f64 {
        if self.per_node_busy.is_empty() {
            return 1.0;
        }
        let total: f64 = self.per_node_busy.iter().map(|d| d.as_secs_f64()).sum();
        if total == 0.0 {
            return 1.0;
        }
        let mean = total / self.per_node_busy.len() as f64;
        let max = self
            .per_node_busy
            .iter()
            .map(|d| d.as_secs_f64())
            .fold(0.0, f64::max);
        max / mean
    }
}

/// Per-query accounting of one co-simulated multi-query execution: what one
/// query of the mix experienced while interleaved with the others in the
/// shared event loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryExecReport {
    /// Index of the query within the co-simulated mix.
    pub query: usize,
    /// The query's processor-sharing priority (local scheduling weight).
    pub priority: u32,
    /// Arrival offset from the start of the mix, in (virtual) seconds.
    pub arrival_secs: f64,
    /// Instant the query passed per-node memory admission (= arrival unless
    /// memory was tight and the query waited in the FCFS admission queue).
    pub admitted_secs: f64,
    /// Admission delay: admitted − arrival (never negative).
    pub wait_secs: f64,
    /// Instant the query's last operator terminated.
    pub completion_secs: f64,
    /// Response time: completion − arrival.
    pub response_secs: f64,
    /// Activations processed on behalf of this query.
    pub activations: u64,
    /// Tuples processed by this query's operators.
    pub tuples_processed: u64,
    /// Result tuples produced by this query's root operator.
    pub result_tuples: u64,
}

/// Degradation accounting of a faulted co-simulated run: what the injected
/// topology events cost, summed over all events of the stream. All counters
/// stay zero for a run without topology events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Node failures applied.
    pub failures: u64,
    /// Graceful drains applied.
    pub drains: u64,
    /// Node re-joins applied.
    pub joins: u64,
    /// Bytes shipped over the interconnect to rebalance departed-node state
    /// (re-homed activations and hash-table partitions).
    pub rebalance_bytes: u64,
    /// Queued activations moved off departed nodes onto survivors.
    pub activations_rehomed: u64,
    /// Tuples carried by those re-homed activations and partitions.
    pub tuples_rehomed: u64,
    /// Tuples of state discarded on failure (lose-and-restart policy).
    pub tuples_lost: u64,
    /// Tuples re-processed to rebuild discarded state on survivors.
    pub tuples_redone: u64,
    /// Operators whose termination was rolled back so lost state could be
    /// rebuilt (lose-and-restart against an already-finished build).
    pub operators_restarted: u64,
}

/// The outcome of one co-simulated multi-query execution: the machine-wide
/// aggregate (busy time, network traffic, load balancing — summed over all
/// interleaved queries) plus the per-query breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoSimReport {
    /// Machine-wide counters; `response_time` spans mix start to the last
    /// query's completion (the makespan).
    pub aggregate: ExecutionReport,
    /// One entry per query, in mix order.
    pub queries: Vec<QueryExecReport>,
    /// Degradation accounting of injected topology events (all zero when the
    /// run carried none).
    pub faults: FaultStats,
}

impl CoSimReport {
    /// Completion instant of the last query, in seconds (= the aggregate
    /// response time).
    pub fn makespan_secs(&self) -> f64 {
        self.aggregate.response_time.as_secs_f64()
    }

    /// Mean per-query response time, in seconds.
    pub fn mean_response_secs(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().map(|q| q.response_secs).sum::<f64>() / self.queries.len() as f64
    }

    /// Mean per-query admission delay, in seconds (zero while every working
    /// set fits its placement on arrival).
    pub fn mean_wait_secs(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries.iter().map(|q| q.wait_secs).sum::<f64>() / self.queries.len() as f64
    }
}

/// The outcome of one open-system (stochastic-arrival) execution: the
/// machine-wide aggregate over the whole run plus constant-size streaming
/// latency sketches. Unlike [`CoSimReport`] there is no per-query breakdown —
/// queries retire as they finish and only their latency samples survive, so
/// the report stays O(buckets) no matter how many queries the run served.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenReport {
    /// Machine-wide counters; `response_time` spans the run start to the last
    /// retirement (the makespan of the arrival stream).
    pub aggregate: ExecutionReport,
    /// Queries admitted, executed and retired.
    pub completed: u64,
    /// Peak number of concurrently live queries (bounded by the configured
    /// concurrency level, never by the total query count).
    pub peak_live: usize,
    /// Completed queries per second of makespan.
    pub throughput_qps: f64,
    /// Response time (arrival to completion), seconds.
    pub response: LatencyHistogram,
    /// Admission wait (arrival to admission), seconds.
    pub wait: LatencyHistogram,
    /// Slowdown: response time over the template's solo (unloaded) response
    /// time. Dimensionless; 1.0 when no solo baseline was provided.
    pub slowdown: LatencyHistogram,
    /// Response-time sketches split by priority class (class `p` at index
    /// `p - 1`; priorities beyond the configured class count collapse into
    /// the last class).
    pub response_by_class: Vec<LatencyHistogram>,
    /// Front-end accounting: where each completed query was served from
    /// (all zero when the run had no front end).
    pub frontend: FrontendStats,
    /// Engine executions per template index — the residual load the
    /// balancer actually saw after front-end deduplication.
    pub engine_by_template: Vec<u64>,
    /// Response times of queries the engine executed (leaders and
    /// uncoalesced misses).
    pub response_engine: LatencyHistogram,
    /// Response times of queries served from the result cache.
    pub response_cache_hit: LatencyHistogram,
    /// Response times of queries that retired as coalesced followers.
    pub response_coalesced: LatencyHistogram,
}

impl OpenReport {
    /// Headline response-time statistics (count, mean, p50/p95/p99, max), or
    /// `None` when nothing completed.
    pub fn response_summary(&self) -> Option<LatencySummary> {
        self.response.summary()
    }

    /// Headline admission-wait statistics, or `None` when nothing completed.
    pub fn wait_summary(&self) -> Option<LatencySummary> {
        self.wait.summary()
    }

    /// Headline slowdown statistics, or `None` when nothing completed.
    pub fn slowdown_summary(&self) -> Option<LatencySummary> {
        self.slowdown.summary()
    }

    /// Per-priority-class response summaries as `(priority, summary)` pairs,
    /// 1-based, in class order. Classes with zero completions are omitted —
    /// an empty sketch has no percentiles to report.
    pub fn class_summaries(&self) -> Vec<(u32, LatencySummary)> {
        self.response_by_class
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.summary().map(|s| (i as u32 + 1, s)))
            .collect()
    }

    /// Fraction of completed queries served from the result cache.
    pub fn hit_ratio(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.frontend.cache_hits as f64 / self.completed as f64
        }
    }

    /// Effective-QPS multiplier: completed queries per engine execution.
    /// 1.0 with no front end; above 1.0 the front end multiplied the
    /// engine's capacity.
    pub fn qps_multiplier(&self) -> f64 {
        if self.frontend.engine_queries == 0 {
            if self.completed == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.completed as f64 / self.frontend.engine_queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecutionReport {
        ExecutionReport {
            strategy: Strategy::dynamic(),
            nodes: 2,
            processors_per_node: 4,
            response_time: Duration::from_secs(10),
            activations: 100,
            tuples_processed: 10_000,
            result_tuples: 500,
            total_busy: Duration::from_secs(60),
            total_idle: Duration::from_secs(20),
            utilization: 0.75,
            per_node_busy: vec![Duration::from_secs(40), Duration::from_secs(20)],
            messages: 12,
            network_bytes: 1 << 20,
            lb_requests: 3,
            lb_acquisitions: 2,
            lb_bytes: 4096,
            events: 1_000,
        }
    }

    #[test]
    fn derived_quantities() {
        let r = sample();
        assert_eq!(r.processors(), 8);
        assert_eq!(r.response_secs(), 10.0);
        assert!((r.idle_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(r.node_busy(NodeId::new(0)), Duration::from_secs(40));
        assert_eq!(r.node_busy(NodeId::new(5)), Duration::ZERO);
        // max 40 / mean 30
        assert!((r.node_imbalance() - 40.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn cosim_report_aggregates_per_query_responses() {
        let r = CoSimReport {
            aggregate: sample(),
            queries: vec![
                QueryExecReport {
                    query: 0,
                    priority: 1,
                    arrival_secs: 0.0,
                    admitted_secs: 0.0,
                    wait_secs: 0.0,
                    completion_secs: 6.0,
                    response_secs: 6.0,
                    activations: 60,
                    tuples_processed: 6_000,
                    result_tuples: 300,
                },
                QueryExecReport {
                    query: 1,
                    priority: 2,
                    arrival_secs: 2.0,
                    admitted_secs: 3.0,
                    wait_secs: 1.0,
                    completion_secs: 10.0,
                    response_secs: 8.0,
                    activations: 40,
                    tuples_processed: 4_000,
                    result_tuples: 200,
                },
            ],
            faults: FaultStats::default(),
        };
        assert_eq!(r.makespan_secs(), 10.0);
        assert!((r.mean_response_secs() - 7.0).abs() < 1e-12);
        assert!((r.mean_wait_secs() - 0.5).abs() < 1e-12);
        let empty = CoSimReport {
            aggregate: sample(),
            queries: Vec::new(),
            faults: FaultStats::default(),
        };
        assert_eq!(empty.mean_response_secs(), 0.0);
        assert_eq!(empty.mean_wait_secs(), 0.0);
    }

    #[test]
    fn imbalance_of_empty_report_is_one() {
        let mut r = sample();
        r.per_node_busy.clear();
        assert_eq!(r.node_imbalance(), 1.0);
        r.per_node_busy = vec![Duration::ZERO, Duration::ZERO];
        assert_eq!(r.node_imbalance(), 1.0);
    }
}
