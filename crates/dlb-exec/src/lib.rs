//! # dlb-exec
//!
//! The parallel execution models of *Bouganim, Florescu, Valduriez —
//! "Dynamic Load Balancing in Hierarchical Parallel Database Systems"*
//! (VLDB 1996), implemented over the discrete-event substrate of `dlb-sim`.
//!
//! Strategies are pluggable [`strategy::Policy`] implementations selected
//! with a [`Strategy`] handle; the paper's three plus two related-work
//! policies ship registered (see [`strategy::policies`]):
//!
//! * **Dynamic Processing (DP)** — the paper's contribution ([`engine`]):
//!   query work is decomposed into self-contained [`activation`]s placed in
//!   per-(operator, thread) queues; any thread of an SM-node can execute any
//!   unblocked activation of its node; global load sharing is used only when
//!   an entire node starves, shipping probe activations and the matching
//!   hash-table partition from the most loaded node.
//! * **Fixed Processing (FP)** — shared-nothing style static allocation of
//!   processors to operators, proportional to estimated cost, optionally with
//!   cost-model errors ([`fp`]).
//! * **Synchronous Pipelining (SP)** — the shared-memory reference model
//!   ([`sp`]).
//! * **Diffusion** — nearest-neighbour pull balancing from the related work
//!   (Demirel & Sbalzarini): steals only reach ring neighbours.
//! * **Threshold** — sender-initiated push balancing (Mandal & Pal):
//!   overloaded nodes push work to under-loaded neighbours.
//!
//! The main entry point is [`execute`], which takes a
//! [`dlb_query::plan::ParallelPlan`], a [`dlb_common::config::SystemConfig`],
//! a [`Strategy`] and [`ExecOptions`], and returns an [`ExecutionReport`].
//!
//! On top of the intra-query engines, the [`mix`] module adds *inter-query*
//! scheduling: admission, placement ([`MixPolicy`]) and priority-weighted
//! processor sharing of N concurrent queries on the SM-nodes of one machine
//! (see [`schedule_mix`]). Two fidelities exist ([`MixMode`]): the analytic
//! composition of solo runs, and a **co-simulated** mode
//! ([`execute_cosimulated`]) that interleaves all queries' activations in
//! one engine event loop.
//!
//! The co-simulated loop additionally supports **fault injection**: a
//! deterministic [`topology`] event stream (node failures, drains, re-joins
//! at fixed simulated times) consumed alongside query events by
//! [`execute_cosimulated_faulted`], with recovery behaviour selected through
//! [`RecoveryOptions`] and degradation accounting surfaced as
//! [`FaultStats`].
//!
//! Finally, [`execute_open`] runs the same loop as an **open system**:
//! queries arrive over a seeded stochastic process (`dlb-traffic`), are
//! admitted from a FCFS waiting room into a bounded pool of lane slots, and
//! retire on completion — live state is O(concurrency), latencies stream
//! into constant-size sketches, and the [`OpenReport`] carries
//! p50/p95/p99 response, wait and slowdown percentiles per strategy and
//! priority class.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activation;
pub mod engine;
pub mod fp;
pub mod mix;
pub mod options;
pub mod report;
pub mod router;
pub mod sp;
pub mod strategy;
pub mod topology;

pub use activation::{Activation, ActivationKind, ActivationQueue, DrainOutcome};
pub use dlb_frontend::{FrontendConfig, FrontendStats};
pub use dlb_storage::RehomePolicy;
pub use engine::{
    execute, execute_cosimulated, execute_cosimulated_faulted, execute_open, CoSimQuery,
    OpenTemplate, OpenTraffic,
};
pub use mix::{schedule_mix, MixJob, MixMode, MixPolicy, MixSchedule, QueryOutcome};
pub use options::{
    ContentionModel, ErrorRealization, ExecOptions, ExecOptionsBuilder, FlowControl,
    RecoveryOptions, RecoveryPolicy, StealPolicy,
};
pub use report::{CoSimReport, ExecutionReport, FaultStats, OpenReport, QueryExecReport};
pub use router::OutputRouter;
pub use strategy::{policies, ParamSpec, Policy, PushConfig, StealScope, Strategy};
pub use topology::{validate_topology, TopologyChange, TopologyEvent};
