//! Deterministic skewed routing of operator output to consumer queues.
//!
//! When an operator produces pipelined tuples, the batches are redistributed
//! to the queues of the consumer operator — one queue per (home node, thread)
//! slot. With no skew this redistribution is uniform. The paper's skew
//! experiment (§5.2.2) introduces *redistribution skew*: the distribution of
//! data activations over the consumer's queues follows a Zipf law with a
//! factor between 0 and 1.
//!
//! To keep the simulation deterministic, the router uses largest-remainder
//! (deficit) routing instead of random sampling: each slot has a target share
//! (its Zipf weight) and every batch is sent to the slot whose assigned count
//! is furthest below its target. Over time the realized distribution
//! converges to the Zipf weights exactly.

use dlb_common::ZipfDistribution;
use serde::{Deserialize, Serialize};

/// Routes successive batches across a fixed set of slots so that the realized
/// distribution follows a Zipf law of the given skew factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutputRouter {
    weights: Vec<f64>,
    assigned: Vec<u64>,
    total: u64,
    /// True when every weight is the same bit pattern and the slot count is
    /// a power of two. Then `w` is exactly representable (1/2^k), all the
    /// deficits `w*total - assigned` are exact in f64, and the float argmax
    /// reduces bit-for-bit to an integer argmin over `assigned` — which the
    /// hot path computes without touching floats at all.
    uniform_pow2: bool,
}

impl OutputRouter {
    /// Creates a router over `slots` destination slots with skew `theta`.
    ///
    /// To avoid a systematic bias where slot 0 of every operator is the hot
    /// slot, the hot slot is rotated by `rotation` positions (typically the
    /// operator id), which mirrors the fact that different operators hash on
    /// different attributes.
    pub fn new(slots: usize, theta: f64, rotation: usize) -> Self {
        assert!(slots > 0, "router needs at least one slot");
        let zipf = ZipfDistribution::new(slots, theta);
        let mut weights = vec![0.0; slots];
        for (i, w) in zipf.weights().iter().enumerate() {
            weights[(i + rotation) % slots] = *w;
        }
        let uniform_pow2 =
            slots.is_power_of_two() && weights.windows(2).all(|w| w[0].to_bits() == w[1].to_bits());
        Self {
            weights,
            assigned: vec![0; slots],
            total: 0,
            uniform_pow2,
        }
    }

    /// Number of destination slots.
    pub fn slots(&self) -> usize {
        self.weights.len()
    }

    /// Picks the slot for the next batch of `tuples` tuples and records the
    /// assignment.
    pub fn route(&mut self, tuples: u64) -> usize {
        let new_total = self.total + tuples;
        // Choose the slot with the largest deficit (target - assigned).
        let mut best = 0usize;
        if self.uniform_pow2 {
            // Equal weights: the largest deficit is the smallest assignment
            // (first slot on ties, exactly like the float loop below — see
            // the field invariant for why this is bit-identical).
            let mut best_assigned = u64::MAX;
            for (i, &a) in self.assigned.iter().enumerate() {
                if a < best_assigned {
                    best_assigned = a;
                    best = i;
                }
            }
        } else {
            let mut best_deficit = f64::MIN;
            for (i, (&w, &a)) in self.weights.iter().zip(self.assigned.iter()).enumerate() {
                let deficit = w * new_total as f64 - a as f64;
                if deficit > best_deficit {
                    best_deficit = deficit;
                    best = i;
                }
            }
        }
        self.assigned[best] += tuples;
        self.total = new_total;
        best
    }

    /// Tuples routed to `slot` so far.
    pub fn assigned(&self, slot: usize) -> u64 {
        self.assigned[slot]
    }

    /// Total tuples routed so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The target weight of a slot.
    pub fn weight(&self, slot: usize) -> f64 {
        self.weights[slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_routing_balances_slots() {
        let mut r = OutputRouter::new(8, 0.0, 0);
        for _ in 0..800 {
            r.route(10);
        }
        for s in 0..8 {
            assert_eq!(r.assigned(s), 1_000, "slot {s}");
        }
        assert_eq!(r.total(), 8_000);
    }

    #[test]
    fn skewed_routing_matches_zipf_weights() {
        let mut r = OutputRouter::new(4, 1.0, 0);
        for _ in 0..10_000 {
            r.route(1);
        }
        for s in 0..4 {
            let realized = r.assigned(s) as f64 / r.total() as f64;
            assert!(
                (realized - r.weight(s)).abs() < 0.01,
                "slot {s}: realized {realized} target {}",
                r.weight(s)
            );
        }
        // Slot 0 is the hot slot without rotation.
        assert!(r.assigned(0) > r.assigned(3));
    }

    #[test]
    fn rotation_moves_the_hot_slot() {
        let mut a = OutputRouter::new(4, 1.0, 0);
        let mut b = OutputRouter::new(4, 1.0, 2);
        for _ in 0..1_000 {
            a.route(1);
            b.route(1);
        }
        let hot_a = (0..4).max_by_key(|&s| a.assigned(s)).unwrap();
        let hot_b = (0..4).max_by_key(|&s| b.assigned(s)).unwrap();
        assert_eq!(hot_a, 0);
        assert_eq!(hot_b, 2);
    }

    #[test]
    fn variable_batch_sizes_still_track_weights() {
        let mut r = OutputRouter::new(3, 0.5, 1);
        let sizes = [1u64, 7, 128, 13, 64, 3, 250, 9];
        for i in 0..2_000 {
            r.route(sizes[i % sizes.len()]);
        }
        for s in 0..3 {
            let realized = r.assigned(s) as f64 / r.total() as f64;
            assert!((realized - r.weight(s)).abs() < 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let _ = OutputRouter::new(0, 0.0, 0);
    }

    #[test]
    fn single_slot_gets_everything() {
        let mut r = OutputRouter::new(1, 0.9, 5);
        for _ in 0..10 {
            assert_eq!(r.route(100), 0);
        }
        assert_eq!(r.assigned(0), 1_000);
    }
}
