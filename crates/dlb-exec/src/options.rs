//! Execution strategies and run-time options.

use serde::{Deserialize, Serialize};

/// The execution strategy to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// **Dynamic Processing** (DP) — the paper's contribution: no static
    /// association between threads and operators; any thread of an SM-node
    /// processes any unblocked activation of that node; global load sharing
    /// only when the whole node starves.
    Dynamic,
    /// **Fixed Processing** (FP) — shared-nothing style static allocation of
    /// processors to operators, proportional to estimated operator
    /// complexity, with intra-operator load balancing only. `error_rate`
    /// injects relative errors into the cardinality estimates used for the
    /// allocation (Figure 7).
    Fixed {
        /// Relative cost-model error rate in `[0, 1]` (0 = exact estimates).
        error_rate: f64,
    },
    /// **Synchronous Pipelining** (SP) — the shared-memory reference model
    /// where every processor executes whole pipeline chains through procedure
    /// calls. Only valid on single-node (shared-memory) configurations.
    Synchronous,
}

impl Strategy {
    /// Short label ("DP", "FP", "SP").
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Dynamic => "DP",
            Strategy::Fixed { .. } => "FP",
            Strategy::Synchronous => "SP",
        }
    }
}

/// Tunable options of an execution run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecOptions {
    /// Redistribution-skew factor (Zipf theta in `[0, 1]`) applied to the
    /// production of trigger activations and of pipelined tuples (§5.2.2).
    pub skew: f64,
    /// Capacity of each activation queue, in activations (0 = unbounded).
    /// Bounded queues provide the flow control of §3.1.
    pub queue_capacity: usize,
    /// Number of pages covered by one trigger activation (the paper reduces
    /// trigger granularity from a bucket to a few pages).
    pub trigger_pages: u64,
    /// Seed for the strategy-internal randomness (FP cost distortion).
    pub seed: u64,
    /// Number of processors per node beyond which shared-memory interference
    /// starts to degrade per-instruction throughput (models the KSR1 memory
    /// hierarchy effect visible beyond 32 processors in Figure 8).
    pub smp_contention_threshold: u32,
    /// Relative throughput degradation per `threshold` extra processors
    /// beyond the threshold.
    pub smp_contention_factor: f64,
    /// Minimum number of tuples a remote queue must hold to be a candidate
    /// for global load balancing (condition (ii) of §3.2: enough work to
    /// amortize the acquisition overhead).
    pub min_steal_tuples: u64,
    /// Fraction of a provider queue acquired per steal (condition (iii):
    /// not too much work, to avoid overloading the requester).
    pub steal_fraction: f64,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            skew: 0.0,
            queue_capacity: 64,
            trigger_pages: 8,
            seed: 0xE8EC,
            smp_contention_threshold: 32,
            smp_contention_factor: 0.15,
            min_steal_tuples: 256,
            steal_fraction: 0.5,
        }
    }
}

impl ExecOptions {
    /// Options with a given redistribution skew, everything else default.
    pub fn with_skew(skew: f64) -> Self {
        Self {
            skew,
            ..Self::default()
        }
    }

    /// CPU slowdown factor for a node with `processors` processors: 1.0 below
    /// the contention threshold, growing linearly above it.
    pub fn contention_factor(&self, processors: u32) -> f64 {
        if processors <= self.smp_contention_threshold || self.smp_contention_threshold == 0 {
            1.0
        } else {
            1.0 + self.smp_contention_factor
                * ((processors - self.smp_contention_threshold) as f64
                    / self.smp_contention_threshold as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_labels() {
        assert_eq!(Strategy::Dynamic.label(), "DP");
        assert_eq!(Strategy::Fixed { error_rate: 0.2 }.label(), "FP");
        assert_eq!(Strategy::Synchronous.label(), "SP");
    }

    #[test]
    fn defaults_are_sane() {
        let o = ExecOptions::default();
        assert_eq!(o.skew, 0.0);
        assert!(o.queue_capacity > 0);
        assert!(o.trigger_pages > 0);
        assert!(o.steal_fraction > 0.0 && o.steal_fraction <= 1.0);
    }

    #[test]
    fn contention_only_beyond_threshold() {
        let o = ExecOptions::default();
        assert_eq!(o.contention_factor(8), 1.0);
        assert_eq!(o.contention_factor(32), 1.0);
        let at64 = o.contention_factor(64);
        assert!(at64 > 1.0 && at64 < 1.5);
        let at48 = o.contention_factor(48);
        assert!(at48 > 1.0 && at48 < at64);
    }

    #[test]
    fn zero_threshold_disables_contention() {
        let o = ExecOptions {
            smp_contention_threshold: 0,
            ..ExecOptions::default()
        };
        assert_eq!(o.contention_factor(64), 1.0);
    }
}
