//! Execution strategies and run-time options.
//!
//! [`ExecOptions`] is composed of typed option groups — [`FlowControl`],
//! [`ContentionModel`] and [`StealPolicy`] — instead of a flat bag of nine
//! fields: each group travels as a unit (a scenario spec can override the
//! steal tuning without naming every field), and the groups are the units the
//! run cache fingerprints (see `dlb_core::RunKey`). Construct options with
//! [`ExecOptions::builder`]; the flat convenience setters on the builder
//! cover the common single-knob experiments.

use dlb_storage::RehomePolicy;
use serde::{Deserialize, Serialize};

/// Flow control of the activation pipeline (§3.1): how much work is buffered
/// between producers and consumers, and how coarse trigger activations are.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowControl {
    /// Capacity of each activation queue, in activations (0 = unbounded).
    /// Bounded queues provide the flow control of §3.1.
    pub queue_capacity: usize,
    /// Number of pages covered by one trigger activation (the paper reduces
    /// trigger granularity from a bucket to a few pages).
    pub trigger_pages: u64,
}

impl Default for FlowControl {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            trigger_pages: 8,
        }
    }
}

/// Shared-memory interference model: beyond a processor-count threshold,
/// per-instruction throughput degrades linearly (the KSR1 memory-hierarchy
/// effect visible beyond 32 processors in Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Number of processors per node beyond which shared-memory interference
    /// starts to degrade per-instruction throughput (0 disables the model).
    pub threshold: u32,
    /// Relative throughput degradation per `threshold` extra processors
    /// beyond the threshold.
    pub degradation: f64,
}

impl Default for ContentionModel {
    fn default() -> Self {
        Self {
            threshold: 32,
            degradation: 0.15,
        }
    }
}

impl ContentionModel {
    /// CPU slowdown factor for a node with `processors` processors: 1.0 below
    /// the contention threshold, growing linearly above it.
    pub fn factor_for(&self, processors: u32) -> f64 {
        if processors <= self.threshold || self.threshold == 0 {
            1.0
        } else {
            1.0 + self.degradation * ((processors - self.threshold) as f64 / self.threshold as f64)
        }
    }
}

/// How Fixed Processing realizes cost-model estimation errors across the
/// SM-nodes of a machine (Figure 7, §5.2.1).
///
/// The paper distorts *the* cost estimate of each operator: one wrong number
/// that every node's static allocation is then derived from. The engine
/// originally drew a fresh realization per node from one shared RNG, which
/// lets per-node errors partially cancel on hierarchical machines and
/// understates the damage of a systematically wrong estimate. The paper
/// reading ([`ErrorRealization::Shared`]) is the default; the historical
/// behaviour stays available as [`ErrorRealization::PerNode`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorRealization {
    /// One distorted complexity estimate per operator, reused by every node
    /// (the paper's reading — an optimizer mis-estimates a cardinality once,
    /// not once per node). The default.
    #[default]
    Shared,
    /// A fresh error realization per node from one shared RNG stream (the
    /// pre-fix engine behaviour, kept for comparison studies).
    PerNode,
}

impl ErrorRealization {
    /// Stable lower-case label, also the JSON spelling (`shared`,
    /// `per-node`).
    pub fn label(&self) -> &'static str {
        match self {
            ErrorRealization::Shared => "shared",
            ErrorRealization::PerNode => "per-node",
        }
    }

    /// Parses a [`ErrorRealization::label`] spelling.
    pub fn from_label(label: &str) -> Result<Self, String> {
        match label {
            "shared" => Ok(ErrorRealization::Shared),
            "per-node" => Ok(ErrorRealization::PerNode),
            other => Err(format!(
                "unknown error realization {other:?} (expected shared | per-node)"
            )),
        }
    }
}

/// Tuning of the global load-balancing acquisition (§3.2): when a starving
/// node steals work, how much a provider must hold and how much is taken.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StealPolicy {
    /// Minimum number of tuples a remote queue must hold to be a candidate
    /// for global load balancing (condition (ii) of §3.2: enough work to
    /// amortize the acquisition overhead).
    pub min_tuples: u64,
    /// Fraction of a provider queue acquired per steal (condition (iii):
    /// not too much work, to avoid overloading the requester).
    pub fraction: f64,
}

impl Default for StealPolicy {
    fn default() -> Self {
        Self {
            min_tuples: 256,
            fraction: 0.5,
        }
    }
}

/// How work that lived on a failed node is recovered (fault injection of the
/// co-simulated engine; see [`crate::engine::execute_cosimulated_faulted`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// **Re-home and resume**: the dead node's queued activations and built
    /// hash-table partitions are shipped over the interconnect to surviving
    /// home nodes (per the re-home policy). No work is repeated; the cost is
    /// the bulk transfer. The default.
    #[default]
    RehomeResume,
    /// **Lose and restart the operator**: the dead node's queued activations
    /// and hash-table partitions are lost. Lost input is regenerated on the
    /// survivors (no bulk transfer), and lost hash-table partitions are
    /// rebuilt by re-processing their tuples — re-opening the build operator
    /// when it had already terminated.
    LoseRestart,
}

impl RecoveryPolicy {
    /// Stable label, also the JSON spelling (`rehome-resume`,
    /// `lose-restart`).
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicy::RehomeResume => "rehome-resume",
            RecoveryPolicy::LoseRestart => "lose-restart",
        }
    }

    /// Parses a [`RecoveryPolicy::label`] spelling.
    pub fn from_label(label: &str) -> Result<Self, String> {
        match label {
            "rehome-resume" => Ok(RecoveryPolicy::RehomeResume),
            "lose-restart" => Ok(RecoveryPolicy::LoseRestart),
            other => Err(format!(
                "unknown recovery policy {other:?} (expected rehome-resume | lose-restart)"
            )),
        }
    }
}

/// Fault-recovery option group: what happens to a failed node's in-flight
/// state, and how its contents map onto the survivors. Only consulted when a
/// co-simulated run carries topology events; a run without them never reads
/// these knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct RecoveryOptions {
    /// Lose-and-restart vs re-home-and-resume.
    pub policy: RecoveryPolicy,
    /// Consistent-hash vs range re-partitioning of the dead node's contents
    /// (see [`dlb_storage::rehome`]).
    pub rehome: RehomePolicy,
}

/// Tunable options of an execution run: the per-run scalars (skew, seed) plus
/// the composable option groups.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecOptions {
    /// Redistribution-skew factor (Zipf theta in `[0, 1]`) applied to the
    /// production of trigger activations and of pipelined tuples (§5.2.2).
    pub skew: f64,
    /// Seed for the strategy-internal randomness (FP cost distortion).
    pub seed: u64,
    /// How FP realizes cost-model errors across nodes (Figure 7).
    pub fp_realization: ErrorRealization,
    /// Pipeline flow control (queue capacity, trigger granularity).
    pub flow: FlowControl,
    /// Shared-memory interference model.
    pub contention: ContentionModel,
    /// Global load-balancing steal tuning.
    pub steal: StealPolicy,
    /// Fault recovery (only read by runs carrying topology events).
    pub recovery: RecoveryOptions,
}

/// The default seed of the strategy-internal randomness.
pub const DEFAULT_EXEC_SEED: u64 = 0xE8EC;

impl ExecOptions {
    /// Starts building options from the defaults.
    ///
    /// ```
    /// use dlb_exec::{ExecOptions, StealPolicy};
    ///
    /// let options = ExecOptions::builder()
    ///     .skew(0.6)
    ///     .queue_capacity(128)
    ///     .steal(StealPolicy { min_tuples: 64, fraction: 0.25 })
    ///     .build();
    /// assert_eq!(options.skew, 0.6);
    /// assert_eq!(options.flow.queue_capacity, 128);
    /// assert_eq!(options.steal.min_tuples, 64);
    /// // Untouched groups keep their defaults.
    /// assert_eq!(options.contention, Default::default());
    /// ```
    pub fn builder() -> ExecOptionsBuilder {
        ExecOptionsBuilder::default()
    }

    /// Options with a given redistribution skew, everything else default.
    pub fn with_skew(skew: f64) -> Self {
        Self {
            skew,
            ..Self::default()
        }
    }

    /// CPU slowdown factor for a node with `processors` processors
    /// (convenience for [`ContentionModel::factor_for`]).
    pub fn contention_factor(&self, processors: u32) -> f64 {
        self.contention.factor_for(processors)
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            skew: 0.0,
            seed: DEFAULT_EXEC_SEED,
            fp_realization: ErrorRealization::default(),
            flow: FlowControl::default(),
            contention: ContentionModel::default(),
            steal: StealPolicy::default(),
            recovery: RecoveryOptions::default(),
        }
    }
}

/// Builder for [`ExecOptions`]: group-level setters plus flat single-knob
/// conveniences.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptionsBuilder {
    options: ExecOptions,
}

impl ExecOptionsBuilder {
    /// Sets the redistribution-skew factor.
    pub fn skew(mut self, skew: f64) -> Self {
        self.options.skew = skew;
        self
    }

    /// Sets the strategy-internal randomness seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.options.seed = seed;
        self
    }

    /// Sets how FP realizes cost-model errors across nodes.
    pub fn fp_realization(mut self, realization: ErrorRealization) -> Self {
        self.options.fp_realization = realization;
        self
    }

    /// Replaces the whole flow-control group.
    pub fn flow(mut self, flow: FlowControl) -> Self {
        self.options.flow = flow;
        self
    }

    /// Replaces the whole contention-model group.
    pub fn contention(mut self, contention: ContentionModel) -> Self {
        self.options.contention = contention;
        self
    }

    /// Replaces the whole steal-policy group.
    pub fn steal(mut self, steal: StealPolicy) -> Self {
        self.options.steal = steal;
        self
    }

    /// Replaces the whole fault-recovery group.
    pub fn recovery(mut self, recovery: RecoveryOptions) -> Self {
        self.options.recovery = recovery;
        self
    }

    /// Sets the fault-recovery policy (lose-restart vs rehome-resume).
    pub fn recovery_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.options.recovery.policy = policy;
        self
    }

    /// Sets the partition re-home policy used after a node failure.
    pub fn rehome_policy(mut self, rehome: RehomePolicy) -> Self {
        self.options.recovery.rehome = rehome;
        self
    }

    /// Sets the activation-queue capacity (flow control).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.options.flow.queue_capacity = capacity;
        self
    }

    /// Sets the trigger granularity in pages (flow control).
    pub fn trigger_pages(mut self, pages: u64) -> Self {
        self.options.flow.trigger_pages = pages;
        self
    }

    /// Sets the minimum provider-queue size for a steal.
    pub fn min_steal_tuples(mut self, tuples: u64) -> Self {
        self.options.steal.min_tuples = tuples;
        self
    }

    /// Sets the fraction of a provider queue acquired per steal.
    pub fn steal_fraction(mut self, fraction: f64) -> Self {
        self.options.steal.fraction = fraction;
        self
    }

    /// Finishes building.
    pub fn build(self) -> ExecOptions {
        self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = ExecOptions::default();
        assert_eq!(o.skew, 0.0);
        assert_eq!(o.seed, DEFAULT_EXEC_SEED);
        assert!(o.flow.queue_capacity > 0);
        assert!(o.flow.trigger_pages > 0);
        assert!(o.steal.fraction > 0.0 && o.steal.fraction <= 1.0);
    }

    #[test]
    fn builder_composes_groups_and_single_knobs() {
        let o = ExecOptions::builder()
            .skew(0.6)
            .seed(7)
            .steal(StealPolicy {
                min_tuples: 32,
                fraction: 0.25,
            })
            .queue_capacity(128)
            .build();
        assert_eq!(o.skew, 0.6);
        assert_eq!(o.seed, 7);
        assert_eq!(o.steal.min_tuples, 32);
        assert_eq!(o.steal.fraction, 0.25);
        assert_eq!(o.flow.queue_capacity, 128);
        // Untouched groups keep their defaults.
        assert_eq!(o.contention, ContentionModel::default());
        assert_eq!(o.flow.trigger_pages, FlowControl::default().trigger_pages);
    }

    #[test]
    fn contention_only_beyond_threshold() {
        let o = ExecOptions::default();
        assert_eq!(o.contention_factor(8), 1.0);
        assert_eq!(o.contention_factor(32), 1.0);
        let at64 = o.contention_factor(64);
        assert!(at64 > 1.0 && at64 < 1.5);
        let at48 = o.contention_factor(48);
        assert!(at48 > 1.0 && at48 < at64);
    }

    #[test]
    fn error_realization_labels_round_trip_and_default_is_shared() {
        assert_eq!(ErrorRealization::default(), ErrorRealization::Shared);
        assert_eq!(
            ExecOptions::default().fp_realization,
            ErrorRealization::Shared
        );
        for r in [ErrorRealization::Shared, ErrorRealization::PerNode] {
            assert_eq!(ErrorRealization::from_label(r.label()).unwrap(), r);
        }
        assert!(ErrorRealization::from_label("per-operator").is_err());
        let o = ExecOptions::builder()
            .fp_realization(ErrorRealization::PerNode)
            .build();
        assert_eq!(o.fp_realization, ErrorRealization::PerNode);
    }

    #[test]
    fn recovery_labels_round_trip_and_defaults_are_resume_hash() {
        let o = ExecOptions::default();
        assert_eq!(o.recovery.policy, RecoveryPolicy::RehomeResume);
        assert_eq!(o.recovery.rehome, RehomePolicy::ConsistentHash);
        for p in [RecoveryPolicy::RehomeResume, RecoveryPolicy::LoseRestart] {
            assert_eq!(RecoveryPolicy::from_label(p.label()).unwrap(), p);
        }
        assert!(RecoveryPolicy::from_label("retry").is_err());
        let o = ExecOptions::builder()
            .recovery_policy(RecoveryPolicy::LoseRestart)
            .rehome_policy(RehomePolicy::Range)
            .build();
        assert_eq!(o.recovery.policy, RecoveryPolicy::LoseRestart);
        assert_eq!(o.recovery.rehome, RehomePolicy::Range);
    }

    #[test]
    fn zero_threshold_disables_contention() {
        let o = ExecOptions::builder()
            .contention(ContentionModel {
                threshold: 0,
                degradation: 0.15,
            })
            .build();
        assert_eq!(o.contention_factor(64), 1.0);
    }
}
