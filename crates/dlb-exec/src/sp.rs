//! Synchronous Pipelining (SP): the shared-memory reference model.
//!
//! In SP (§5.2.1, from Shekita '93 and Hong '92) every processor is
//! multiplexed between I/O and CPU work and participates in *every* operator
//! of a pipeline chain: a CPU thread reads tuples from the I/O buffers and
//! pushes each tuple through the whole chain with synchronous procedure
//! calls. There are no activation queues, no per-operator allocation and no
//! inter-thread hand-off, so — barring severe skew in per-tuple processing
//! time — load balance is perfect. The flip side is that SP requires shared
//! memory: it "cannot be implemented in shared-nothing because data
//! redistribution between two successive operators would imply costly remote
//! procedure synchronization".
//!
//! Because SP has no scheduling decisions to make, it is modelled
//! analytically: each pipeline chain executes in
//! `max(chain CPU work / P, chain I/O work / disks)` and chains run one at a
//! time, exactly like the queue-based engines. This makes SP the ideal
//! reference the paper uses it as.

use crate::options::ExecOptions;
use crate::report::ExecutionReport;
use crate::strategy::Strategy;
use dlb_common::config::SystemConfig;
use dlb_common::{DlbError, Duration, Result};
use dlb_query::cost::CostModel;
use dlb_query::optree::OperatorKind;
use dlb_query::plan::ParallelPlan;

/// Executes `plan` with Synchronous Pipelining on a single shared-memory
/// node described by `config`.
///
/// Returns an error when the machine has more than one SM-node: SP is a
/// shared-memory-only strategy.
pub fn execute_sp(
    plan: &ParallelPlan,
    config: &SystemConfig,
    options: &ExecOptions,
) -> Result<ExecutionReport> {
    if config.machine.nodes != 1 {
        return Err(DlbError::config(
            "synchronous pipelining requires a single shared-memory node",
        ));
    }
    let processors = config.machine.processors_per_node.max(1);
    let disks = (processors * config.disk.disks_per_processor).max(1);
    let cost = CostModel::new(config.costs, config.disk, config.cpu);
    let contention = options.contention_factor(processors);

    let mut response = Duration::ZERO;
    let mut total_cpu = Duration::ZERO;
    let mut tuples_processed = 0u64;

    for chain in plan.chains() {
        let mut chain_cpu = Duration::ZERO;
        let mut chain_io = Duration::ZERO;
        for &op_id in &chain.operators {
            let op = plan.tree.operator(op_id);
            let c = match op.kind {
                OperatorKind::Scan { .. } => {
                    // The scan's pages are spread over the node's disks in
                    // read-ahead-window sized fragments; each participating
                    // disk positions once (latency + seek) and then streams.
                    let pages = config.costs.pages_for_tuples(op.input_tuples);
                    let fragments = pages.div_ceil(options.flow.trigger_pages.max(1)).max(1);
                    let used_disks = (disks as u64).min(fragments).max(1);
                    chain_io += config.disk.latency
                        + config.disk.seek_time
                        + config.disk.transfer_time(pages) / used_disks;
                    cost.scan_cost(op.input_tuples)
                }
                OperatorKind::Build { .. } => cost.build_cost(op.input_tuples),
                OperatorKind::Probe { .. } => cost.probe_cost(op.input_tuples, op.output_tuples),
            };
            chain_cpu += config.cpu.instructions(c.instructions) * contention;
            tuples_processed += op.input_tuples;
        }
        // Perfectly balanced: CPU work split over all processors, I/O and CPU
        // overlapping thanks to asynchronous I/O.
        let cpu_component = chain_cpu / processors as u64;
        response += cpu_component.max(chain_io);
        total_cpu += chain_cpu;
    }

    let capacity = response * processors as u64;
    let busy = total_cpu.min(capacity);
    let utilization = if capacity.is_zero() {
        0.0
    } else {
        busy.as_secs_f64() / capacity.as_secs_f64()
    };

    Ok(ExecutionReport {
        strategy: Strategy::synchronous(),
        nodes: 1,
        processors_per_node: processors,
        response_time: response,
        activations: 0,
        tuples_processed,
        result_tuples: plan.tree.result_tuples(),
        total_busy: busy,
        total_idle: capacity.saturating_sub(busy),
        utilization,
        per_node_busy: vec![busy],
        messages: 0,
        network_bytes: 0,
        lb_requests: 0,
        lb_acquisitions: 0,
        lb_bytes: 0,
        events: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_common::{QueryId, RelationId};
    use dlb_query::jointree::JoinTree;
    use dlb_query::optree::OperatorTree;
    use dlb_query::plan::{ChainScheduling, OperatorHomes};

    fn plan_for(nodes: u32) -> ParallelPlan {
        let tree = JoinTree::join(
            JoinTree::leaf(RelationId::new(0), 50_000),
            JoinTree::leaf(RelationId::new(1), 100_000),
            1.0 / 100_000.0,
        );
        let ot = OperatorTree::from_join_tree(&tree);
        let homes = OperatorHomes::all_nodes(&ot, nodes);
        ParallelPlan::build(QueryId::new(0), ot, homes, ChainScheduling::OneAtATime).unwrap()
    }

    #[test]
    fn sp_rejects_multi_node_machines() {
        let plan = plan_for(2);
        let config = SystemConfig::hierarchical(2, 4);
        assert!(execute_sp(&plan, &config, &ExecOptions::default()).is_err());
    }

    #[test]
    fn sp_speedup_is_close_to_linear_below_threshold() {
        let plan = plan_for(1);
        let opts = ExecOptions::default();
        let t1 = execute_sp(&plan, &SystemConfig::shared_memory(1), &opts)
            .unwrap()
            .response_time;
        let t16 = execute_sp(&plan, &SystemConfig::shared_memory(16), &opts)
            .unwrap()
            .response_time;
        let speedup = t1.as_secs_f64() / t16.as_secs_f64();
        assert!(speedup > 12.0 && speedup <= 16.01, "speedup {speedup}");
    }

    #[test]
    fn sp_contention_bends_the_curve_beyond_threshold() {
        let plan = plan_for(1);
        let opts = ExecOptions::default();
        // Use fast disks so the run is CPU-bound and the memory-hierarchy
        // contention effect is visible in isolation.
        let mut config32 = SystemConfig::shared_memory(32);
        config32.disk.transfer_rate_bytes_per_sec = 1e9;
        let mut config64 = SystemConfig::shared_memory(64);
        config64.disk.transfer_rate_bytes_per_sec = 1e9;
        let t32 = execute_sp(&plan, &config32, &opts).unwrap().response_time;
        let t64 = execute_sp(&plan, &config64, &opts).unwrap().response_time;
        let speedup_ratio = t32.as_secs_f64() / t64.as_secs_f64();
        // Still faster with 64 processors, but less than 2x faster.
        assert!(
            speedup_ratio > 1.0 && speedup_ratio < 2.0,
            "ratio {speedup_ratio}"
        );
    }

    #[test]
    fn sp_report_is_consistent() {
        let plan = plan_for(1);
        let r = execute_sp(
            &plan,
            &SystemConfig::shared_memory(8),
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(r.strategy.label(), "SP");
        assert_eq!(r.processors(), 8);
        assert!(r.response_time > Duration::ZERO);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        assert_eq!(r.messages, 0);
        assert_eq!(r.lb_bytes, 0);
        assert_eq!(r.result_tuples, plan.tree.result_tuples());
        assert!(r.tuples_processed >= 150_000);
    }

    #[test]
    fn single_processor_time_is_at_least_sequential_cpu() {
        let plan = plan_for(1);
        let config = SystemConfig::shared_memory(1);
        let r = execute_sp(&plan, &config, &ExecOptions::default()).unwrap();
        // With one processor the response time can not be smaller than the
        // CPU component of the sequential cost.
        let cost = CostModel::new(config.costs, config.disk, config.cpu);
        let mut cpu = Duration::ZERO;
        for op in plan.tree.operators() {
            let c = match op.kind {
                OperatorKind::Scan { .. } => cost.scan_cost(op.input_tuples),
                OperatorKind::Build { .. } => cost.build_cost(op.input_tuples),
                OperatorKind::Probe { .. } => cost.probe_cost(op.input_tuples, op.output_tuples),
            };
            cpu += config.cpu.instructions(c.instructions);
        }
        assert!(r.response_time >= cpu);
    }
}
