//! Fixed Processing (FP): static processor-to-operator allocation.
//!
//! FP is the shared-nothing style strategy the paper compares against
//! (§5.2.1): "for each pipeline chain, processors are statically allocated to
//! operators based on a ratio of the estimated complexity, including CPU and
//! I/O costs, of each operator versus the global complexity of the pipeline
//! chain". Adapted to shared memory, threads allocated to an operator may
//! still balance load *within* that operator, but never across operators.
//!
//! This module computes the per-node allocation. Cost estimates may be
//! distorted by a relative error rate `r` (cardinalities multiplied by
//! `1 + U[-r, +r]`) to reproduce the cost-model error study of Figure 7.

use dlb_common::{Duration, OperatorId};
use dlb_query::cost::CostModel;
use dlb_query::optree::OperatorKind;
use dlb_query::plan::ParallelPlan;
use rand::Rng;
use std::collections::BTreeMap;

/// The operators each local thread of a node is allowed to process.
pub type ThreadAssignment = Vec<Vec<OperatorId>>;

/// Estimated complexity of one operator of a chain (possibly distorted).
fn operator_complexity<R: Rng>(
    plan: &ParallelPlan,
    op: OperatorId,
    cost: &CostModel,
    error_rate: f64,
    rng: &mut R,
) -> Duration {
    let operator = plan.tree.operator(op);
    let input = cost.distorted_cardinality(rng, operator.input_tuples, error_rate);
    let output = cost.distorted_cardinality(rng, operator.output_tuples, error_rate);
    let c = match operator.kind {
        OperatorKind::Scan { .. } => cost.scan_cost(input),
        OperatorKind::Build { .. } => cost.build_cost(input),
        OperatorKind::Probe { .. } => cost.probe_cost(input, output),
    };
    c.sequential_time(&cost.cpu)
}

/// Allocates the `processors` threads of one node to the operators of every
/// pipeline chain of `plan`, proportionally to the estimated per-operator
/// complexity.
///
/// Every operator of a chain receives at least one thread whenever the node
/// has at least as many threads as the chain has operators (the discretization
/// the paper discusses); with fewer threads than operators, operators are
/// folded onto threads round-robin so that no operator is left unprocessable.
///
/// The result maps each local thread index to the set of operators it may
/// process (the union over all chains; chains execute one at a time so at any
/// instant only one chain's operators are active).
pub fn allocate_threads<R: Rng>(
    plan: &ParallelPlan,
    processors: u32,
    cost: &CostModel,
    error_rate: f64,
    rng: &mut R,
) -> ThreadAssignment {
    let p = processors.max(1) as usize;
    let mut assignment: ThreadAssignment = vec![Vec::new(); p];

    for chain in plan.chains() {
        let ops = &chain.operators;
        if ops.len() >= p {
            // Fewer threads than operators: fold operators onto threads
            // round-robin.
            for (i, &op) in ops.iter().enumerate() {
                assignment[i % p].push(op);
            }
            continue;
        }
        // Proportional allocation with a one-thread floor per operator.
        let complexities: Vec<f64> = ops
            .iter()
            .map(|&op| {
                operator_complexity(plan, op, cost, error_rate, rng)
                    .as_secs_f64()
                    .max(1e-9)
            })
            .collect();
        let total: f64 = complexities.iter().sum();
        let spare = p - ops.len();
        // Start with 1 thread each, distribute the remaining `spare` threads
        // by largest remainder of the proportional share.
        let mut counts: Vec<usize> = vec![1; ops.len()];
        let mut shares: Vec<(usize, f64)> = complexities
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c / total * spare as f64))
            .collect();
        let mut given = 0usize;
        for (i, share) in &shares {
            let extra = share.floor() as usize;
            counts[*i] += extra;
            given += extra;
        }
        // Distribute leftovers by largest fractional part.
        shares.sort_by(|a, b| {
            (b.1 - b.1.floor())
                .partial_cmp(&(a.1 - a.1.floor()))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut remaining = spare - given;
        for (i, _) in shares.iter() {
            if remaining == 0 {
                break;
            }
            counts[*i] += 1;
            remaining -= 1;
        }
        debug_assert_eq!(counts.iter().sum::<usize>(), p);

        // Assign consecutive thread indices to each operator.
        let mut thread = 0usize;
        for (op_idx, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                assignment[thread].push(ops[op_idx]);
                thread += 1;
            }
        }
    }

    assignment
}

/// Number of threads allocated to each operator (diagnostic view of an
/// assignment).
pub fn threads_per_operator(assignment: &ThreadAssignment) -> BTreeMap<OperatorId, usize> {
    let mut map = BTreeMap::new();
    for ops in assignment {
        for &op in ops {
            *map.entry(op).or_insert(0) += 1;
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_common::rng::rng_from_seed;
    use dlb_common::{QueryId, RelationId};
    use dlb_query::jointree::JoinTree;
    use dlb_query::optree::OperatorTree;
    use dlb_query::plan::{ChainScheduling, OperatorHomes};

    fn sample_plan() -> ParallelPlan {
        let tree = JoinTree::join(
            JoinTree::join(
                JoinTree::leaf(RelationId::new(0), 10_000),
                JoinTree::leaf(RelationId::new(1), 40_000),
                1.0 / 40_000.0,
            ),
            JoinTree::leaf(RelationId::new(2), 20_000),
            1.0 / 20_000.0,
        );
        let ot = OperatorTree::from_join_tree(&tree);
        let homes = OperatorHomes::all_nodes(&ot, 1);
        ParallelPlan::build(QueryId::new(0), ot, homes, ChainScheduling::OneAtATime).unwrap()
    }

    #[test]
    fn every_chain_operator_gets_at_least_one_thread() {
        let plan = sample_plan();
        let mut rng = rng_from_seed(1);
        let assignment = allocate_threads(&plan, 8, &CostModel::default(), 0.0, &mut rng);
        assert_eq!(assignment.len(), 8);
        let per_op = threads_per_operator(&assignment);
        for chain in plan.chains() {
            for op in &chain.operators {
                assert!(
                    per_op.get(op).copied().unwrap_or(0) >= 1,
                    "operator {op} unassigned"
                );
            }
        }
    }

    #[test]
    fn allocation_is_proportional_to_complexity() {
        let plan = sample_plan();
        let mut rng = rng_from_seed(2);
        let assignment = allocate_threads(&plan, 16, &CostModel::default(), 0.0, &mut rng);
        let per_op = threads_per_operator(&assignment);
        // Within each chain, the scan (which includes I/O) should get at
        // least as many threads as the build of the same chain when their
        // inputs are comparable and the scan is the expensive operator.
        for chain in plan.chains() {
            let first = chain.first();
            let last = chain.last();
            if plan.tree.operator(first).kind.is_scan() && plan.tree.operator(last).kind.is_build()
            {
                assert!(per_op[&first] >= 1);
                assert!(per_op[&last] >= 1);
            }
        }
        // All threads are used by every chain.
        for chain in plan.chains() {
            let used: usize = chain
                .operators
                .iter()
                .map(|op| per_op.get(op).copied().unwrap_or(0))
                .sum();
            assert_eq!(used, 16, "chain {:?} does not use all threads", chain.id);
        }
    }

    #[test]
    fn fewer_threads_than_operators_folds_round_robin() {
        let plan = sample_plan();
        let mut rng = rng_from_seed(3);
        let assignment = allocate_threads(&plan, 2, &CostModel::default(), 0.0, &mut rng);
        let per_op = threads_per_operator(&assignment);
        for chain in plan.chains() {
            for op in &chain.operators {
                assert!(per_op.get(op).copied().unwrap_or(0) >= 1);
            }
        }
    }

    #[test]
    fn error_rate_changes_allocation_sometimes() {
        let plan = sample_plan();
        let exact = allocate_threads(&plan, 12, &CostModel::default(), 0.0, &mut rng_from_seed(4));
        // With a large error rate and several seeds, at least one allocation
        // differs from the exact one.
        let mut any_different = false;
        for seed in 0..10 {
            let distorted = allocate_threads(
                &plan,
                12,
                &CostModel::default(),
                0.5,
                &mut rng_from_seed(seed),
            );
            if distorted != exact {
                any_different = true;
                break;
            }
        }
        assert!(any_different, "distortion never changed the allocation");
    }

    #[test]
    fn zero_processors_clamped_to_one() {
        let plan = sample_plan();
        let assignment =
            allocate_threads(&plan, 0, &CostModel::default(), 0.0, &mut rng_from_seed(5));
        assert_eq!(assignment.len(), 1);
        assert!(!assignment[0].is_empty());
    }
}
