//! The queue-based execution engine (Dynamic Processing and Fixed Processing).
//!
//! This is the heart of the reproduction: a discrete-event simulation of the
//! paper's execution model (§3 and §4) running one or more
//! [`ParallelPlan`]s on a hierarchical machine.
//!
//! * Each SM-node runs one worker thread per processor plus a scheduler that
//!   handles inter-node messages.
//! * Work is decomposed into self-contained **activations** stored in one
//!   activation queue per (operator, thread).
//! * Under **DP** any thread may consume any unblocked activation of its
//!   node, preferring its *primary* queues (its own queue of each operator)
//!   and paying a small interference penalty on the others.
//! * Under **FP** each thread only consumes the queues of the operators it
//!   was statically allocated to (see [`crate::fp`]).
//! * When a node (DP) or a processor (FP) runs out of eligible local work,
//!   **global load balancing** acquires probe activations — and the matching
//!   hash-table partition — from the most loaded remote node, following the
//!   benefit/overhead conditions of §3.2.
//! * Operator end is detected with the coordinator protocol of §4
//!   (EndOfQueuesAtNode, confirmation phase, termination broadcast — 4·n
//!   messages per operator).
//!
//! The engine works on tuple *counts* (the paper simulates operators the same
//! way): per-operator output cardinalities come from the plan, and skew is
//! injected by routing output batches across consumer queues with a Zipf
//! distribution (see [`crate::router`]).
//!
//! ## Co-simulation (multi-query mode)
//!
//! [`execute`] runs a single plan. [`execute_cosimulated`] runs N concurrent
//! queries — each a [`CoSimQuery`] with an arrival offset, a scheduling
//! priority and its own redistribution-skew profile — **inside one event
//! loop**: every query becomes a *lane* of operators, activations carry
//! their query id, threads pick work lane-by-lane in priority order, and
//! global load balancing sees the queued work of *all* queries when ranking
//! providers. Each lane may carry a *placement mask* re-homing its plan onto
//! a node subset (pinning placements), and per-node **memory admission**
//! runs inside the loop: arriving queries reserve their working set on their
//! placement nodes or wait, head-of-line FCFS, for a `QueryRelease` to free
//! room. This simulates real inter-query interference (queue contention,
//! steal traffic, flow control across queries, admission serialization)
//! instead of composing solo runs with an analytic contention model; see
//! [`crate::mix::MixMode`]. The loop is strictly sequential and seeded, so
//! co-simulated runs are bit-identical regardless of harness thread counts.

use crate::activation::{Activation, ActivationKind, ActivationQueue, DrainOutcome};
use crate::options::{ErrorRealization, ExecOptions, RecoveryPolicy};
use crate::report::{CoSimReport, ExecutionReport, FaultStats, OpenReport, QueryExecReport};
use crate::router::OutputRouter;
use crate::strategy::{PushConfig, StealScope, Strategy};
use crate::topology::{validate_topology, TopologyChange, TopologyEvent};
use dlb_common::config::SystemConfig;
use dlb_common::rng::rng_from_seed;
use dlb_common::{
    BitSet, DiskId, DlbError, Duration, NodeId, OperatorId, ProcessorId, RelationId, Result,
    SimTime,
};
use dlb_frontend::{FrontendConfig, FrontendStats, Lookup, ResultCache, SingleFlight};
use dlb_query::cost::CostModel;
use dlb_query::optree::OperatorKind;
use dlb_query::plan::ParallelPlan;
use dlb_sim::{CpuAccounting, DiskFarm, EventCalendar, Network};
use dlb_traffic::{Arrival, ArrivalSpec, ArrivalStream, LatencyHistogram};
use rand::rngs::StdRng;
use std::collections::BTreeSet;
use std::collections::VecDeque;

/// Size, in bytes, of a small control message (starving, offers, protocol
/// messages). Only used for traffic accounting; the CPU cost is the paper's
/// per-8 KB cost for one page.
const CONTROL_MESSAGE_BYTES: u64 = 256;

/// Hard cap on simulation events, as a guard against engine bugs producing
/// infinite event loops. Generously above anything a paper-scale plan (or a
/// co-simulated mix of them) needs.
const MAX_EVENTS: u64 = 500_000_000;

/// One query of a co-simulated execution: the plan plus the inter-query
/// descriptors the engine needs to interleave it with the others.
#[derive(Debug, Clone, Copy)]
pub struct CoSimQuery<'a> {
    /// The query's parallel execution plan. Operator homes must lie within
    /// the machine the mix runs on.
    pub plan: &'a ParallelPlan,
    /// Arrival offset from the start of the mix, in (virtual) seconds. The
    /// query arrives — and enters memory admission — at this instant; its
    /// scan triggers are seeded when it is admitted.
    pub arrival_secs: f64,
    /// Local-scheduling priority (≥ 1): threads exhaust the eligible work of
    /// higher-priority queries before touching lower-priority queues.
    pub priority: u32,
    /// Redistribution-skew factor (Zipf theta in `[0, 1]`) of this query's
    /// activation routing.
    pub skew: f64,
    /// Placement mask: the SM-nodes this query's plan is re-homed onto.
    /// `None` spreads the query over the whole machine (FCFS placement);
    /// `Some(nodes)` pins every operator of the plan to exactly these nodes
    /// (the pinning placements of [`crate::mix::MixPolicy::RoundRobin`] /
    /// [`crate::mix::MixPolicy::LoadAware`]). Scheduling, steal-candidate
    /// sets and FP thread allocations are all restricted to the mask.
    pub mask: Option<&'a [NodeId]>,
    /// Working-set estimate (hash-table bytes) used for per-node memory
    /// admission, spread evenly over the placement nodes. `0` admits
    /// immediately (single-plan executions pass 0, keeping admission a
    /// no-op on the plain path).
    pub memory_bytes: u64,
}

/// One query template of an open-system run: the plan plus the per-admission
/// descriptors the engine derives admission and slowdown accounting from.
#[derive(Debug, Clone, Copy)]
pub struct OpenTemplate<'a> {
    /// The template's parallel execution plan (homes must lie within the
    /// machine the traffic runs on).
    pub plan: &'a ParallelPlan,
    /// Working-set estimate (hash-table bytes) reserved on every node for
    /// each admitted instance of this template; `0` admits immediately.
    pub memory_bytes: u64,
    /// Solo (unloaded) response time of the template in seconds, the
    /// slowdown baseline. `0` records a slowdown of 1 for every instance.
    pub solo_secs: f64,
}

/// An open-system workload: a stochastic arrival stream over a pool of query
/// templates, executed with a bounded multiprogramming level.
///
/// Unlike [`execute_cosimulated`], whose lane state is proportional to the
/// *total* number of queries, an open run keeps one lane slot per admitted
/// query: arrivals beyond `concurrency` wait in an unbounded (but
/// descriptor-sized) FCFS queue, and a retired query's operator state is
/// dropped and its slot recycled. Live memory is `O(concurrency)`, never
/// `O(total queries)`.
#[derive(Debug, Clone)]
pub struct OpenTraffic<'a> {
    /// The template pool; [`ArrivalSpec::templates`] must equal its length.
    pub templates: Vec<OpenTemplate<'a>>,
    /// The arrival process (kind, rate, burstiness, total query count,
    /// priority classes, seed).
    pub arrivals: ArrivalSpec,
    /// Maximum number of concurrently admitted queries (lane slots).
    pub concurrency: usize,
    /// Front-end layer (result cache + single-flight coalescing) between the
    /// arrival stream and the admission queue. The default config is inert:
    /// the run is bit-identical to one without a front end.
    pub frontend: FrontendConfig,
}

/// A query that arrived but is not admitted yet (waiting room entry).
#[derive(Debug, Clone, Copy)]
struct OpenPending {
    arrived_at: SimTime,
    template: usize,
    priority: u32,
}

/// A coalesced arrival waiting on its leader's result (single-flight
/// subscriber). Followers never enter the waiting room or a lane: they
/// retire when their leader does, plus the fan-out cost.
#[derive(Debug, Clone, Copy)]
struct OpenFollower {
    arrived_at: SimTime,
    priority: u32,
}

/// Engine-side state of an open-system run (absent in closed mode).
struct OpenState<'a> {
    templates: Vec<OpenTemplate<'a>>,
    stream: ArrivalStream,
    /// The next arrival, already drawn and scheduled as an `OpenArrival`
    /// event. Drawing lazily — one descriptor ahead of the clock — keeps
    /// the calendar and the generator state `O(1)` in the query count.
    upcoming: Option<Arrival>,
    arrivals_done: bool,
    pending: VecDeque<OpenPending>,
    /// Recyclable lane slots; initialized in reverse so the first admission
    /// takes slot 0 (a lone query then reproduces the closed engine exactly).
    free_slots: Vec<usize>,
    live_now: usize,
    peak_live: usize,
    completed: u64,
    admission_seq: u64,
    lane_seq: Vec<u64>,
    lane_template: Vec<usize>,
    /// FP cost-model error draws, one allocation per admission.
    fp_rng: StdRng,
    response: LatencyHistogram,
    wait: LatencyHistogram,
    slowdown: LatencyHistogram,
    response_by_class: Vec<LatencyHistogram>,
    /// Front-end layer between the arrival stream and the waiting room.
    frontend: FrontendConfig,
    /// Result cache keyed by template index — the simulated stand-in for the
    /// byte-exact query identity (a template always produces the same
    /// deterministic result).
    cache: ResultCache<usize, ()>,
    /// In-flight single-flight table; a leader spans waiting room +
    /// execution, so every follower drains at its leader's retirement.
    flight: SingleFlight<usize, OpenFollower>,
    /// Arrivals that never consulted the cache (coalesce-only config).
    cache_bypass: u64,
    /// Queries the engine actually executed (leaders + uncoalesced misses).
    engine_queries: u64,
    /// Engine executions per template: the residual load after the front end.
    engine_by_template: Vec<u64>,
    response_engine: LatencyHistogram,
    response_cache_hit: LatencyHistogram,
    response_coalesced: LatencyHistogram,
    /// Latest front-end retirement (cache hit or follower fan-out); extends
    /// the makespan past the engine's last event when the tail of the run is
    /// served without touching a lane.
    front_finish: SimTime,
}

#[derive(Debug, Clone)]
enum Event {
    ThreadReady {
        node: usize,
        thread: usize,
    },
    Data {
        node: usize,
        op: usize,
        slot: usize,
        activation: Activation,
    },
    Control {
        node: usize,
        msg: ControlMsg,
    },
    /// A co-simulated query arrives: it joins the admission queue (and is
    /// admitted on the spot when its placement has the memory).
    QueryStart {
        lane: usize,
    },
    /// A waiting query's memory reservation succeeded after a release: seed
    /// its triggers and wake the machine. Only scheduled for queries that
    /// actually waited — arrivals that fit are admitted synchronously, so
    /// the single-query/no-contention event stream is unchanged.
    QueryAdmit {
        lane: usize,
    },
    /// A query completed: release its working set on its placement nodes and
    /// admit whoever now fits (head-of-line FCFS order).
    QueryRelease {
        lane: usize,
    },
    /// A scheduled topology change (node failure, drain or re-join) takes
    /// effect. `index` points into the engine's validated, time-sorted
    /// topology stream.
    Topology {
        index: usize,
    },
    /// Open mode: the next query of the arrival stream arrives. The
    /// descriptor sits in `OpenState::upcoming`; handling it draws (and
    /// schedules) the following arrival.
    OpenArrival,
}

#[derive(Debug, Clone)]
enum ControlMsg {
    /// Phase 1 of end detection: a node reports all its queues of `op` are
    /// inactive.
    LocalEnd { op: usize },
    /// Phase 2 request from the coordinator.
    ConfirmRequest { op: usize },
    /// Phase 2 reply: the node has no remaining work for `op`.
    Confirm { op: usize },
    /// Termination broadcast (accounting only; state is updated centrally).
    Terminated {
        /// The terminated operator (kept for traceability in debug output).
        #[allow(dead_code)]
        op: usize,
    },
    /// A node is starving (DP: any work; FP: work for `target`).
    Starving {
        from: usize,
        free_bytes: u64,
        target: Option<usize>,
        token: u64,
        /// Open mode: recycle epoch of `target` at request time; a targeted
        /// request whose op slot was recycled in flight draws a NoOffer.
        /// Always 0 in closed mode (slots are never recycled there).
        epoch: u64,
    },
    /// A provider offers work from one of its queues.
    Offer {
        from: usize,
        op: usize,
        tuples: u64,
        bytes: u64,
        load: u64,
        token: u64,
        /// Recycle epoch of `op` at offer time (see `Starving::epoch`).
        epoch: u64,
    },
    /// A provider has nothing to offer.
    NoOffer { from: usize, token: u64 },
    /// The requester asks the chosen provider to ship activations.
    Acquire {
        from: usize,
        op: usize,
        has_table: bool,
        /// Recycle epoch echoed from the chosen offer; a mismatch at the
        /// provider (the op slot retired and was reused between Offer and
        /// Acquire) ships an empty transfer instead of another lane's work.
        epoch: u64,
    },
    /// The provider ships activations (and possibly its hash-table
    /// partition).
    Transfer {
        from: usize,
        op: usize,
        activations: Vec<Activation>,
        bytes: u64,
    },
    /// Sender-initiated push (Threshold): an overloaded node probes one
    /// candidate receiver before shipping anything.
    PushProbe { from: usize, token: u64 },
    /// The probed node's verdict. Sent even on decline (and even by a node
    /// that died with the probe in flight) so the sender's outstanding-probe
    /// flag always clears.
    PushReply {
        from: usize,
        accept: bool,
        free_bytes: u64,
        token: u64,
    },
}

/// Per-query runtime state of the (co-)simulation. Single-plan executions
/// are the one-lane special case; the engine indexes operators *globally*
/// (lane base + plan-local index) so that all scheduling, flow-control and
/// steal machinery sees every query's work at once.
struct LaneRuntime<'a> {
    plan: &'a ParallelPlan,
    arrival: SimTime,
    priority: u32,
    skew: f64,
    /// The SM-nodes this lane's operators are re-homed onto (`None` = the
    /// plan's own homes, i.e. the whole machine).
    mask: Option<Vec<NodeId>>,
    /// Total working-set demand (hash-table bytes) of the lane; the per-node
    /// share is re-derived from this when the live placement shrinks or
    /// grows before admission.
    memory_bytes: u64,
    /// Per-node share of the lane's working set (memory admission).
    mem_per_node: u64,
    /// Exact outstanding reservations, as `(node, bytes)` pairs recorded at
    /// admission. Releases return exactly these; a node failure drops its
    /// pairs (the memory died with the node).
    reserved: Vec<(usize, u64)>,
    /// Guards against double release when a restarted operator re-terminates
    /// a lane that already released its working set.
    released: bool,
    /// First global operator index of this lane.
    base: usize,
    /// Number of operators of this lane's plan.
    n_ops: usize,
    /// Whether the lane was admitted and its triggers seeded.
    started: bool,
    /// Instant the lane passed memory admission (= arrival unless memory was
    /// tight).
    admitted_at: SimTime,
    ops_terminated: usize,
    finished_at: SimTime,
    activations: u64,
    tuples_processed: u64,
    result_tuples: u64,
}

/// Per-operator global runtime state.
struct OpRuntime {
    /// The lane (query) this operator belongs to.
    lane: usize,
    kind: OperatorKind,
    /// Global index of the consumer operator, if any.
    consumer: Option<usize>,
    home: Vec<NodeId>,
    output_ratio: f64,
    blockers_remaining: usize,
    terminated: bool,
    router: OutputRouter,
    input_sent: u64,
    input_delivered: u64,
    input_processed: u64,
    phase1_reports: usize,
    phase2_started: bool,
    phase2_confirms: usize,
    /// For probe operators: the global index of the build whose table is
    /// probed.
    build_twin: Option<usize>,
}

/// Per-(operator, node) runtime state. Only allocated for home nodes.
struct OpNodeRuntime {
    queues: Vec<ActivationQueue>,
    parked: VecDeque<Activation>,
    /// Tuples in `parked`, maintained incrementally (all parked mutation
    /// goes through [`park`], [`unpark_front`] and [`drain_parked_into`])
    /// so load scans never walk the overflow list.
    ///
    /// [`park`]: OpNodeRuntime::park
    /// [`unpark_front`]: OpNodeRuntime::unpark_front
    /// [`drain_parked_into`]: OpNodeRuntime::drain_parked_into
    parked_tuples: u64,
    /// Activations currently held on this (operator, node) — queued plus
    /// parked — maintained incrementally by the queue/park helpers so end
    /// detection and work selection are O(1) instead of O(threads).
    queued: u32,
    processing: u32,
    phase1_sent: bool,
    confirm_pending: bool,
    confirm_sent: bool,
    /// For build operators: tuples inserted into this node's hash-table
    /// partition (determines the volume shipped by global load balancing).
    hash_tuples: u64,
    /// Remote nodes whose hash-table partition has already been copied here
    /// (the "list of stolen queues" optimization of §4).
    hash_copied_from: BTreeSet<usize>,
    /// Disks on which this scan has already positioned (first read pays
    /// latency + seek, subsequent reads stream sequentially).
    started_disks: BTreeSet<u32>,
    /// Round-robin cursor for placing acquired activations into queues.
    steal_cursor: usize,
    /// Bitmask of queues holding at least one activation (bit = slot index,
    /// maintained for slots < 64 — wider machines fall back to scanning).
    /// Lets work selection jump straight to a loaded queue instead of
    /// probing every empty one.
    nonempty: u64,
}

impl OpNodeRuntime {
    fn new(threads_per_node: usize, queue_capacity: usize) -> Self {
        Self {
            queues: (0..threads_per_node)
                .map(|_| ActivationQueue::new(queue_capacity))
                .collect(),
            parked: VecDeque::new(),
            parked_tuples: 0,
            queued: 0,
            processing: 0,
            phase1_sent: false,
            confirm_pending: false,
            confirm_sent: false,
            hash_tuples: 0,
            hash_copied_from: BTreeSet::new(),
            started_disks: BTreeSet::new(),
            steal_cursor: 0,
            nonempty: 0,
        }
    }

    /// Appends an overflow activation to the parked list.
    fn park(&mut self, a: Activation) {
        self.parked_tuples += a.tuples;
        self.queued += 1;
        self.parked.push_back(a);
    }

    /// Pops the oldest parked activation.
    fn unpark_front(&mut self) -> Option<Activation> {
        let a = self.parked.pop_front();
        if let Some(a) = a {
            self.parked_tuples -= a.tuples;
            self.queued -= 1;
        }
        a
    }

    /// Pushes into queue `slot`; `false` when that queue is full.
    fn enqueue(&mut self, slot: usize, a: Activation) -> bool {
        let pushed = self.queues[slot].push(a);
        self.queued += pushed as u32;
        if pushed && slot < 64 {
            self.nonempty |= 1u64 << slot;
        }
        pushed
    }

    /// Pushes into queue `slot`, parking the activation on overflow.
    fn enqueue_or_park(&mut self, slot: usize, a: Activation) {
        if !self.enqueue(slot, a) {
            self.park(a);
        }
    }

    /// Pops the oldest activation of queue `slot`.
    fn dequeue(&mut self, slot: usize) -> Option<Activation> {
        let a = self.queues[slot].pop();
        self.queued -= a.is_some() as u32;
        if a.is_some() && slot < 64 && self.queues[slot].is_empty() {
            self.nonempty &= !(1u64 << slot);
        }
        a
    }

    /// Drains up to `max` activations of queue `slot` into `out`.
    fn drain_queue_into(
        &mut self,
        slot: usize,
        max: usize,
        out: &mut Vec<Activation>,
    ) -> DrainOutcome {
        let outcome = self.queues[slot].drain_into(max, out);
        self.queued -= outcome.count as u32;
        if outcome.count > 0 && slot < 64 && self.queues[slot].is_empty() {
            self.nonempty &= !(1u64 << slot);
        }
        outcome
    }

    /// Moves every parked activation into `out` (recovery path).
    fn drain_parked_into(&mut self, out: &mut Vec<Activation>) {
        self.parked_tuples = 0;
        self.queued -= self.parked.len() as u32;
        out.extend(self.parked.drain(..));
    }

    /// Moves everything — parked overflow and every queue — into `out`.
    fn drain_all_into(&mut self, out: &mut Vec<Activation>) {
        self.drain_parked_into(out);
        for slot in 0..self.queues.len() {
            self.drain_queue_into(slot, usize::MAX, out);
        }
    }

    /// Total tuples queued on this (operator, node), including overflow.
    /// O(threads): each queue keeps an incremental tuple counter.
    fn queued_tuples(&self) -> u64 {
        debug_assert_eq!(
            self.parked_tuples,
            self.parked.iter().map(|a| a.tuples).sum::<u64>(),
            "parked tuple counter drifted"
        );
        self.queues.iter().map(|q| q.queued_tuples()).sum::<u64>() + self.parked_tuples
    }

    /// The nonempty-queue bitmask, consistency-checked in debug builds.
    /// Only meaningful when every slot fits the mask (`queues.len() <= 64`).
    fn nonempty_mask(&self) -> u64 {
        debug_assert!(
            self.queues.len() > 64
                || (0..self.queues.len())
                    .all(|s| self.queues[s].is_empty() != (self.nonempty >> s & 1 == 1)),
            "nonempty bitmask drifted from queue contents"
        );
        self.nonempty
    }

    fn queued_activations(&self) -> usize {
        debug_assert_eq!(
            self.queued as usize,
            self.queues.iter().map(|q| q.len()).sum::<usize>() + self.parked.len(),
            "incremental activation counter drifted from queue contents"
        );
        self.queued as usize
    }

    fn is_drained(&self) -> bool {
        self.queued_activations() == 0 && self.processing == 0
    }
}

struct ThreadRuntime {
    idle: bool,
    /// FP only: the set of global operator indices this thread's static
    /// allocation permits, as a bitset so the per-op membership test in
    /// work selection is a word probe instead of a tree walk.
    allowed: Option<BitSet>,
}

/// The slice of per-lane state the work-selection inner loop reads,
/// packed contiguously (structure-of-arrays) so a scheduling pass over all
/// lanes touches a handful of cache lines instead of one wide
/// [`LaneRuntime`] per lane. Kept in sync by [`QueueEngine::sync_lane_hot`]
/// at every `started`/`n_ops` mutation.
#[derive(Clone, Copy)]
struct LaneHot {
    base: u32,
    n_ops: u32,
    started: bool,
}

/// One collected steal offer: `(provider, op, tuples, bytes, load, epoch)`.
type OfferEntry = (usize, usize, u64, u64, u64, u64);

/// Per-node global-load-balancing state (the scheduler's bookkeeping).
#[derive(Default)]
struct NodeLb {
    starving_outstanding: bool,
    fp_outstanding: BTreeSet<usize>,
    offers: Vec<OfferEntry>, // (provider, op, tuples, bytes, load, epoch)
    replies_received: usize,
    replies_expected: usize,
    /// Token of the current request; replies carrying a stale token are
    /// ignored (a node can issue several steal episodes over time).
    current_token: u64,
    /// Sender-initiated push (Threshold): at most one probe in flight per
    /// node.
    push_outstanding: bool,
    /// Last probed receiver; the next probe starts after it, so repeated
    /// pushes rotate over the machine instead of hammering one node.
    push_cursor: usize,
}

/// The queue-based engine shared by DP and FP, over one or more query lanes.
pub(crate) struct QueueEngine<'a> {
    lanes: Vec<LaneRuntime<'a>>,
    /// Dense copy of each lane's `(base, n_ops, started)` for the
    /// work-selection scan (see [`LaneHot`]).
    lane_hot: Vec<LaneHot>,
    /// Lane indices in local-scheduling order: priority descending, mix
    /// index ascending on ties.
    lane_order: Vec<usize>,
    config: SystemConfig,
    options: ExecOptions,
    strategy: Strategy,
    /// Cached [`Policy::push_config`] (`None` for pull-only policies, so the
    /// push probe in the data-delivery path costs one branch there).
    push: Option<PushConfig>,
    /// Cached [`Policy::custom_work_mask`]: policies are stateless
    /// singletons with fixed parameters, so the hot-loop hooks below are
    /// snapshot once at construction and the selection/steal paths branch on
    /// plain fields instead of paying virtual dispatch per event.
    custom_mask: bool,
    /// Cached [`Policy::starving_scope`].
    scope: StealScope,
    /// Cached [`Policy::prefers_cached_tables`].
    prefers_cached: bool,
    cost: CostModel,
    nodes: usize,
    threads_per_node: usize,
    disks_per_node: u32,

    calendar: EventCalendar<Event>,
    disks: DiskFarm,
    network: Network,
    cpu: CpuAccounting,

    ops: Vec<OpRuntime>,
    /// Indices of non-terminated operators, as a dense bitmask. The steal
    /// scheduler's candidate scan, its load aggregation and the
    /// end-detection sweep walk this set instead of `0..ops.len()`; in open
    /// mode most slots are retired placeholders, so the walk touches only
    /// the `O(concurrency)` live lanes. Ascending iteration order keeps the
    /// visit order identical to the linear scans it replaces.
    live_ops: BitSet,
    /// Per-node set of operators with at least one queued or parked
    /// activation (`OpNodeRuntime::queued > 0`). Work selection probes this
    /// instead of touching every operator's queue state; every queue
    /// mutation site keeps it in sync.
    ready: Vec<BitSet>,
    /// Per-node bitmask of idle threads (bit `t` = thread `t` is idle),
    /// mirroring `ThreadRuntime::idle` so wake scans are a word probe.
    /// Only maintained for machines with at most 64 threads per node;
    /// wider nodes fall back to the boolean scan.
    idle_threads: Vec<u64>,
    op_nodes: Vec<Vec<Option<OpNodeRuntime>>>,
    threads: Vec<Vec<ThreadRuntime>>,
    node_lb: Vec<NodeLb>,
    disk_cursor: Vec<u32>,

    /// Per-op-slot recycle epoch, bumped when open mode retires a lane and
    /// frees its slot. Steal-protocol messages carry the epoch they were
    /// issued under so episodes that straddle a retirement die harmlessly.
    /// All-zero (and never bumped) in closed mode.
    epochs: Vec<u64>,
    /// Open-system state (`None` = closed mode, i.e. every path below that
    /// touches it is dead in classic runs).
    open: Option<OpenState<'a>>,

    /// Free shared memory per SM-node (the admission budget).
    free_mem: Vec<u64>,
    /// Lanes that arrived but do not fit yet, in arrival order. Admission is
    /// strict head-of-line FCFS, matching [`crate::mix::schedule_mix`]:
    /// priorities weight the scheduling of *admitted* queries, they never
    /// jump the admission queue.
    admission_queue: VecDeque<usize>,

    /// The validated, time-sorted topology-event stream (empty for fault-free
    /// runs — every fault path below is a strict no-op then).
    topology: Vec<TopologyEvent>,
    /// Live flag per SM-node; failures/drains clear it, re-joins set it.
    live: Vec<bool>,
    /// Degradation accounting of applied topology events.
    faults: FaultStats,

    activations_done: u64,
    tuples_processed: u64,
    result_tuples: u64,
    lb_requests: u64,
    lb_acquisitions: u64,
    lb_bytes: u64,
    ops_terminated: usize,
    finished_at: SimTime,
}

impl<'a> QueueEngine<'a> {
    pub(crate) fn new(
        plan: &'a ParallelPlan,
        config: SystemConfig,
        strategy: Strategy,
        options: ExecOptions,
    ) -> Result<Self> {
        Self::new_cosim(
            &[CoSimQuery {
                plan,
                arrival_secs: 0.0,
                priority: 1,
                skew: options.skew,
                mask: None,
                memory_bytes: 0,
            }],
            config,
            strategy,
            options,
            &[],
        )
    }

    pub(crate) fn new_cosim(
        queries: &[CoSimQuery<'a>],
        config: SystemConfig,
        strategy: Strategy,
        options: ExecOptions,
        topology: &[TopologyEvent],
    ) -> Result<Self> {
        if queries.is_empty() {
            return Err(DlbError::config("co-simulation needs at least one query"));
        }
        if config.machine.nodes == 0 || config.machine.processors_per_node == 0 {
            return Err(DlbError::config(
                "machine needs at least one node and processor",
            ));
        }
        let machine_nodes = config.machine.nodes as usize;
        let topology = validate_topology(topology, config.machine.nodes)?;
        let mut lanes: Vec<LaneRuntime<'a>> = Vec::with_capacity(queries.len());
        let mut base = 0usize;
        for (i, q) in queries.iter().enumerate() {
            q.plan.validate()?;
            if q.priority == 0 {
                return Err(DlbError::config(format!(
                    "co-simulated query {i} has priority 0 (priorities are ≥ 1)"
                )));
            }
            if !(q.arrival_secs.is_finite() && q.arrival_secs >= 0.0) {
                return Err(DlbError::config(format!(
                    "co-simulated query {i} has invalid arrival {}",
                    q.arrival_secs
                )));
            }
            if !(q.skew.is_finite() && (0.0..=1.0).contains(&q.skew)) {
                return Err(DlbError::config(format!(
                    "co-simulated query {i} has skew {} outside [0, 1]",
                    q.skew
                )));
            }
            let mask: Option<Vec<NodeId>> = match q.mask {
                None => None,
                Some(nodes) => {
                    if nodes.is_empty() {
                        return Err(DlbError::config(format!(
                            "co-simulated query {i} has an empty placement mask"
                        )));
                    }
                    let mut mask: Vec<NodeId> = nodes.to_vec();
                    mask.sort_unstable();
                    mask.dedup();
                    if let Some(bad) = mask.iter().find(|n| n.index() >= machine_nodes) {
                        return Err(DlbError::config(format!(
                            "co-simulated query {i} is pinned to node {bad} but the \
                             machine has {machine_nodes} nodes"
                        )));
                    }
                    Some(mask)
                }
            };
            let placement_len = mask.as_ref().map_or(machine_nodes, Vec::len);
            let mem_per_node = q.memory_bytes.div_ceil(placement_len as u64);
            if mem_per_node > config.machine.memory_per_node_bytes {
                return Err(DlbError::config(format!(
                    "co-simulated query {i} needs {mem_per_node} bytes on each of its \
                     {placement_len} placement node(s) but nodes have {} — it can \
                     never be admitted",
                    config.machine.memory_per_node_bytes
                )));
            }
            let n_ops = q.plan.tree.operators().len();
            lanes.push(LaneRuntime {
                plan: q.plan,
                arrival: SimTime::ZERO + Duration::from_secs_f64(q.arrival_secs),
                priority: q.priority,
                skew: q.skew,
                mask,
                memory_bytes: q.memory_bytes,
                mem_per_node,
                reserved: Vec::new(),
                released: false,
                base,
                n_ops,
                started: false,
                admitted_at: SimTime::ZERO,
                ops_terminated: 0,
                finished_at: SimTime::ZERO,
                activations: 0,
                tuples_processed: 0,
                result_tuples: 0,
            });
            base += n_ops;
        }
        let mut lane_order: Vec<usize> = (0..lanes.len()).collect();
        lane_order.sort_by(|&a, &b| lanes[b].priority.cmp(&lanes[a].priority).then(a.cmp(&b)));
        let lane_hot = lanes
            .iter()
            .map(|l| LaneHot {
                base: l.base as u32,
                n_ops: l.n_ops as u32,
                started: l.started,
            })
            .collect();
        let nodes = config.machine.nodes as usize;
        let threads_per_node = config.machine.processors_per_node as usize;
        let disks_per_node =
            (config.machine.processors_per_node * config.disk.disks_per_processor).max(1);
        let cost = CostModel::new(config.costs, config.disk, config.cpu);

        let mut engine = Self {
            lanes,
            lane_hot,
            lane_order,
            config,
            options,
            strategy,
            push: strategy.push_config(),
            custom_mask: strategy.custom_work_mask(),
            scope: strategy.starving_scope(),
            prefers_cached: strategy.prefers_cached_tables(),
            cost,
            nodes,
            threads_per_node,
            disks_per_node,
            calendar: EventCalendar::new(),
            disks: DiskFarm::new(config.disk, config.machine.nodes, disks_per_node),
            network: Network::new(config.network, config.cpu),
            cpu: CpuAccounting::new(config.machine.nodes, config.machine.processors_per_node),
            ops: Vec::new(),
            live_ops: BitSet::default(),
            ready: (0..nodes).map(|_| BitSet::default()).collect(),
            idle_threads: vec![0; nodes],
            op_nodes: Vec::new(),
            threads: Vec::new(),
            node_lb: (0..nodes).map(|_| NodeLb::default()).collect(),
            disk_cursor: vec![0; nodes],
            epochs: Vec::new(),
            open: None,
            free_mem: vec![config.machine.memory_per_node_bytes; nodes],
            admission_queue: VecDeque::new(),
            topology,
            live: vec![true; nodes],
            faults: FaultStats::default(),
            activations_done: 0,
            tuples_processed: 0,
            result_tuples: 0,
            lb_requests: 0,
            lb_acquisitions: 0,
            lb_bytes: 0,
            ops_terminated: 0,
            finished_at: SimTime::ZERO,
        };
        engine.initialize()?;
        engine.epochs = vec![0; engine.ops.len()];
        Ok(engine)
    }

    /// Builds an engine in open-system mode: `concurrency` recyclable lane
    /// slots, each owning a fixed contiguous range of `max_ops` operator
    /// slots, fed by the arrival stream instead of a fixed query list.
    pub(crate) fn new_open(
        traffic: &OpenTraffic<'a>,
        config: SystemConfig,
        strategy: Strategy,
        options: ExecOptions,
    ) -> Result<Self> {
        if traffic.templates.is_empty() {
            return Err(DlbError::config("open traffic needs at least one template"));
        }
        if traffic.concurrency == 0 {
            return Err(DlbError::config(
                "open traffic needs a concurrency level of at least 1",
            ));
        }
        if config.machine.nodes == 0 || config.machine.processors_per_node == 0 {
            return Err(DlbError::config(
                "machine needs at least one node and processor",
            ));
        }
        if traffic.arrivals.templates != traffic.templates.len() {
            return Err(DlbError::config(format!(
                "arrival spec draws from {} template(s) but {} were supplied",
                traffic.arrivals.templates,
                traffic.templates.len()
            )));
        }
        traffic.frontend.validate().map_err(DlbError::config)?;
        let nodes = config.machine.nodes as usize;
        for (i, t) in traffic.templates.iter().enumerate() {
            t.plan.validate()?;
            for op in t.plan.tree.operators() {
                if !t
                    .plan
                    .homes
                    .home(op.id)
                    .nodes()
                    .iter()
                    .any(|n| n.index() < nodes)
                {
                    return Err(DlbError::plan(format!(
                        "open template {i}: operator {} has no home node within the machine",
                        op.id
                    )));
                }
            }
            let mem_per_node = t.memory_bytes.div_ceil(nodes as u64);
            if mem_per_node > config.machine.memory_per_node_bytes {
                return Err(DlbError::config(format!(
                    "open template {i} needs {mem_per_node} bytes on every node but nodes \
                     have {} — it can never be admitted",
                    config.machine.memory_per_node_bytes
                )));
            }
            if !(t.solo_secs.is_finite() && t.solo_secs >= 0.0) {
                return Err(DlbError::config(format!(
                    "open template {i} has invalid solo time {}",
                    t.solo_secs
                )));
            }
        }
        let mut stream = ArrivalStream::new(traffic.arrivals).map_err(DlbError::config)?;
        let max_ops = traffic
            .templates
            .iter()
            .map(|t| t.plan.tree.operators().len())
            .max()
            .expect("at least one template");
        let concurrency = traffic.concurrency;
        let threads_per_node = config.machine.processors_per_node as usize;
        let disks_per_node =
            (config.machine.processors_per_node * config.disk.disks_per_processor).max(1);
        let cost = CostModel::new(config.costs, config.disk, config.cpu);

        // Slot pool: every lane starts empty (retired) and is populated per
        // admission; every op slot starts as a terminated placeholder.
        let lanes: Vec<LaneRuntime<'a>> = (0..concurrency)
            .map(|i| LaneRuntime {
                plan: traffic.templates[0].plan,
                arrival: SimTime::ZERO,
                priority: 1,
                skew: options.skew,
                mask: None,
                memory_bytes: 0,
                mem_per_node: 0,
                reserved: Vec::new(),
                released: true,
                base: i * max_ops,
                n_ops: 0,
                started: false,
                admitted_at: SimTime::ZERO,
                ops_terminated: 0,
                finished_at: SimTime::ZERO,
                activations: 0,
                tuples_processed: 0,
                result_tuples: 0,
            })
            .collect();
        let total_ops = concurrency * max_ops;
        let ops: Vec<OpRuntime> = (0..total_ops)
            .map(|i| Self::placeholder_op(i / max_ops))
            .collect();
        let op_nodes: Vec<Vec<Option<OpNodeRuntime>>> = (0..total_ops)
            .map(|_| (0..nodes).map(|_| None).collect())
            .collect();
        // FP threads start with empty allowed sets; admissions insert a
        // fresh per-lane allocation, retirements remove it again.
        let threads: Vec<Vec<ThreadRuntime>> = (0..nodes)
            .map(|_| {
                (0..threads_per_node)
                    .map(|_| ThreadRuntime {
                        idle: false,
                        allowed: strategy.constrains_threads().then(BitSet::default),
                    })
                    .collect()
            })
            .collect();
        let priority_classes = traffic.arrivals.priority_classes as usize;
        let upcoming = stream.next();
        let open = OpenState {
            templates: traffic.templates.clone(),
            arrivals_done: upcoming.is_none(),
            upcoming,
            stream,
            pending: VecDeque::new(),
            free_slots: (0..concurrency).rev().collect(),
            live_now: 0,
            peak_live: 0,
            completed: 0,
            admission_seq: 0,
            lane_seq: vec![0; concurrency],
            lane_template: vec![0; concurrency],
            fp_rng: rng_from_seed(options.seed),
            response: LatencyHistogram::new(),
            wait: LatencyHistogram::new(),
            slowdown: LatencyHistogram::new(),
            response_by_class: (0..priority_classes.max(1))
                .map(|_| LatencyHistogram::new())
                .collect(),
            frontend: traffic.frontend,
            cache: ResultCache::new(
                traffic.frontend.cache_capacity,
                traffic.frontend.cache_ttl_secs,
            ),
            flight: SingleFlight::new(),
            cache_bypass: 0,
            engine_queries: 0,
            engine_by_template: vec![0; traffic.templates.len()],
            response_engine: LatencyHistogram::new(),
            response_cache_hit: LatencyHistogram::new(),
            response_coalesced: LatencyHistogram::new(),
            front_finish: SimTime::ZERO,
        };

        let lane_hot = lanes
            .iter()
            .map(|l| LaneHot {
                base: l.base as u32,
                n_ops: l.n_ops as u32,
                started: l.started,
            })
            .collect();
        let mut engine = Self {
            lanes,
            lane_hot,
            lane_order: (0..concurrency).collect(),
            config,
            options,
            strategy,
            push: strategy.push_config(),
            custom_mask: strategy.custom_work_mask(),
            scope: strategy.starving_scope(),
            prefers_cached: strategy.prefers_cached_tables(),
            cost,
            nodes,
            threads_per_node,
            disks_per_node,
            calendar: EventCalendar::new(),
            disks: DiskFarm::new(config.disk, config.machine.nodes, disks_per_node),
            network: Network::new(config.network, config.cpu),
            cpu: CpuAccounting::new(config.machine.nodes, config.machine.processors_per_node),
            ops,
            // Placeholder slots are all terminated; admissions insert the
            // revived op indices, terminations remove them again.
            live_ops: BitSet::with_capacity(total_ops),
            ready: (0..nodes)
                .map(|_| BitSet::with_capacity(total_ops))
                .collect(),
            idle_threads: vec![0; nodes],
            op_nodes,
            threads,
            node_lb: (0..nodes).map(|_| NodeLb::default()).collect(),
            disk_cursor: vec![0; nodes],
            epochs: vec![0; total_ops],
            open: Some(open),
            free_mem: vec![config.machine.memory_per_node_bytes; nodes],
            admission_queue: VecDeque::new(),
            topology: Vec::new(),
            live: vec![true; nodes],
            faults: FaultStats::default(),
            activations_done: 0,
            tuples_processed: 0,
            result_tuples: 0,
            lb_requests: 0,
            lb_acquisitions: 0,
            lb_bytes: 0,
            ops_terminated: total_ops,
            finished_at: SimTime::ZERO,
        };

        // Kick off every thread, then schedule the first arrival (threads at
        // the same instant run first — they find nothing and go idle, and
        // the admission wakes them with the seeded triggers in place).
        for node in 0..engine.nodes {
            for thread in 0..engine.threads_per_node {
                engine
                    .calendar
                    .schedule_at(SimTime::ZERO, Event::ThreadReady { node, thread });
            }
        }
        if let Some(first) = engine.open.as_ref().expect("open mode").upcoming {
            engine.calendar.schedule_at(
                SimTime::ZERO + Duration::from_secs_f64(first.offset_secs),
                Event::OpenArrival,
            );
        }
        Ok(engine)
    }

    /// A permanently terminated operator slot: what unused and retired op
    /// slots of an open run hold. Empty home, no queue state, scan kind (so
    /// every steal-candidate filter skips it).
    fn placeholder_op(lane: usize) -> OpRuntime {
        OpRuntime {
            lane,
            kind: OperatorKind::Scan {
                relation: RelationId::new(0),
            },
            consumer: None,
            home: Vec::new(),
            output_ratio: 0.0,
            blockers_remaining: 0,
            terminated: true,
            router: OutputRouter::new(1, 0.0, 0),
            input_sent: 0,
            input_delivered: 0,
            input_processed: 0,
            phase1_reports: 0,
            phase2_started: false,
            phase2_confirms: 0,
            build_twin: None,
        }
    }

    fn initialize(&mut self) -> Result<()> {
        // Per-operator global state, lane by lane (lane 0's operators first,
        // so single-query indices coincide with plan-local indices).
        for lane_idx in 0..self.lanes.len() {
            let lane = &self.lanes[lane_idx];
            let plan = lane.plan;
            let base = lane.base;
            let skew = lane.skew;
            let joins = plan.tree.joins();
            for op in plan.tree.operators() {
                // A placement mask re-homes every operator of the lane onto
                // the mask's nodes; without one the plan's own homes apply
                // (clipped to the machine).
                let home: Vec<NodeId> = match &lane.mask {
                    Some(mask) => mask.clone(),
                    None => plan
                        .homes
                        .home(op.id)
                        .nodes()
                        .iter()
                        .copied()
                        .filter(|n| n.index() < self.nodes)
                        .collect(),
                };
                if home.is_empty() {
                    return Err(DlbError::plan(format!(
                        "operator {} has no home node within the machine",
                        op.id
                    )));
                }
                let mut blockers: Vec<OperatorId> = plan.blocked_by(op.id);
                blockers.sort_unstable();
                blockers.dedup();
                let output_ratio = if op.input_tuples == 0 {
                    0.0
                } else {
                    op.output_tuples as f64 / op.input_tuples as f64
                };
                let build_twin = match op.kind {
                    OperatorKind::Probe { join } => joins.get(&join).map(|(b, _)| base + b.index()),
                    _ => None,
                };
                let slots = home.len() * self.threads_per_node;
                self.ops.push(OpRuntime {
                    lane: lane_idx,
                    kind: op.kind,
                    consumer: op.consumer.map(|c| base + c.index()),
                    home,
                    output_ratio,
                    blockers_remaining: blockers.len(),
                    terminated: false,
                    // The rotation uses the *global* index so that the hot
                    // slots of same-shaped queries in a co-simulated mix do
                    // not all land on the same threads (for a single query
                    // the global index is the plan-local index).
                    router: OutputRouter::new(slots, skew, base + op.id.index()),
                    input_sent: 0,
                    input_delivered: 0,
                    input_processed: 0,
                    phase1_reports: 0,
                    phase2_started: false,
                    phase2_confirms: 0,
                    build_twin,
                });
            }
        }

        // Closed mode never recycles op slots: every operator starts live.
        self.live_ops = (0..self.ops.len()).collect();

        // Per-(op, node) state for home nodes.
        for op_idx in 0..self.ops.len() {
            let mut per_node: Vec<Option<OpNodeRuntime>> = (0..self.nodes).map(|_| None).collect();
            for node in &self.ops[op_idx].home {
                per_node[node.index()] = Some(OpNodeRuntime::new(
                    self.threads_per_node,
                    self.options.flow.queue_capacity,
                ));
            }
            self.op_nodes.push(per_node);
        }

        // Threads: FP computes a per-node static allocation (one per lane
        // homed on the node, mapped to global operator ids and unioned per
        // thread), DP leaves them unconstrained. Under the default
        // `ErrorRealization::Shared` each lane's distorted complexity
        // estimates are drawn ONCE and the resulting allocation is reused by
        // every node of its placement — the paper's reading: the optimizer
        // mis-estimates a cardinality once, not once per node.
        // `ErrorRealization::PerNode` keeps the historical fresh-draw-per-
        // node behaviour for comparison studies.
        let mut fp_rng = rng_from_seed(self.options.seed);
        let shared_assignments: Option<Vec<crate::fp::ThreadAssignment>> =
            if self.strategy.constrains_threads()
                && self.options.fp_realization == ErrorRealization::Shared
            {
                Some(
                    self.lanes
                        .iter()
                        .map(|lane| {
                            self.strategy
                                .allocate(
                                    lane.plan,
                                    self.threads_per_node as u32,
                                    &self.cost,
                                    &mut fp_rng,
                                )
                                .unwrap_or_default()
                        })
                        .collect(),
                )
            } else {
                None
            };
        for node in 0..self.nodes {
            let allowed: Option<Vec<BitSet>> = if self.strategy.constrains_threads() {
                let mut per_thread: Vec<BitSet> = vec![BitSet::default(); self.threads_per_node];
                for (lane_idx, lane) in self.lanes.iter().enumerate() {
                    // A pinned lane only constrains the threads of its
                    // own placement nodes.
                    if let Some(mask) = &lane.mask {
                        if !mask.contains(&NodeId::from(node)) {
                            continue;
                        }
                    }
                    let fresh;
                    let assignment = match &shared_assignments {
                        Some(assignments) => &assignments[lane_idx],
                        None => {
                            fresh = self
                                .strategy
                                .allocate(
                                    lane.plan,
                                    self.threads_per_node as u32,
                                    &self.cost,
                                    &mut fp_rng,
                                )
                                .unwrap_or_default();
                            &fresh
                        }
                    };
                    for (t, ops) in assignment.iter().enumerate() {
                        for o in ops {
                            per_thread[t].insert(lane.base + o.index());
                        }
                    }
                }
                Some(per_thread)
            } else {
                None
            };
            let threads = (0..self.threads_per_node)
                .map(|t| ThreadRuntime {
                    idle: false,
                    allowed: allowed.as_ref().map(|a| a[t].clone()),
                })
                .collect();
            self.threads.push(threads);
        }

        // Every lane already arrived at time zero enters the admission queue
        // in mix order and is admitted — memory reserved, triggers seeded —
        // while its placement has room (head-of-line FCFS, exactly like
        // `mix::schedule_mix`); later arrivals get a QueryStart event at
        // their instant.
        for lane_idx in 0..self.lanes.len() {
            if self.lanes[lane_idx].arrival == SimTime::ZERO {
                self.admission_queue.push_back(lane_idx);
            } else {
                self.calendar.schedule_at(
                    self.lanes[lane_idx].arrival,
                    Event::QueryStart { lane: lane_idx },
                );
            }
        }
        while let Some(lane) = self.try_reserve_head() {
            self.start_lane(lane);
        }

        // Kick off every thread at time zero.
        for node in 0..self.nodes {
            for thread in 0..self.threads_per_node {
                self.calendar
                    .schedule_at(SimTime::ZERO, Event::ThreadReady { node, thread });
            }
        }

        // Inject the topology stream: each validated event fires at its
        // instant. Events past the end of the run are simply never popped.
        for index in 0..self.topology.len() {
            let at = SimTime::ZERO + Duration::from_secs_f64(self.topology[index].at_secs);
            self.calendar.schedule_at(at, Event::Topology { index });
        }

        // Scans with no local data (or empty relations) can complete right
        // away; run an initial end check over everything already started.
        for op in 0..self.ops.len() {
            for node in 0..self.nodes {
                self.check_local_end(op, node);
            }
        }
        Ok(())
    }

    /// Seeds trigger activations for one lane: the scan's partition on each
    /// home node is split into trigger activations of `trigger_pages` pages,
    /// assigned to disks round-robin and distributed across the node's
    /// thread queues with the redistribution-skew router.
    fn seed_triggers(&mut self, lane_idx: usize) {
        let tuples_per_page = self.config.costs.tuples_per_page();
        let (base, n_ops, skew) = {
            let lane = &self.lanes[lane_idx];
            (lane.base, lane.n_ops, lane.skew)
        };
        let scan_ops: Vec<usize> = (base..base + n_ops)
            .filter(|&i| self.ops[i].kind.is_scan())
            .collect();
        for op_idx in scan_ops {
            let home_len = self.ops[op_idx].home.len();
            let total = self.lanes[lane_idx]
                .plan
                .tree
                .operator(OperatorId::from(op_idx - base))
                .input_tuples;
            let per_node = total / home_len as u64;
            let remainder = total - per_node * home_len as u64;
            for i in 0..home_len {
                let mut node = self.ops[op_idx].home[i];
                // A home node that is down at seeding time cannot hold the
                // partition: its share is re-homed onto a live home node (the
                // replica assumption — data survives node failures on the
                // shared disks and is readable from the survivors).
                if !self.live[node.index()] {
                    node = NodeId::from(self.live_home_redirect(op_idx, i as u64));
                }
                let mut node_tuples = per_node + if i == 0 { remainder } else { 0 };
                // Within the node, spread trigger activations across thread
                // queues with the skew router.
                let mut router =
                    OutputRouter::new(self.threads_per_node, skew, op_idx + node.index());
                let tuples_per_trigger = self.options.flow.trigger_pages * tuples_per_page;
                let mut seeded = 0u64;
                while node_tuples > 0 {
                    let chunk = node_tuples.min(tuples_per_trigger);
                    node_tuples -= chunk;
                    let pages = chunk.div_ceil(tuples_per_page).max(1);
                    let disk_local = self.disk_cursor[node.index()] % self.disks_per_node;
                    self.disk_cursor[node.index()] += 1;
                    let disk = DiskId::new(node, disk_local);
                    let slot = router.route(chunk);
                    let activation =
                        Activation::trigger(OperatorId::from(op_idx - base), pages, chunk, disk)
                            .for_query(lane_idx as u32);
                    let opn = self.op_nodes[op_idx][node.index()]
                        .as_mut()
                        .expect("home node state exists");
                    // Trigger activations bypass flow control (they are the
                    // roots of the dataflow, produced once at start-up).
                    opn.enqueue_or_park(slot, activation);
                    seeded += chunk;
                }
                if seeded > 0 {
                    self.ready[node.index()].insert(op_idx);
                }
                self.ops[op_idx].input_sent += seeded;
                self.ops[op_idx].input_delivered += seeded;
            }
        }
    }

    /// Whether the run is complete. Closed mode: every operator terminated.
    /// Open mode: the arrival stream is exhausted, the waiting room is empty
    /// and every admitted query retired (its `QueryRelease` processed, so
    /// the final latency samples are recorded and the final slot freed).
    fn is_done(&self) -> bool {
        match &self.open {
            Some(open) => {
                open.arrivals_done
                    && open.upcoming.is_none()
                    && open.pending.is_empty()
                    && open.live_now == 0
            }
            None => self.ops_terminated >= self.ops.len(),
        }
    }

    /// Runs the event loop until [`Self::is_done`].
    fn run_loop(&mut self) -> Result<()> {
        while !self.is_done() {
            let Some((_, event)) = self.calendar.pop() else {
                return Err(DlbError::exec(format!(
                    "simulation stalled: {} of {} operators terminated",
                    self.ops_terminated,
                    self.ops.len()
                )));
            };
            if self.calendar.processed() > MAX_EVENTS {
                return Err(DlbError::exec("event budget exhausted"));
            }
            match event {
                Event::ThreadReady { node, thread } => self.on_thread_ready(node, thread),
                Event::Data {
                    node,
                    op,
                    slot,
                    activation,
                } => self.on_data(node, op, slot, activation),
                Event::Control { node, msg } => self.on_control(node, msg),
                Event::QueryStart { lane } => self.on_query_start(lane),
                Event::QueryAdmit { lane } => self.on_query_admit(lane),
                Event::QueryRelease { lane } => self.on_query_release(lane),
                Event::Topology { index } => self.on_topology(index)?,
                Event::OpenArrival => self.on_open_arrival(),
            }
        }
        Ok(())
    }

    /// The machine-wide aggregate report of a finished run.
    fn aggregate_report(&self) -> ExecutionReport {
        let response = self.finished_at.since(SimTime::ZERO);
        let utilization = self.cpu.utilization(response);
        let per_node_busy = (0..self.nodes)
            .map(|n| self.cpu.node_busy(NodeId::from(n)))
            .collect();
        ExecutionReport {
            strategy: self.strategy,
            nodes: self.config.machine.nodes,
            processors_per_node: self.config.machine.processors_per_node,
            response_time: response,
            activations: self.activations_done,
            tuples_processed: self.tuples_processed,
            result_tuples: self.result_tuples,
            total_busy: self.cpu.total_busy(),
            total_idle: self.cpu.total_idle(response),
            utilization,
            per_node_busy,
            messages: self.network.stats().messages,
            network_bytes: self.network.stats().bytes,
            lb_requests: self.lb_requests,
            lb_acquisitions: self.lb_acquisitions,
            lb_bytes: self.lb_bytes,
            events: self.calendar.processed(),
        }
    }

    /// Runs the simulation to completion and produces the report.
    pub(crate) fn run(mut self) -> Result<ExecutionReport> {
        self.run_loop()?;
        Ok(self.aggregate_report())
    }

    /// Runs the simulation to completion and produces the aggregate plus the
    /// per-query breakdown (co-simulated mode).
    pub(crate) fn run_cosim(mut self) -> Result<CoSimReport> {
        self.run_loop()?;
        let aggregate = self.aggregate_report();
        let queries = self
            .lanes
            .iter()
            .enumerate()
            .map(|(i, lane)| {
                let completion_secs = lane.finished_at.as_secs_f64();
                // Non-negative by construction: `start_lane` stamps
                // `admitted_at` at the (post-arrival) admission instant and
                // `SimTime::since` is saturating.
                let wait_secs = lane.admitted_at.since(lane.arrival).as_secs_f64();
                QueryExecReport {
                    query: i,
                    priority: lane.priority,
                    arrival_secs: lane.arrival.as_secs_f64(),
                    admitted_secs: lane.admitted_at.as_secs_f64(),
                    wait_secs,
                    completion_secs,
                    response_secs: lane.finished_at.since(lane.arrival).as_secs_f64(),
                    activations: lane.activations,
                    tuples_processed: lane.tuples_processed,
                    result_tuples: lane.result_tuples,
                }
            })
            .collect();
        Ok(CoSimReport {
            aggregate,
            queries,
            faults: self.faults,
        })
    }

    /// Runs an open-system simulation to completion and produces the
    /// streaming report: aggregate counters plus the latency sketches (no
    /// per-query materialization).
    pub(crate) fn run_open(mut self) -> Result<OpenReport> {
        self.run_loop()?;
        let aggregate = self.aggregate_report();
        let open = self.open.take().expect("open mode");
        // Front-end retirements (cache hits, follower fan-outs) happen off
        // the calendar, so the run can end after the engine's last event.
        let makespan = aggregate
            .response_time
            .as_secs_f64()
            .max(open.front_finish.as_secs_f64());
        let throughput_qps = if makespan > 0.0 {
            open.completed as f64 / makespan
        } else {
            0.0
        };
        let cache = open.cache.stats();
        let frontend = FrontendStats {
            cache_hits: cache.hits,
            cache_stale: cache.stale,
            cache_evictions: cache.evictions,
            cache_misses: cache.misses,
            cache_bypass: open.cache_bypass,
            coalesced: open.flight.coalesced(),
            engine_queries: open.engine_queries,
        };
        Ok(OpenReport {
            aggregate,
            completed: open.completed,
            peak_live: open.peak_live,
            throughput_qps,
            response: open.response,
            wait: open.wait,
            slowdown: open.slowdown,
            response_by_class: open.response_by_class,
            frontend,
            engine_by_template: open.engine_by_template,
            response_engine: open.response_engine,
            response_cache_hit: open.response_cache_hit,
            response_coalesced: open.response_coalesced,
        })
    }

    // ----------------------------------------------------------------- //
    // Thread scheduling
    // ----------------------------------------------------------------- //

    fn thread_may_process(&self, node: usize, thread: usize, op: usize) -> bool {
        match &self.threads[node][thread].allowed {
            None => true,
            Some(set) => set.contains(op),
        }
    }

    fn op_consumable(&self, op: usize, node: usize) -> bool {
        let o = &self.ops[op];
        self.lanes[o.lane].started
            && !o.terminated
            && o.blockers_remaining == 0
            && self.op_nodes[op][node].is_some()
    }

    /// Moves parked activations of (op, node) into queues with free space.
    fn deliver_parked(&mut self, op: usize, node: usize) {
        let Some(opn) = self.op_nodes[op][node].as_mut() else {
            return;
        };
        while let Some(front) = opn.parked.front().copied() {
            let Some(slot) = opn.queues.iter().position(|q| !q.is_full()) else {
                break;
            };
            opn.unpark_front();
            opn.enqueue(slot, front);
        }
    }

    /// Selects the next activation for a thread. Lanes are visited in
    /// priority order (descending, mix index on ties); within a lane the
    /// thread prefers its primary queues (its own queue of every operator)
    /// and falls back to any other queue of the node, paying a small
    /// interference penalty. A higher-priority query's work — even on a
    /// non-primary queue — is taken before any lower-priority query's.
    fn select_work(&mut self, node: usize, thread: usize) -> Option<(usize, Activation, bool)> {
        for li in 0..self.lane_order.len() {
            let lane = self.lane_order[li];
            let hot = self.lane_hot[lane];
            debug_assert!(
                hot.started == self.lanes[lane].started
                    && hot.base as usize == self.lanes[lane].base
                    && hot.n_ops as usize == self.lanes[lane].n_ops,
                "lane_hot snapshot drifted from lane state"
            );
            if !hot.started {
                continue;
            }
            let (base, n_ops) = (hot.base as usize, hot.n_ops as usize);
            if n_ops == 0 {
                continue;
            }
            if n_ops > 64 {
                // Wide plans fall off the single-word fast path.
                if let Some(found) = self.select_work_lane_scan(node, thread, base, n_ops) {
                    return Some(found);
                }
                continue;
            }
            // One word holds the lane's candidate set: operators with work
            // queued on this node, filtered by the strategy's run-time
            // work-selection hook (the default intersects the thread's
            // static allocation, when one exists). The hook works on the
            // extracted words directly — no policy forces a return to
            // pointer-chasing. Everything else is never visited.
            let ready_word = self.ready[node].extract_range(base, n_ops);
            if ready_word == 0 {
                continue;
            }
            let allowed_word = self.threads[node][thread]
                .allowed
                .as_ref()
                .map(|set| set.extract_range(base, n_ops));
            let cand = if self.custom_mask {
                self.strategy.work_mask(ready_word, allowed_word)
            } else {
                // The default hook devirtualized: one AND, no dispatch on
                // the per-lane fast path (`custom_mask` is cached at
                // construction; `custom_work_mask` tests pin the equality).
                ready_word & allowed_word.unwrap_or(u64::MAX)
            };
            if cand == 0 {
                continue;
            }
            // The loops this replaces visited `base + (thread + shift) %
            // n_ops` for ascending `shift`; splitting the word at the start
            // offset and walking each half ascending reproduces that order
            // exactly.
            let rot = thread % n_ops;
            let lo_mask = (1u64 << rot) - 1;
            let parts = [cand & !lo_mask, cand & lo_mask];
            // Pass 1: primary queues (the thread's own queue of every
            // operator of the lane).
            for mut m in parts {
                while m != 0 {
                    let op = base + m.trailing_zeros() as usize;
                    m &= m - 1;
                    if !self.op_consumable(op, node) {
                        continue;
                    }
                    self.deliver_parked(op, node);
                    let opn = self.op_nodes[op][node].as_mut().expect("home state");
                    if let Some(act) = opn.dequeue(thread) {
                        opn.processing += 1;
                        if opn.queued == 0 {
                            self.ready[node].remove(op);
                        }
                        return Some((op, act, true));
                    }
                }
            }
            // Pass 2: any other queue of the node, preferring the first
            // loaded queue after the thread's own (wrap-around order).
            for mut m in parts {
                while m != 0 {
                    let op = base + m.trailing_zeros() as usize;
                    m &= m - 1;
                    if !self.op_consumable(op, node) {
                        continue;
                    }
                    let opn = self.op_nodes[op][node].as_mut().expect("home state");
                    if self.threads_per_node <= 64 {
                        let qm = opn.nonempty_mask() & !(1u64 << thread);
                        if qm == 0 {
                            continue;
                        }
                        let after = if thread + 1 >= 64 {
                            0
                        } else {
                            qm & !((1u64 << (thread + 1)) - 1)
                        };
                        let q = if after != 0 {
                            after.trailing_zeros() as usize
                        } else {
                            qm.trailing_zeros() as usize
                        };
                        let act = opn.dequeue(q).expect("nonempty queue");
                        opn.processing += 1;
                        if opn.queued == 0 {
                            self.ready[node].remove(op);
                        }
                        return Some((op, act, false));
                    }
                    for offset in 1..self.threads_per_node {
                        let q = (thread + offset) % self.threads_per_node;
                        if let Some(act) = opn.dequeue(q) {
                            opn.processing += 1;
                            if opn.queued == 0 {
                                self.ready[node].remove(op);
                            }
                            return Some((op, act, false));
                        }
                    }
                }
            }
        }
        None
    }

    /// Work selection over one lane whose operator range spans more than one
    /// mask word: the original rotated linear scan (cold path, plans of more
    /// than 64 operators).
    fn select_work_lane_scan(
        &mut self,
        node: usize,
        thread: usize,
        base: usize,
        n_ops: usize,
    ) -> Option<(usize, Activation, bool)> {
        // Pass 1: primary queues.
        for shift in 0..n_ops {
            let op = base + (thread + shift) % n_ops;
            // Nothing queued or parked: skip without touching the operator
            // or queue state at all.
            if !self.ready[node].contains(op) {
                debug_assert!(
                    self.op_nodes[op][node]
                        .as_ref()
                        .is_none_or(|o| o.queued == 0),
                    "ready bitset lost a non-empty operator"
                );
                continue;
            }
            if !self.op_consumable(op, node) || !self.thread_may_process(node, thread, op) {
                continue;
            }
            self.deliver_parked(op, node);
            let opn = self.op_nodes[op][node].as_mut().expect("home state");
            if let Some(act) = opn.dequeue(thread) {
                opn.processing += 1;
                if opn.queued == 0 {
                    self.ready[node].remove(op);
                }
                return Some((op, act, true));
            }
        }
        // Pass 2: any other queue of the node.
        for shift in 0..n_ops {
            let op = base + (thread + shift) % n_ops;
            if !self.ready[node].contains(op) {
                continue;
            }
            if !self.op_consumable(op, node) || !self.thread_may_process(node, thread, op) {
                continue;
            }
            let opn = self.op_nodes[op][node].as_mut().expect("home state");
            for offset in 1..self.threads_per_node {
                let q = (thread + offset) % self.threads_per_node;
                if let Some(act) = opn.dequeue(q) {
                    opn.processing += 1;
                    if opn.queued == 0 {
                        self.ready[node].remove(op);
                    }
                    return Some((op, act, false));
                }
            }
        }
        None
    }

    fn on_thread_ready(&mut self, node: usize, thread: usize) {
        // Quantum-end wakeups of a node that failed mid-quantum die here.
        if !self.live[node] {
            self.set_idle(node, thread, true);
            return;
        }
        self.set_idle(node, thread, false);
        match self.select_work(node, thread) {
            Some((op, act, primary)) => self.process_activation(node, thread, op, act, primary),
            None => {
                self.set_idle(node, thread, true);
                self.request_global_work(node, thread);
            }
        }
    }

    /// Records thread idleness in both the boolean flag and the per-node
    /// idle bitmask (the mask is the scan structure, the flag the source of
    /// truth for wide machines).
    fn set_idle(&mut self, node: usize, thread: usize, idle: bool) {
        self.threads[node][thread].idle = idle;
        if thread < 64 {
            let bit = 1u64 << thread;
            if idle {
                self.idle_threads[node] |= bit;
            } else {
                self.idle_threads[node] &= !bit;
            }
        }
    }

    fn wake_threads(&mut self, node: usize, op_filter: Option<usize>) {
        if !self.live[node] {
            return;
        }
        if self.threads_per_node <= 64 {
            // Fast path: walk the idle bitmask (ascending thread order, the
            // same order as the boolean scan).
            let mut mask = self.idle_threads[node];
            debug_assert!(
                (0..self.threads_per_node)
                    .all(|t| self.threads[node][t].idle == ((mask >> t) & 1 == 1)),
                "idle bitmask drifted from thread flags"
            );
            if mask == 0 {
                return;
            }
            let now = self.calendar.now();
            while mask != 0 {
                let thread = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                if let Some(op) = op_filter {
                    if !self.thread_may_process(node, thread, op) {
                        continue;
                    }
                }
                self.set_idle(node, thread, false);
                self.calendar
                    .schedule_at(now, Event::ThreadReady { node, thread });
            }
            return;
        }
        let now = self.calendar.now();
        for thread in 0..self.threads_per_node {
            if !self.threads[node][thread].idle {
                continue;
            }
            if let Some(op) = op_filter {
                if !self.thread_may_process(node, thread, op) {
                    continue;
                }
            }
            self.set_idle(node, thread, false);
            self.calendar
                .schedule_at(now, Event::ThreadReady { node, thread });
        }
    }

    // ----------------------------------------------------------------- //
    // Memory admission (head-of-line FCFS, matching `mix::schedule_mix`)
    // ----------------------------------------------------------------- //

    /// The *live* node indices of one lane's placement (its mask, or the
    /// whole machine). With no topology events every node is live, so this is
    /// exactly the static placement.
    fn admission_nodes(&self, lane: usize) -> Vec<usize> {
        match &self.lanes[lane].mask {
            Some(mask) => mask
                .iter()
                .map(|n| n.index())
                .filter(|&n| self.live[n])
                .collect(),
            None => (0..self.nodes).filter(|&n| self.live[n]).collect(),
        }
    }

    /// If the head-of-line waiting lane fits on every live node of its
    /// placement, pops it and reserves its memory, returning the lane.
    /// Admission is strictly FCFS: a later lane never jumps a blocked head.
    fn try_reserve_head(&mut self) -> Option<usize> {
        let &lane = self.admission_queue.front()?;
        let mem = self.lanes[lane].mem_per_node;
        let nodes = self.admission_nodes(lane);
        if !nodes.iter().all(|&n| self.free_mem[n] >= mem) {
            return None;
        }
        for &n in &nodes {
            self.free_mem[n] -= mem;
        }
        self.lanes[lane].reserved = nodes.into_iter().map(|n| (n, mem)).collect();
        self.admission_queue.pop_front();
        Some(lane)
    }

    /// Marks an admitted lane started and seeds its triggers. Memory was
    /// already reserved by [`Self::try_reserve_head`].
    fn start_lane(&mut self, lane: usize) {
        self.lanes[lane].started = true;
        self.lanes[lane].admitted_at = self.calendar.now();
        self.sync_lane_hot(lane);
        self.seed_triggers(lane);
    }

    /// Re-snapshots one lane's hot scheduling fields after a
    /// `started`/`n_ops` mutation (see [`LaneHot`]).
    fn sync_lane_hot(&mut self, lane: usize) {
        self.lane_hot[lane] = LaneHot {
            base: self.lanes[lane].base as u32,
            n_ops: self.lanes[lane].n_ops as u32,
            started: self.lanes[lane].started,
        };
    }

    /// Post-admission bookkeeping of a lane admitted mid-run: trivially-done
    /// operators report, and every node wakes (the new work may sit
    /// anywhere, and steal decisions must see it).
    fn activate_lane(&mut self, lane: usize) {
        let (base, n_ops) = (self.lanes[lane].base, self.lanes[lane].n_ops);
        for op in base..base + n_ops {
            for node in 0..self.nodes {
                self.check_local_end(op, node);
            }
        }
        for node in 0..self.nodes {
            self.wake_threads(node, None);
        }
    }

    /// A co-simulated query arrives: it joins the admission queue and — when
    /// its placement has the memory and no earlier query is blocked ahead of
    /// it — is admitted on the spot: memory reserved, triggers seeded,
    /// machine woken.
    fn on_query_start(&mut self, lane: usize) {
        self.admission_queue.push_back(lane);
        while let Some(admitted) = self.try_reserve_head() {
            self.start_lane(admitted);
            self.activate_lane(admitted);
        }
    }

    /// A waiting query's reservation succeeded after a release: start it.
    fn on_query_admit(&mut self, lane: usize) {
        self.start_lane(lane);
        self.activate_lane(lane);
    }

    /// A query completed: free its working set on its placement nodes, then
    /// admit every waiting lane that now fits (each admission is its own
    /// `QueryAdmit` event at the current instant; memory is reserved at
    /// scheduling time so the chain of fits stays consistent).
    fn on_query_release(&mut self, lane: usize) {
        // A restarted operator can re-terminate a lane that already released
        // (lose-and-restart rebuilds after the lane's first completion).
        if std::mem::replace(&mut self.lanes[lane].released, true) {
            return;
        }
        let cap = self.config.machine.memory_per_node_bytes;
        for (n, amt) in std::mem::take(&mut self.lanes[lane].reserved) {
            // Reservations moved onto a survivor may have overcommitted it
            // (saturating reserve); cap the give-back at the capacity.
            self.free_mem[n] = (self.free_mem[n] + amt).min(cap);
        }
        if self.open.is_some() {
            // Open mode: retirement — record latency samples, drop the
            // lane's operator state, recycle the slot, admit from the
            // waiting room.
            self.retire_open_lane(lane);
            self.try_admit_open();
            return;
        }
        let now = self.calendar.now();
        while let Some(admitted) = self.try_reserve_head() {
            self.calendar
                .schedule_at(now, Event::QueryAdmit { lane: admitted });
        }
    }

    // ----------------------------------------------------------------- //
    // Open-system mode (stochastic arrivals, bounded live state)
    // ----------------------------------------------------------------- //

    /// The next query of the arrival stream arrives: the front end tries the
    /// result cache, then single-flight coalescing; only a miss that leads
    /// enters the waiting room. The following arrival is drawn and scheduled
    /// (lazy, one ahead), and admission runs. With the front end disabled the
    /// path is exactly the historical one.
    fn on_open_arrival(&mut self) {
        let now = self.calendar.now();
        let next_offset = {
            let open = self.open.as_mut().expect("open mode");
            let arrival = open.upcoming.take().expect("an arrival was scheduled");
            let mut enqueue = true;
            if open.frontend.enabled() {
                if open.frontend.cache_capacity > 0 {
                    if let Lookup::Hit(()) = open.cache.lookup(&arrival.template, now.as_secs_f64())
                    {
                        // Served from cache: retire synchronously at
                        // now + fan-out, never touching a lane or the
                        // calendar. Wait is zero — it never queued.
                        let response = open.frontend.fanout_cost_secs;
                        let solo = open.templates[arrival.template].solo_secs;
                        let slowdown = if solo > 0.0 { response / solo } else { 1.0 };
                        open.response.record(response);
                        open.wait.record(0.0);
                        open.slowdown.record(slowdown);
                        let class =
                            (arrival.priority as usize - 1).min(open.response_by_class.len() - 1);
                        open.response_by_class[class].record(response);
                        open.response_cache_hit.record(response);
                        open.completed += 1;
                        let retire_at = now + Duration::from_secs_f64(response);
                        open.front_finish = open.front_finish.max(retire_at);
                        enqueue = false;
                    }
                } else {
                    open.cache_bypass += 1;
                }
                if enqueue && open.frontend.coalesce && !open.flight.lead(arrival.template) {
                    // An identical query is in flight: subscribe to its
                    // leader instead of executing again.
                    open.flight.attach(
                        &arrival.template,
                        OpenFollower {
                            arrived_at: now,
                            priority: arrival.priority,
                        },
                    );
                    enqueue = false;
                }
            }
            if enqueue {
                open.pending.push_back(OpenPending {
                    arrived_at: now,
                    template: arrival.template,
                    priority: arrival.priority,
                });
            }
            match open.stream.next() {
                Some(next) => {
                    open.upcoming = Some(next);
                    Some(next.offset_secs)
                }
                None => {
                    open.arrivals_done = true;
                    None
                }
            }
        };
        if let Some(offset) = next_offset {
            self.calendar.schedule_at(
                SimTime::ZERO + Duration::from_secs_f64(offset),
                Event::OpenArrival,
            );
        }
        self.try_admit_open();
    }

    /// Admits waiting queries while a lane slot is free and the head of the
    /// waiting room fits in every node's free memory. Strict head-of-line
    /// FCFS, like closed-mode admission: a blocked head is never jumped.
    fn try_admit_open(&mut self) {
        loop {
            let (slot, head) = {
                let open = self.open.as_mut().expect("open mode");
                if open.free_slots.is_empty() {
                    return;
                }
                let Some(front) = open.pending.front() else {
                    return;
                };
                let mem_per_node = open.templates[front.template]
                    .memory_bytes
                    .div_ceil(self.nodes as u64);
                if !(0..self.nodes).all(|n| self.free_mem[n] >= mem_per_node) {
                    return;
                }
                let head = open.pending.pop_front().expect("checked non-empty");
                let slot = open.free_slots.pop().expect("checked non-empty");
                open.admission_seq += 1;
                open.lane_seq[slot] = open.admission_seq;
                open.lane_template[slot] = head.template;
                open.live_now += 1;
                open.peak_live = open.peak_live.max(open.live_now);
                (slot, head)
            };
            self.admit_open_lane(slot, head);
        }
    }

    /// Populates a free lane slot with one admitted query: lane descriptors,
    /// fresh operator runtimes over the slot's op range, memory reservation,
    /// FP thread allocation, scheduling order, triggers.
    fn admit_open_lane(&mut self, slot: usize, head: OpenPending) {
        let now = self.calendar.now();
        let (plan, memory_bytes) = {
            let open = self.open.as_ref().expect("open mode");
            let t = &open.templates[head.template];
            (t.plan, t.memory_bytes)
        };
        let mem_per_node = memory_bytes.div_ceil(self.nodes as u64);
        for n in 0..self.nodes {
            self.free_mem[n] -= mem_per_node;
        }
        let n_ops = plan.tree.operators().len();
        let base = self.lanes[slot].base;
        let skew = self.lanes[slot].skew;
        {
            let lane = &mut self.lanes[slot];
            lane.plan = plan;
            lane.arrival = head.arrived_at;
            lane.priority = head.priority;
            lane.memory_bytes = memory_bytes;
            lane.mem_per_node = mem_per_node;
            lane.reserved = (0..self.nodes).map(|n| (n, mem_per_node)).collect();
            lane.released = false;
            lane.n_ops = n_ops;
            lane.started = true;
            lane.admitted_at = now;
            lane.ops_terminated = 0;
            lane.finished_at = SimTime::ZERO;
            lane.activations = 0;
            lane.tuples_processed = 0;
            lane.result_tuples = 0;
        }
        self.sync_lane_hot(slot);
        // Rebuild the slot's operator runtimes (mirrors `initialize`, but in
        // place over the slot's fixed op range).
        let joins = plan.tree.joins();
        for op in plan.tree.operators() {
            let idx = base + op.id.index();
            let home: Vec<NodeId> = plan
                .homes
                .home(op.id)
                .nodes()
                .iter()
                .copied()
                .filter(|n| n.index() < self.nodes)
                .collect();
            let mut blockers: Vec<OperatorId> = plan.blocked_by(op.id);
            blockers.sort_unstable();
            blockers.dedup();
            let output_ratio = if op.input_tuples == 0 {
                0.0
            } else {
                op.output_tuples as f64 / op.input_tuples as f64
            };
            let build_twin = match op.kind {
                OperatorKind::Probe { join } => joins.get(&join).map(|(b, _)| base + b.index()),
                _ => None,
            };
            let slots = home.len() * self.threads_per_node;
            let mut per_node: Vec<Option<OpNodeRuntime>> = (0..self.nodes).map(|_| None).collect();
            for node in &home {
                per_node[node.index()] = Some(OpNodeRuntime::new(
                    self.threads_per_node,
                    self.options.flow.queue_capacity,
                ));
            }
            self.ops[idx] = OpRuntime {
                lane: slot,
                kind: op.kind,
                consumer: op.consumer.map(|c| base + c.index()),
                home,
                output_ratio,
                blockers_remaining: blockers.len(),
                terminated: false,
                router: OutputRouter::new(slots, skew, idx),
                input_sent: 0,
                input_delivered: 0,
                input_processed: 0,
                phase1_reports: 0,
                phase2_started: false,
                phase2_confirms: 0,
                build_twin,
            };
            self.op_nodes[idx] = per_node;
            // The slot's ops were counted terminated (placeholder or
            // retired); they are live again.
            self.ops_terminated -= 1;
            self.live_ops.insert(idx);
        }
        // FP: one fresh allocation per admission (the optimizer
        // mis-estimates each arriving query once), inserted into every
        // node's thread sets; retirement removes it again.
        if self.strategy.constrains_threads() {
            let mut fp_rng = std::mem::replace(
                &mut self.open.as_mut().expect("open mode").fp_rng,
                rng_from_seed(0),
            );
            let assignment = self
                .strategy
                .allocate(plan, self.threads_per_node as u32, &self.cost, &mut fp_rng)
                .unwrap_or_default();
            self.open.as_mut().expect("open mode").fp_rng = fp_rng;
            for node in 0..self.nodes {
                for (t, ops) in assignment.iter().enumerate() {
                    let set = self.threads[node][t]
                        .allowed
                        .as_mut()
                        .expect("FP threads carry allowed sets");
                    for o in ops {
                        set.insert(base + o.index());
                    }
                }
            }
        }
        // Re-derive the scheduling order: priority descending, admission
        // sequence ascending on ties (free slots sort by their last
        // occupant's keys — harmless, they are skipped as not started).
        let mut order = std::mem::take(&mut self.lane_order);
        {
            let open = self.open.as_ref().expect("open mode");
            order.sort_by(|&a, &b| {
                self.lanes[b]
                    .priority
                    .cmp(&self.lanes[a].priority)
                    .then(open.lane_seq[a].cmp(&open.lane_seq[b]))
            });
        }
        self.lane_order = order;
        self.seed_triggers(slot);
        self.activate_lane(slot);
    }

    /// Retires a completed open-mode lane: records its latency samples into
    /// the streaming sketches, then *drops* its operator state — op-node
    /// queues become `None`, op runtimes revert to placeholders, FP allowed
    /// ids are withdrawn — and frees the slot. This is what bounds live
    /// state by the concurrency level instead of the total query count.
    fn retire_open_lane(&mut self, lane_idx: usize) {
        let (base, n_ops, priority, finished, response_secs, wait_secs) = {
            let lane = &self.lanes[lane_idx];
            (
                lane.base,
                lane.n_ops,
                lane.priority,
                lane.finished_at,
                lane.finished_at.since(lane.arrival).as_secs_f64(),
                lane.admitted_at.since(lane.arrival).as_secs_f64(),
            )
        };
        for idx in base..base + n_ops {
            // Invalidate steal episodes still referencing the retired op.
            self.epochs[idx] += 1;
            self.ops[idx] = Self::placeholder_op(lane_idx);
            self.op_nodes[idx] = (0..self.nodes).map(|_| None).collect();
            for node in 0..self.nodes {
                self.ready[node].remove(idx);
            }
        }
        if self.strategy.constrains_threads() {
            for node in 0..self.nodes {
                for t in 0..self.threads_per_node {
                    if let Some(set) = &mut self.threads[node][t].allowed {
                        for idx in base..base + n_ops {
                            set.remove(idx);
                        }
                    }
                }
            }
        }
        self.lanes[lane_idx].started = false;
        self.sync_lane_hot(lane_idx);
        let open = self.open.as_mut().expect("open mode");
        let solo = open.templates[open.lane_template[lane_idx]].solo_secs;
        let slowdown = if solo > 0.0 {
            response_secs / solo
        } else {
            1.0
        };
        open.response.record(response_secs);
        open.wait.record(wait_secs);
        open.slowdown.record(slowdown);
        let class = (priority as usize - 1).min(open.response_by_class.len() - 1);
        open.response_by_class[class].record(response_secs);
        open.completed += 1;
        open.live_now -= 1;
        open.free_slots.push(lane_idx);
        // Front-end bookkeeping: this lane was an engine execution (counted
        // unconditionally so `completed == engine + hits + coalesced` holds
        // with the front end off too), its result becomes cacheable now, and
        // its followers retire with it.
        let template = open.lane_template[lane_idx];
        open.engine_queries += 1;
        open.engine_by_template[template] += 1;
        open.response_engine.record(response_secs);
        if open.frontend.cache_capacity > 0 {
            open.cache.insert(template, (), finished.as_secs_f64());
        }
        if open.frontend.coalesce {
            let followers = open.flight.complete(&template);
            if !followers.is_empty() {
                let retire_at = finished + Duration::from_secs_f64(open.frontend.fanout_cost_secs);
                let solo = open.templates[template].solo_secs;
                for f in followers {
                    let response = retire_at.since(f.arrived_at).as_secs_f64();
                    let wait = finished.since(f.arrived_at).as_secs_f64();
                    let slowdown = if solo > 0.0 { response / solo } else { 1.0 };
                    open.response.record(response);
                    open.wait.record(wait);
                    open.slowdown.record(slowdown);
                    let class = (f.priority as usize - 1).min(open.response_by_class.len() - 1);
                    open.response_by_class[class].record(response);
                    open.response_coalesced.record(response);
                    open.completed += 1;
                }
                open.front_finish = open.front_finish.max(retire_at);
            }
        }
    }

    // ----------------------------------------------------------------- //
    // Activation processing
    // ----------------------------------------------------------------- //

    fn contention(&self, _node: usize) -> f64 {
        self.options
            .contention_factor(self.config.machine.processors_per_node)
    }

    fn process_activation(
        &mut self,
        node: usize,
        thread: usize,
        op_idx: usize,
        act: Activation,
        primary: bool,
    ) {
        let now = self.calendar.now();
        let costs = self.config.costs;
        let mut instructions =
            costs.queue_access_instr + if primary { 0 } else { costs.interference_instr };
        let mut io_complete = now;
        let kind = self.ops[op_idx].kind;

        match act.kind {
            ActivationKind::Trigger { pages, disk } => {
                let io_requests = pages
                    .div_ceil(self.config.disk.io_cache_pages as u64)
                    .max(1);
                instructions += act.tuples * costs.scan_tuple_instr
                    + io_requests * self.config.disk.async_io_init_instr;
                // The first read of a partition fragment positions the disk
                // (latency + seek); later trigger activations of the same
                // scan stream sequentially.
                let first = self.op_nodes[op_idx][node]
                    .as_mut()
                    .map(|o| o.started_disks.insert(disk.local))
                    .unwrap_or(true);
                let outcome = if first {
                    self.disks.read(disk, now, pages)
                } else {
                    self.disks.read_streaming(disk, now, pages)
                };
                io_complete = outcome.complete;
            }
            ActivationKind::Data => {
                if kind.is_build() {
                    instructions += act.tuples * costs.build_tuple_instr;
                } else {
                    // Probe.
                    let out = (act.tuples as f64 * self.ops[op_idx].output_ratio).round() as u64;
                    instructions +=
                        act.tuples * costs.probe_tuple_instr + out * costs.result_tuple_instr;
                }
            }
        }

        let cpu_time = self.config.cpu.instructions(instructions) * self.contention(node);
        let mut quantum_end = (now + cpu_time).max(io_complete);

        // Record hash-table growth for builds.
        if kind.is_build() {
            if let Some(opn) = self.op_nodes[op_idx][node].as_mut() {
                opn.hash_tuples += act.tuples;
            }
        }

        // Produce and route output.
        let out_tuples = match kind {
            OperatorKind::Scan { .. } => {
                (act.tuples as f64 * self.ops[op_idx].output_ratio).round() as u64
            }
            OperatorKind::Probe { .. } => {
                (act.tuples as f64 * self.ops[op_idx].output_ratio).round() as u64
            }
            OperatorKind::Build { .. } => 0,
        };
        if out_tuples > 0 {
            quantum_end = self.emit_output(node, op_idx, out_tuples, quantum_end);
        }

        // Bookkeeping.
        {
            let opn = self.op_nodes[op_idx][node].as_mut().expect("home state");
            opn.processing -= 1;
        }
        self.ops[op_idx].input_processed += act.tuples;
        self.activations_done += 1;
        self.tuples_processed += act.tuples;
        {
            // Per-query accounting keys off the activation's own query tag
            // (which steals and transfers preserve); the operator's lane
            // must always agree with it.
            debug_assert_eq!(
                act.query as usize, self.ops[op_idx].lane,
                "activation tagged for a different query than its operator"
            );
            let lane = &mut self.lanes[act.query as usize];
            lane.activations += 1;
            lane.tuples_processed += act.tuples;
        }

        let busy = quantum_end.since(now);
        self.cpu.record_busy(
            ProcessorId::new(NodeId::from(node), thread as u32),
            busy,
            quantum_end,
        );

        // End detection must be re-evaluated on every home node: a node that
        // drained earlier (while batches were still in flight elsewhere) only
        // becomes reportable once the operator's global counters settle.
        // Iterating by index keeps this allocation-free; `home` never changes
        // after initialization.
        for h in 0..self.ops[op_idx].home.len() {
            let home_node = self.ops[op_idx].home[h].index();
            self.check_local_end(op_idx, home_node);
        }
        self.maybe_terminate(op_idx);

        self.calendar
            .schedule_at(quantum_end, Event::ThreadReady { node, thread });
    }

    /// Routes `out_tuples` produced by `op_idx` on `node` to the consumer's
    /// queues, batching into data activations. Returns the updated quantum end
    /// (network send CPU is charged to the producing thread).
    fn emit_output(
        &mut self,
        node: usize,
        op_idx: usize,
        out_tuples: u64,
        start: SimTime,
    ) -> SimTime {
        let Some(consumer_idx) = self.ops[op_idx].consumer else {
            self.result_tuples += out_tuples;
            self.lanes[self.ops[op_idx].lane].result_tuples += out_tuples;
            return start;
        };
        let lane_idx = self.ops[consumer_idx].lane;
        let consumer_local = OperatorId::from(consumer_idx - self.lanes[lane_idx].base);
        let batch_size = self.config.costs.tuples_per_batch.max(1);
        let mut remaining = out_tuples;
        let mut cursor = start;
        while remaining > 0 {
            let batch = remaining.min(batch_size);
            remaining -= batch;
            let slot = self.ops[consumer_idx].router.route(batch);
            let mut dest_node = self.ops[consumer_idx].home[slot / self.threads_per_node].index();
            if !self.live[dest_node] {
                dest_node = self.live_home_redirect(consumer_idx, slot as u64);
            }
            let dest_thread = slot % self.threads_per_node;
            let activation = Activation::data(consumer_local, batch).for_query(lane_idx as u32);
            self.ops[consumer_idx].input_sent += batch;
            if dest_node == node {
                // Same SM-node: the move goes through shared memory; the
                // activation becomes visible when the producer finishes.
                self.calendar.schedule_at(
                    cursor,
                    Event::Data {
                        node: dest_node,
                        op: consumer_idx,
                        slot: dest_thread,
                        activation,
                    },
                );
            } else {
                let bytes = self.config.costs.bytes_for_tuples(batch);
                let timing =
                    self.network
                        .send(NodeId::from(node), NodeId::from(dest_node), bytes, cursor);
                cursor = timing.sent;
                self.calendar.schedule_at(
                    timing.arrival + timing.recv_cpu,
                    Event::Data {
                        node: dest_node,
                        op: consumer_idx,
                        slot: dest_thread,
                        activation,
                    },
                );
            }
        }
        cursor
    }

    fn on_data(&mut self, node: usize, op: usize, slot: usize, activation: Activation) {
        // A batch in flight towards a node that failed after the send is
        // re-routed to a live home node by the recovery manager.
        let node = if self.live[node] {
            node
        } else {
            self.live_home_redirect(op, slot as u64)
        };
        self.ops[op].input_delivered += activation.tuples;
        {
            let opn = self.op_nodes[op][node]
                .as_mut()
                .expect("data routed to a home node");
            opn.enqueue_or_park(slot, activation);
            self.ready[node].insert(op);
        }
        if self.op_consumable(op, node) {
            self.wake_threads(node, Some(op));
        }
        // The delivery may have been the last in-flight batch of the
        // operator: other home nodes that drained earlier can now report
        // their local end.
        for h in 0..self.ops[op].home.len() {
            let home_node = self.ops[op].home[h].index();
            if home_node != node {
                self.check_local_end(op, home_node);
            }
        }
        // Guarded at the call site: pull-only policies (`push` is `None`)
        // pay one predictable branch per delivery, not a call.
        if self.push.is_some() {
            self.maybe_push_work(node);
        }
    }

    // ----------------------------------------------------------------- //
    // Control messages (scheduler)
    // ----------------------------------------------------------------- //

    fn send_control(&mut self, from: usize, to: usize, bytes: u64, msg: ControlMsg) {
        let now = self.calendar.now();
        let timing = self
            .network
            .send(NodeId::from(from), NodeId::from(to), bytes, now);
        self.calendar.schedule_at(
            timing.arrival + timing.recv_cpu,
            Event::Control { node: to, msg },
        );
    }

    /// The end-detection coordinator: the lowest-indexed live node. The
    /// protocol counters live centrally in [`OpRuntime`], so the coordinator
    /// role survives a fail-over without state hand-off.
    fn coordinator(&self) -> usize {
        self.live.iter().position(|&l| l).unwrap_or(0)
    }

    /// Redirects work addressed to a down node onto a live home node of
    /// `op`, deterministically keyed by `key` under the configured re-home
    /// policy. Callers guarantee at least one live home node (enforced by
    /// the wholesale lane re-home on failure).
    fn live_home_redirect(&self, op: usize, key: u64) -> usize {
        let mut seen = BTreeSet::new();
        let survivors: Vec<NodeId> = self.ops[op]
            .home
            .iter()
            .copied()
            .filter(|n| self.live[n.index()] && seen.insert(n.index()))
            .collect();
        let total = (self.ops[op].home.len() * self.threads_per_node) as u64;
        self.options
            .recovery
            .rehome
            .survivor(key, total, &survivors)
            .index()
    }

    fn on_control(&mut self, node: usize, msg: ControlMsg) {
        match msg {
            ControlMsg::LocalEnd { op } => {
                self.ops[op].phase1_reports += 1;
                if self.ops[op].phase1_reports == self.ops[op].home.len()
                    && !self.ops[op].phase2_started
                {
                    self.ops[op].phase2_started = true;
                    for h in 0..self.ops[op].home.len() {
                        let home_node = self.ops[op].home[h].index();
                        self.send_control(
                            node,
                            home_node,
                            CONTROL_MESSAGE_BYTES,
                            ControlMsg::ConfirmRequest { op },
                        );
                    }
                }
            }
            ControlMsg::ConfirmRequest { op } => {
                let drained = self.op_nodes[op][node]
                    .as_ref()
                    .map(|o| o.is_drained())
                    .unwrap_or(true);
                if drained {
                    let already = self.op_nodes[op][node]
                        .as_mut()
                        .map(|o| std::mem::replace(&mut o.confirm_sent, true))
                        .unwrap_or(false);
                    if !already {
                        self.send_control(
                            node,
                            self.coordinator(),
                            CONTROL_MESSAGE_BYTES,
                            ControlMsg::Confirm { op },
                        );
                    }
                } else if let Some(opn) = self.op_nodes[op][node].as_mut() {
                    opn.confirm_pending = true;
                }
            }
            ControlMsg::Confirm { op } => {
                self.ops[op].phase2_confirms += 1;
                self.maybe_terminate(op);
            }
            ControlMsg::Terminated { .. } => {
                // Accounting-only broadcast: state was already updated when
                // the coordinator made the decision.
            }
            ControlMsg::Starving {
                from,
                free_bytes,
                target,
                epoch,
                token,
            } => self.on_starving(node, from, free_bytes, target, epoch, token),
            ControlMsg::Offer {
                from,
                op,
                tuples,
                bytes,
                load,
                epoch,
                token,
            } => self.on_offer(node, token, Some((from, op, tuples, bytes, load, epoch))),
            ControlMsg::NoOffer { from, token } => {
                let _ = from;
                self.on_offer(node, token, None)
            }
            ControlMsg::Acquire {
                from,
                op,
                has_table,
                epoch,
            } => self.on_acquire(node, from, op, has_table, epoch),
            ControlMsg::Transfer {
                from,
                op,
                activations,
                bytes,
            } => self.on_transfer(node, from, op, activations, bytes),
            ControlMsg::PushProbe { from, token } => self.on_push_probe(node, from, token),
            ControlMsg::PushReply {
                from,
                accept,
                free_bytes,
                token,
            } => self.on_push_reply(node, from, accept, free_bytes, token),
        }
    }

    // ----------------------------------------------------------------- //
    // End-of-operator detection (§4)
    // ----------------------------------------------------------------- //

    fn producers_terminated(&self, op: usize) -> bool {
        if self.ops[op].kind.is_scan() {
            return true;
        }
        let lane = &self.lanes[self.ops[op].lane];
        lane.plan
            .tree
            .pipelined_producers(OperatorId::from(op - lane.base))
            .iter()
            .all(|p| self.ops[lane.base + p.index()].terminated)
    }

    fn check_local_end(&mut self, op: usize, node: usize) {
        if self.ops[op].terminated || !self.lanes[self.ops[op].lane].started {
            return;
        }
        let Some(opn) = self.op_nodes[op][node].as_ref() else {
            return;
        };
        let drained = opn.is_drained();
        let phase1_sent = opn.phase1_sent;
        let confirm_pending = opn.confirm_pending;
        let confirm_sent = opn.confirm_sent;

        if !phase1_sent
            && drained
            && self.ops[op].input_sent == self.ops[op].input_delivered
            && self.producers_terminated(op)
        {
            self.op_nodes[op][node].as_mut().unwrap().phase1_sent = true;
            self.send_control(
                node,
                self.coordinator(),
                CONTROL_MESSAGE_BYTES,
                ControlMsg::LocalEnd { op },
            );
        }

        if confirm_pending && !confirm_sent && drained {
            let opn = self.op_nodes[op][node].as_mut().unwrap();
            opn.confirm_pending = false;
            opn.confirm_sent = true;
            self.send_control(
                node,
                self.coordinator(),
                CONTROL_MESSAGE_BYTES,
                ControlMsg::Confirm { op },
            );
        }
    }

    fn maybe_terminate(&mut self, op: usize) {
        if self.ops[op].terminated {
            return;
        }
        let home_len = self.ops[op].home.len();
        if self.ops[op].phase1_reports < home_len || self.ops[op].phase2_confirms < home_len {
            return;
        }
        // Global safety conditions against races with work acquisition.
        if self.ops[op].input_processed < self.ops[op].input_sent {
            return;
        }
        let any_left = self.ops[op]
            .home
            .iter()
            .any(|n| !self.op_nodes[op][n.index()].as_ref().unwrap().is_drained());
        if any_left {
            return;
        }

        // Terminate.
        self.ops[op].terminated = true;
        self.ops_terminated += 1;
        self.live_ops.remove(op);
        let now = self.calendar.now();
        self.finished_at = self.finished_at.max(now);
        {
            let lane_idx = self.ops[op].lane;
            let lane = &mut self.lanes[lane_idx];
            lane.ops_terminated += 1;
            lane.finished_at = lane.finished_at.max(now);
            // The lane's last operator terminated: release its working set
            // (and re-run admission) at this instant. The release of the
            // final lane may be left unprocessed — the loop exits once every
            // operator terminated.
            if lane.ops_terminated == lane.n_ops {
                self.calendar
                    .schedule_at(now, Event::QueryRelease { lane: lane_idx });
            }
        }

        // Accounting broadcast (the 4th message round of the protocol).
        for h in 0..self.ops[op].home.len() {
            let home_node = self.ops[op].home[h].index();
            self.send_control(
                self.coordinator(),
                home_node,
                CONTROL_MESSAGE_BYTES,
                ControlMsg::Terminated { op },
            );
        }

        // Unblock dependent operators of the same query and wake their nodes.
        let lane_base = self.lanes[self.ops[op].lane].base;
        let local = OperatorId::from(op - lane_base);
        for blocked in self.lanes[self.ops[op].lane].plan.blocks(local) {
            let b = lane_base + blocked.index();
            self.ops[b].blockers_remaining = self.ops[b].blockers_remaining.saturating_sub(1);
            if self.ops[b].blockers_remaining == 0 {
                for h in 0..self.ops[b].home.len() {
                    let home_node = self.ops[b].home[h].index();
                    self.wake_threads(home_node, Some(b));
                }
            }
        }

        // Some operators may now be able to report their own end (e.g. a
        // consumer that received no input, or one waiting for this producer).
        // The live set is snapshotted first because the recursive calls
        // shrink it; ops terminated mid-sweep are skipped at visit time,
        // exactly as the full-range scan did.
        let sweep: Vec<usize> = self.live_ops.iter().collect();
        for other in sweep {
            if self.ops[other].terminated {
                continue;
            }
            for h in 0..self.ops[other].home.len() {
                let node = self.ops[other].home[h].index();
                self.check_local_end(other, node);
            }
            self.maybe_terminate(other);
        }
    }

    // ----------------------------------------------------------------- //
    // Global load balancing (§3.2)
    // ----------------------------------------------------------------- //

    fn request_global_work(&mut self, node: usize, thread: usize) {
        if self.nodes <= 1 || self.ops_terminated == self.ops.len() {
            return;
        }
        match self.scope {
            StealScope::Node => {
                if self.node_lb[node].starving_outstanding {
                    return;
                }
                // Neighbourhood-limited policies (Diffusion) may leave a node
                // with no eligible provider at all; don't arm an episode that
                // can never complete.
                if !self.has_steal_providers(node) {
                    return;
                }
                self.node_lb[node].starving_outstanding = true;
                self.begin_steal_request(node, None);
            }
            StealScope::TargetedOps => {
                // A request may already be outstanding for this node.
                if self.node_lb[node].replies_received < self.node_lb[node].replies_expected {
                    return;
                }
                if !self.has_steal_providers(node) {
                    return;
                }
                // Find-then-act: the scan only reads, so it can walk the
                // thread's allowed set in place (no per-episode collection).
                let chosen = self.threads[node][thread].allowed.as_ref().and_then(|set| {
                    set.iter().find(|&op| {
                        self.ops[op].kind.is_probe()
                            && self.lanes[self.ops[op].lane].started
                            && !self.ops[op].terminated
                            && self.ops[op].blockers_remaining == 0
                            && !self.node_lb[node].fp_outstanding.contains(&op)
                    })
                });
                if let Some(op) = chosen {
                    self.node_lb[node].fp_outstanding.insert(op);
                    // One outstanding request per starving episode.
                    self.begin_steal_request(node, Some(op));
                }
            }
            StealScope::None => {}
        }
    }

    /// Whether any node may answer a steal request from `node` under the
    /// strategy's provider rule.
    fn has_steal_providers(&self, node: usize) -> bool {
        (0..self.nodes).any(|other| self.strategy.steal_provider(node, other, self.nodes))
    }

    /// Broadcasts a starving message to every eligible provider node and arms
    /// the reply-collection state for one steal episode. Which nodes are
    /// eligible is the strategy's call ([`Policy::steal_provider`]): every
    /// other node for DP/FP, ring neighbours for Diffusion.
    fn begin_steal_request(&mut self, node: usize, target: Option<usize>) {
        self.node_lb[node].current_token += 1;
        let token = self.node_lb[node].current_token;
        self.node_lb[node].offers.clear();
        self.node_lb[node].replies_received = 0;
        self.node_lb[node].replies_expected = (0..self.nodes)
            .filter(|&other| self.strategy.steal_provider(node, other, self.nodes))
            .count();
        self.lb_requests += 1;
        // Advertise the node's memory net of admission reservations: an
        // acquired shipment (activations + hash-table partition) must fit in
        // what the admitted working sets left free, so steal decisions
        // respect the same per-node limit the in-loop admission enforces.
        // Single-plan runs reserve nothing, so this is the full capacity
        // there.
        let free = self.free_mem[node];
        // Pin the target's recycle epoch (FP only; DP requests carry no
        // target). A provider seeing a different epoch knows the slot was
        // recycled and must not offer the new occupant's work for it.
        let epoch = target.map(|op| self.epochs[op]).unwrap_or(0);
        for other in 0..self.nodes {
            if self.strategy.steal_provider(node, other, self.nodes) {
                self.send_control(
                    node,
                    other,
                    CONTROL_MESSAGE_BYTES,
                    ControlMsg::Starving {
                        from: node,
                        free_bytes: free,
                        target,
                        epoch,
                        token,
                    },
                );
            }
        }
    }

    /// Total queued-tuple load of a node across live operators: the
    /// aggregate a §3.2 provider advertises in its offers, and the quantity
    /// the Threshold watermarks compare against.
    fn node_load(&self, node: usize) -> u64 {
        self.live_ops
            .iter()
            .filter_map(|op| self.op_nodes[op][node].as_ref())
            .map(|opn| opn.queued_tuples())
            .sum()
    }

    /// Evaluates one operator as a steal candidate for `requester`
    /// (conditions (i)–(vi) of §3.2): only unblocked, non-terminated probe
    /// work whose home includes the requester moves, it must clear the
    /// minimum-tuples bar, and the shipment (tuples + hash-table partition)
    /// must fit the requester's free memory. Returns
    /// `(op, tuples, bytes, tuples-per-byte ratio)`.
    fn steal_candidate(
        &self,
        op: usize,
        node: usize,
        requester: usize,
        free_bytes: u64,
    ) -> Option<(usize, u64, u64, f64)> {
        if !self.ops[op].kind.is_probe()
            || !self.lanes[self.ops[op].lane].started
            || self.ops[op].terminated
            || self.ops[op].blockers_remaining > 0
            || !self.ops[op].home.contains(&NodeId::from(requester))
        {
            return None;
        }
        let opn = self.op_nodes[op][node].as_ref()?;
        let queued = opn.queued_tuples();
        if queued < self.options.steal.min_tuples {
            return None;
        }
        let steal_tuples = ((queued as f64) * self.options.steal.fraction) as u64;
        if steal_tuples == 0 {
            return None;
        }
        // The requester must copy this node's hash-table partition for
        // the probed join (conservatively assumed not yet copied).
        let hash_bytes = self.ops[op]
            .build_twin
            .and_then(|b| self.op_nodes[b][node].as_ref())
            .map(|b| self.cost.hash_table_bytes(b.hash_tuples))
            .unwrap_or(0);
        let bytes = self.config.costs.bytes_for_tuples(steal_tuples) + hash_bytes;
        if bytes > free_bytes {
            return None;
        }
        let ratio = steal_tuples as f64 / bytes.max(1) as f64;
        Some((op, steal_tuples, bytes, ratio))
    }

    /// A provider node looks for a candidate queue to off-load (conditions
    /// (i)–(vi) of §3.2) and answers the requester. In co-simulated mode the
    /// candidate set — and the advertised load — spans the operators of
    /// *every* interleaved query, so steal decisions see cross-query load.
    fn on_starving(
        &mut self,
        node: usize,
        requester: usize,
        free_bytes: u64,
        target: Option<usize>,
        epoch: u64,
        token: u64,
    ) {
        let mut best: Option<(usize, u64, u64, f64)> = None; // (op, tuples, bytes, ratio)
        match target {
            // Open mode: the targeted slot was recycled while the request was
            // in flight — the new occupant's work must not be offered under
            // the stale id. An empty candidate set still yields a NoOffer
            // reply, so the requester's reply counting stays intact.
            Some(op) if self.epochs[op] != epoch => {}
            Some(op) => best = self.steal_candidate(op, node, requester, free_bytes),
            // DP considers every live operator: the bitset walk visits the
            // non-terminated slots in ascending index order — the same
            // candidates, in the same order, as the full `0..ops.len()`
            // scan it replaces.
            None => {
                for op in self.live_ops.iter() {
                    let Some(candidate) = self.steal_candidate(op, node, requester, free_bytes)
                    else {
                        continue;
                    };
                    if best.map(|(_, _, _, r)| candidate.3 > r).unwrap_or(true) {
                        best = Some(candidate);
                    }
                }
            }
        }

        let load = self.node_load(node);

        match best {
            Some((op, tuples, bytes, _)) => self.send_control(
                node,
                requester,
                CONTROL_MESSAGE_BYTES,
                ControlMsg::Offer {
                    from: node,
                    op,
                    tuples,
                    bytes,
                    load,
                    epoch: self.epochs[op],
                    token,
                },
            ),
            None => self.send_control(
                node,
                requester,
                CONTROL_MESSAGE_BYTES,
                ControlMsg::NoOffer { from: node, token },
            ),
        }
    }

    /// The requester collects offers; once all providers answered it acquires
    /// from the most loaded one.
    fn on_offer(&mut self, node: usize, token: u64, offer: Option<OfferEntry>) {
        // A requester that died mid-episode abandons it: acquiring work onto
        // a dead node would strand it.
        if !self.live[node] {
            return;
        }
        {
            let lb = &mut self.node_lb[node];
            if token != lb.current_token {
                // Reply to an older steal episode; ignore it.
                return;
            }
            lb.replies_received += 1;
            if let Some(o) = offer {
                lb.offers.push(o);
            }
            if lb.replies_received < lb.replies_expected {
                return;
            }
        }
        // All replies in: pick the provider to acquire from. DP keeps a list
        // of queues it already stole from (§4): when possible it prefers a
        // provider whose hash-table partition it has already copied, and
        // otherwise takes the most loaded provider. FP has no such
        // optimization — it is part of the paper's DP contribution.
        let table_cached = |provider: usize, op: usize| {
            self.op_nodes[op][node]
                .as_ref()
                .map(|o| o.hash_copied_from.contains(&provider))
                .unwrap_or(false)
        };
        let offers = std::mem::take(&mut self.node_lb[node].offers);
        let chosen = if self.prefers_cached {
            offers
                .iter()
                .filter(|(provider, op, _, _, _, _)| table_cached(*provider, *op))
                .max_by_key(|(_, _, _, _, load, _)| *load)
                .or_else(|| offers.iter().max_by_key(|(_, _, _, _, load, _)| *load))
                .copied()
        } else {
            offers
                .iter()
                .max_by_key(|(_, _, _, _, load, _)| *load)
                .copied()
        };
        match chosen {
            None => {
                // Nothing to acquire; clear the outstanding flags so a later
                // starving episode can retry.
                self.node_lb[node].starving_outstanding = false;
                self.node_lb[node].fp_outstanding.clear();
            }
            Some((provider, op, _tuples, _bytes, _load, epoch)) => {
                let has_table = self.prefers_cached && table_cached(provider, op);
                self.send_control(
                    node,
                    provider,
                    CONTROL_MESSAGE_BYTES,
                    ControlMsg::Acquire {
                        from: node,
                        op,
                        has_table,
                        epoch,
                    },
                );
            }
        }
    }

    /// The provider ships roughly `steal_fraction` of its queued activations
    /// of `op`, plus its hash-table partition when the requester lacks it.
    fn on_acquire(
        &mut self,
        node: usize,
        requester: usize,
        op: usize,
        has_table: bool,
        epoch: u64,
    ) {
        // Open mode: the offered slot was recycled between Offer and Acquire
        // (its query terminated and a new one moved in). Ship an empty,
        // control-sized transfer so the requester's outstanding flags clear,
        // and leave the new occupant untouched.
        if self.epochs[op] != epoch {
            self.send_control(
                node,
                requester,
                CONTROL_MESSAGE_BYTES,
                ControlMsg::Transfer {
                    from: node,
                    op,
                    activations: Vec::new(),
                    bytes: CONTROL_MESSAGE_BYTES,
                },
            );
            return;
        }
        let mut shipped: Vec<Activation> = Vec::new();
        let mut shipped_tuples = 0u64;
        let mut hash_bytes = 0u64;
        if let Some(opn) = self.op_nodes[op][node].as_mut() {
            let total: usize = opn.queued_activations();
            let take = ((total as f64) * self.options.steal.fraction).ceil() as usize;
            // The shipped batch size is known up front; size the transfer
            // buffer once instead of growing it pop by pop.
            shipped.reserve_exact(take.min(total));
            let mut remaining = take;
            // Parked activations first (they are the oldest overflow).
            while remaining > 0 {
                let Some(a) = opn.unpark_front() else {
                    break;
                };
                shipped_tuples += a.tuples;
                shipped.push(a);
                remaining -= 1;
            }
            // Then bulk-drain the queues, spreading the remainder evenly over
            // the queues (a queue holding less than its quota rolls the
            // difference over to the later ones). `drain_into` appends into
            // the pre-sized transfer buffer and accounts tuples in the same
            // pass.
            let nq = opn.queues.len();
            for i in 0..nq {
                if remaining == 0 {
                    break;
                }
                let quota = remaining.div_ceil(nq - i);
                let outcome = opn.drain_queue_into(i, quota, &mut shipped);
                shipped_tuples += outcome.tuples;
                remaining -= outcome.count;
            }
            // Top-up sweep: under skew the work concentrates in low-index
            // queues (the router's hot slots), which the even-spread quota
            // above deliberately under-drains; take the shortfall from
            // whatever is left so the transfer really carries `take`
            // activations whenever that much work exists.
            for i in 0..nq {
                if remaining == 0 {
                    break;
                }
                let outcome = opn.drain_queue_into(i, remaining, &mut shipped);
                shipped_tuples += outcome.tuples;
                remaining -= outcome.count;
            }
            if opn.queued == 0 {
                self.ready[node].remove(op);
            }
        }
        if !has_table {
            hash_bytes = self.ops[op]
                .build_twin
                .and_then(|b| self.op_nodes[b][node].as_ref())
                .map(|b| self.cost.hash_table_bytes(b.hash_tuples))
                .unwrap_or(0);
        }
        let tuple_bytes: u64 = self.config.costs.bytes_for_tuples(shipped_tuples);
        let bytes = (tuple_bytes + hash_bytes).max(CONTROL_MESSAGE_BYTES);
        self.lb_bytes += bytes;
        // The provider's queues may now be empty: re-run end detection.
        self.check_local_end(op, node);
        self.maybe_terminate(op);
        self.send_control(
            node,
            requester,
            bytes,
            ControlMsg::Transfer {
                from: node,
                op,
                activations: shipped,
                bytes,
            },
        );
    }

    /// The requester integrates the acquired activations and wakes its
    /// threads.
    fn on_transfer(
        &mut self,
        node: usize,
        provider: usize,
        op: usize,
        activations: Vec<Activation>,
        _bytes: u64,
    ) {
        self.node_lb[node].starving_outstanding = false;
        self.node_lb[node].fp_outstanding.remove(&op);
        if activations.is_empty() {
            return;
        }
        // The provider already gave the work up: a shipment towards a node
        // that died in flight lands on a live home node instead of being
        // dropped (work conservation).
        let node = if self.live[node] {
            node
        } else {
            self.live_home_redirect(op, provider as u64)
        };
        self.lb_acquisitions += 1;
        {
            let opn = self.op_nodes[op][node]
                .as_mut()
                .expect("requester is in the operator home");
            opn.hash_copied_from.insert(provider);
            for a in activations {
                let slot = opn.steal_cursor % self.threads_per_node;
                opn.steal_cursor += 1;
                opn.enqueue_or_park(slot, a);
            }
            self.ready[node].insert(op);
        }
        if self.op_consumable(op, node) {
            self.wake_threads(node, Some(op));
        }
    }

    // ----------------------------------------------------------------- //
    // Sender-initiated push (Threshold)
    // ----------------------------------------------------------------- //

    /// After new work lands on `node`, probe a round-robin neighbour when
    /// the local queued load crossed the `hi` watermark. At most one probe
    /// is in flight per node; the eventual shipment reuses the §3.2
    /// Acquire/Transfer path, so conservation and fault redirects hold
    /// unchanged. A no-op (one branch) for pull-only policies.
    fn maybe_push_work(&mut self, node: usize) {
        let Some(cfg) = self.push else { return };
        if self.nodes < 2
            || !self.live[node]
            || self.node_lb[node].push_outstanding
            || self.node_load(node) as f64 <= cfg.hi
        {
            return;
        }
        let start = self.node_lb[node].push_cursor;
        let Some(target) = (1..self.nodes)
            .map(|d| (start + d) % self.nodes)
            .find(|&n| n != node && self.live[n])
        else {
            return;
        };
        let lb = &mut self.node_lb[node];
        lb.push_cursor = target;
        lb.push_outstanding = true;
        lb.current_token += 1;
        let token = lb.current_token;
        self.lb_requests += 1;
        self.send_control(
            node,
            target,
            CONTROL_MESSAGE_BYTES,
            ControlMsg::PushProbe { from: node, token },
        );
    }

    /// A probed node decides whether to take pushed work: accept when it is
    /// alive and its own queued load sits below the `lo` watermark. It
    /// always replies, so the sender's outstanding probe clears either way.
    fn on_push_probe(&mut self, node: usize, sender: usize, token: u64) {
        let accept = self
            .push
            .map(|cfg| self.live[node] && (self.node_load(node) as f64) < cfg.lo)
            .unwrap_or(false);
        self.send_control(
            node,
            sender,
            CONTROL_MESSAGE_BYTES,
            ControlMsg::PushReply {
                from: node,
                accept,
                free_bytes: self.free_mem[node],
                token,
            },
        );
    }

    /// The sender integrates a push verdict: on accept it offers its best
    /// candidate queue (the §3.2 tuples-per-byte arbitration, against the
    /// receiver's advertised free memory) and ships it through the regular
    /// Acquire path.
    fn on_push_reply(
        &mut self,
        node: usize,
        receiver: usize,
        accept: bool,
        free_bytes: u64,
        token: u64,
    ) {
        if token != self.node_lb[node].current_token {
            return;
        }
        self.node_lb[node].push_outstanding = false;
        if !accept || !self.live[node] || !self.live[receiver] {
            return;
        }
        let mut best: Option<(usize, u64, u64, f64)> = None;
        for op in self.live_ops.iter() {
            let Some(candidate) = self.steal_candidate(op, node, receiver, free_bytes) else {
                continue;
            };
            if best.map(|(_, _, _, r)| candidate.3 > r).unwrap_or(true) {
                best = Some(candidate);
            }
        }
        if let Some((op, _, _, _)) = best {
            self.on_acquire(node, receiver, op, false, self.epochs[op]);
        }
    }

    // ----------------------------------------------------------------- //
    // Topology events (fault injection)
    // ----------------------------------------------------------------- //

    /// Applies one validated topology event. Failures and drains strip the
    /// node and recover its state on the survivors; joins revive the node
    /// with empty memory and fresh threads.
    fn on_topology(&mut self, index: usize) -> Result<()> {
        let ev = self.topology[index];
        let node = ev.node.index();
        match ev.change {
            TopologyChange::NodeFail => self.on_node_down(node, false),
            TopologyChange::NodeDrain => self.on_node_down(node, true),
            TopologyChange::NodeJoin => self.on_node_join(node),
        }
    }

    /// A node leaves the machine. Between events no activation is mid-
    /// processing (`processing` is always 0 then), so the node's recoverable
    /// state is exactly its queued/parked activations plus its built
    /// hash-table partitions. A `graceful` drain always migrates that state;
    /// a failure loses it under [`RecoveryPolicy::LoseRestart`].
    fn on_node_down(&mut self, dead: usize, graceful: bool) -> Result<()> {
        self.live[dead] = false;
        if graceful {
            self.faults.drains += 1;
        } else {
            self.faults.failures += 1;
        }
        for thread in 0..self.threads_per_node {
            self.set_idle(dead, thread, true);
        }
        // Abandon the node's steal bookkeeping; the token bump voids replies
        // still in flight towards it.
        let lb = &mut self.node_lb[dead];
        lb.current_token += 1;
        lb.starving_outstanding = false;
        lb.fp_outstanding.clear();
        lb.offers.clear();
        lb.replies_received = 0;
        lb.replies_expected = 0;
        lb.push_outstanding = false;
        // The node's memory dies with it: admitted reservations on it are
        // gone, and nothing can be reserved there until it re-joins.
        for lane in &mut self.lanes {
            lane.reserved.retain(|&(n, _)| n != dead);
        }
        self.free_mem[dead] = 0;
        // Lanes whose whole placement died move wholesale onto one survivor;
        // afterwards every non-terminated operator has a live home node.
        self.rehome_dead_lanes(dead, graceful);
        // Strip the dead node's per-operator state and recover it.
        self.strip_node(dead, graceful);
        // Waiting queries re-admit against the survivors.
        self.refresh_admission()?;
        // The strip may have completed operators (the dead node held their
        // last pending work) and the survivors have new work: sweep end
        // detection and wake every live node.
        for op in 0..self.ops.len() {
            for node in 0..self.nodes {
                self.check_local_end(op, node);
            }
            self.maybe_terminate(op);
        }
        for node in 0..self.nodes {
            self.wake_threads(node, None);
        }
        Ok(())
    }

    /// A previously departed node re-joins: full memory, fresh threads, and
    /// it resumes receiving routed output for every operator still homing on
    /// it. Re-homed (replaced) homes are not restored.
    fn on_node_join(&mut self, node: usize) -> Result<()> {
        self.live[node] = true;
        self.faults.joins += 1;
        self.free_mem[node] = self.config.machine.memory_per_node_bytes;
        let lb = &mut self.node_lb[node];
        lb.current_token += 1;
        lb.starving_outstanding = false;
        lb.fp_outstanding.clear();
        lb.offers.clear();
        lb.replies_received = 0;
        lb.replies_expected = 0;
        lb.push_outstanding = false;
        // Demands shrink with the grown placement; waiting lanes may fit now.
        self.refresh_admission()?;
        let now = self.calendar.now();
        while let Some(admitted) = self.try_reserve_head() {
            self.calendar
                .schedule_at(now, Event::QueryAdmit { lane: admitted });
        }
        for thread in 0..self.threads_per_node {
            self.set_idle(node, thread, false);
            self.calendar
                .schedule_at(now, Event::ThreadReady { node, thread });
        }
        Ok(())
    }

    /// Moves every lane whose operators have no live home node left onto one
    /// chosen survivor: home entries are rewritten, routers rebuilt for the
    /// single-node slot space, the end-detection protocol restarts, and the
    /// lane's memory reservation follows (saturating — a survivor may end up
    /// overcommitted; graceful degradation beats an aborted query).
    fn rehome_dead_lanes(&mut self, dead: usize, graceful: bool) {
        for lane_idx in 0..self.lanes.len() {
            let (base, n_ops) = (self.lanes[lane_idx].base, self.lanes[lane_idx].n_ops);
            let needs: Vec<usize> = (base..base + n_ops)
                .filter(|&op| {
                    !self.ops[op].terminated
                        && !self.ops[op].home.iter().any(|n| self.live[n.index()])
                })
                .collect();
            let mask_dead = self.lanes[lane_idx]
                .mask
                .as_ref()
                .map(|m| !m.iter().any(|n| self.live[n.index()]))
                .unwrap_or(false);
            if needs.is_empty() && !mask_dead {
                continue;
            }
            // The survivor with the most free memory (lowest index on ties).
            let m = (0..self.nodes)
                .filter(|&n| self.live[n])
                .max_by(|&a, &b| self.free_mem[a].cmp(&self.free_mem[b]).then(b.cmp(&a)))
                .expect("the live set is never empty");
            if mask_dead {
                self.lanes[lane_idx].mask = Some(vec![NodeId::from(m)]);
                // An admitted, unreleased lane carries its reservation over.
                if self.lanes[lane_idx].started && !self.lanes[lane_idx].released {
                    let amt = self.lanes[lane_idx].mem_per_node;
                    if amt > 0 {
                        self.free_mem[m] = self.free_mem[m].saturating_sub(amt);
                        self.lanes[lane_idx].reserved.push((m, amt));
                    }
                }
            }
            for op in needs {
                let old_home = std::mem::replace(&mut self.ops[op].home, vec![NodeId::from(m)]);
                self.ops[op].router =
                    OutputRouter::new(self.threads_per_node, self.lanes[lane_idx].skew, op);
                // Restart end detection from scratch for the new home; the
                // global safety counters in `maybe_terminate` make stale
                // in-flight protocol messages harmless.
                self.ops[op].phase1_reports = 0;
                self.ops[op].phase2_started = false;
                self.ops[op].phase2_confirms = 0;
                let mut moved: Vec<Activation> = Vec::new();
                let mut hash = 0u64;
                let mut seen = BTreeSet::new();
                for d in old_home {
                    if !seen.insert(d.index()) {
                        continue;
                    }
                    if let Some(mut opn) = self.op_nodes[op][d.index()].take() {
                        opn.drain_all_into(&mut moved);
                        hash += opn.hash_tuples;
                        self.ready[d.index()].remove(op);
                    }
                }
                self.op_nodes[op][m] = Some(OpNodeRuntime::new(
                    self.threads_per_node,
                    self.options.flow.queue_capacity,
                ));
                // FP: the survivor's threads must be allowed to run the
                // re-homed operator (its static allocation never mentioned
                // this node).
                if self.strategy.constrains_threads() {
                    for thread in 0..self.threads_per_node {
                        if let Some(set) = &mut self.threads[m][thread].allowed {
                            set.insert(op);
                        }
                    }
                }
                self.recover_state(op, dead, moved, hash, graceful);
            }
        }
    }

    /// Empties the departed node's per-operator state (queues, parked
    /// overflow, hash-table partitions, disk positions) and recovers it on
    /// the survivors. The emptied [`OpNodeRuntime`] stays allocated so the
    /// end-detection and steal protocols keep working unchanged — a dead
    /// node's side of them is answered by the recovery manager.
    fn strip_node(&mut self, dead: usize, graceful: bool) {
        for op in 0..self.ops.len() {
            let Some(opn) = self.op_nodes[op][dead].as_mut() else {
                continue;
            };
            let mut moved: Vec<Activation> = Vec::new();
            opn.drain_all_into(&mut moved);
            self.ready[dead].remove(op);
            let hash = std::mem::take(&mut opn.hash_tuples);
            opn.hash_copied_from.clear();
            opn.started_disks.clear();
            opn.steal_cursor = 0;
            if moved.is_empty() && hash == 0 {
                continue;
            }
            self.recover_state(op, dead, moved, hash, graceful);
        }
    }

    /// Recovers one operator's stripped state on the live nodes of its home.
    ///
    /// * **Re-home and resume** (and every graceful drain): activations and
    ///   hash-table partitions ship over the interconnect to survivors
    ///   chosen by the re-home policy; nothing is lost or redone.
    /// * **Lose and restart**: queued input is discarded and regenerated on
    ///   the survivors at no transfer cost (upstream logically re-sends it);
    ///   a hash-table partition still needed by a live probe is rebuilt by
    ///   re-processing its tuples, re-opening the build operator when it had
    ///   already terminated.
    fn recover_state(
        &mut self,
        op: usize,
        from: usize,
        moved: Vec<Activation>,
        hash: u64,
        graceful: bool,
    ) {
        let mut seen = BTreeSet::new();
        let survivors: Vec<NodeId> = self.ops[op]
            .home
            .iter()
            .copied()
            .filter(|n| self.live[n.index()] && seen.insert(n.index()))
            .collect();
        if survivors.is_empty() {
            // Only reachable for a *terminated* operator (live homes are
            // guaranteed otherwise): its residual hash table dies with the
            // node. A probe that still wanted it was re-homed separately and
            // probes on without it — counts-level simulation keeps this
            // benign.
            self.faults.tuples_lost += hash + moved.iter().map(|a| a.tuples).sum::<u64>();
            return;
        }
        let lose = !graceful && matches!(self.options.recovery.policy, RecoveryPolicy::LoseRestart);
        let now = self.calendar.now();
        let total = (moved.len() as u64).max(1);
        for (i, a) in moved.into_iter().enumerate() {
            let dest = self
                .options
                .recovery
                .rehome
                .survivor(i as u64, total, &survivors)
                .index();
            // A trigger's pending disk reads move to the destination's disks
            // (the replica assumption: partitions are readable from the
            // survivors).
            let a = match a.kind {
                ActivationKind::Trigger { pages, .. } => {
                    let disk_local = self.disk_cursor[dest] % self.disks_per_node;
                    self.disk_cursor[dest] += 1;
                    Activation::trigger(
                        a.op,
                        pages,
                        a.tuples,
                        DiskId::new(NodeId::from(dest), disk_local),
                    )
                    .for_query(a.query)
                }
                ActivationKind::Data => a,
            };
            // Net-zero delivery accounting: `on_data` re-adds exactly what is
            // subtracted here, so end detection keeps its invariants.
            self.ops[op].input_delivered -= a.tuples;
            let slot = i % self.threads_per_node;
            if lose {
                self.faults.tuples_lost += a.tuples;
                self.calendar.schedule_at(
                    now,
                    Event::Data {
                        node: dest,
                        op,
                        slot,
                        activation: a,
                    },
                );
            } else {
                self.faults.activations_rehomed += 1;
                self.faults.tuples_rehomed += a.tuples;
                let bytes = self
                    .config
                    .costs
                    .bytes_for_tuples(a.tuples)
                    .max(CONTROL_MESSAGE_BYTES);
                self.faults.rebalance_bytes += bytes;
                let timing = self
                    .network
                    .send(NodeId::from(from), NodeId::from(dest), bytes, now);
                self.calendar.schedule_at(
                    timing.arrival + timing.recv_cpu,
                    Event::Data {
                        node: dest,
                        op,
                        slot,
                        activation: a,
                    },
                );
            }
        }
        if hash > 0 {
            self.recover_hash(op, from, hash, lose, &survivors);
        }
    }

    /// Recovers a lost or migrating hash-table partition of build operator
    /// `op`: shipped intact under re-home-and-resume (and drains), rebuilt
    /// by re-processing under lose-and-restart. A partition no probe needs
    /// any more is dropped silently.
    fn recover_hash(
        &mut self,
        op: usize,
        from: usize,
        hash: u64,
        lose: bool,
        survivors: &[NodeId],
    ) {
        let needed = self
            .ops
            .iter()
            .any(|o| o.build_twin == Some(op) && !o.terminated);
        if !needed {
            return;
        }
        if lose {
            self.faults.tuples_lost += hash;
            self.faults.tuples_redone += hash;
            if self.ops[op].terminated {
                self.reopen_operator(op);
            }
        }
        let now = self.calendar.now();
        let lane = self.ops[op].lane;
        let local = OperatorId::from(op - self.lanes[lane].base);
        // Spread the partition over the survivors in fixed-size units so
        // both re-home policies see a keyed stream (mirrors
        // `dlb_storage::rehome`).
        const UNIT: u64 = 1 << 10;
        let units = hash.div_ceil(UNIT);
        let mut remaining = hash;
        for unit in 0..units {
            let chunk = remaining.min(UNIT);
            remaining -= chunk;
            let dest = self
                .options
                .recovery
                .rehome
                .survivor(unit, units, survivors)
                .index();
            if lose {
                // Rebuild: fresh build input beyond the original stream.
                self.ops[op].input_sent += chunk;
                let a = Activation::data(local, chunk).for_query(lane as u32);
                self.calendar.schedule_at(
                    now,
                    Event::Data {
                        node: dest,
                        op,
                        slot: unit as usize % self.threads_per_node,
                        activation: a,
                    },
                );
            } else {
                let bytes = self.cost.hash_table_bytes(chunk).max(CONTROL_MESSAGE_BYTES);
                self.faults.rebalance_bytes += bytes;
                self.faults.tuples_rehomed += chunk;
                self.network
                    .send(NodeId::from(from), NodeId::from(dest), bytes, now);
                // The partition lands intact: counts move now, the transfer
                // cost is the network charge above.
                self.op_nodes[op][dest]
                    .as_mut()
                    .expect("survivor is a home node")
                    .hash_tuples += chunk;
            }
        }
    }

    /// Rolls a terminated operator back into the running state so lost build
    /// work can be redone; it re-terminates through the normal protocol once
    /// the rebuild input drains.
    fn reopen_operator(&mut self, op: usize) {
        if !self.ops[op].terminated {
            return;
        }
        self.ops[op].terminated = false;
        self.ops_terminated -= 1;
        self.live_ops.insert(op);
        let lane = self.ops[op].lane;
        self.lanes[lane].ops_terminated -= 1;
        self.ops[op].phase1_reports = 0;
        self.ops[op].phase2_started = false;
        self.ops[op].phase2_confirms = 0;
        for h in 0..self.ops[op].home.len() {
            let node = self.ops[op].home[h].index();
            if let Some(opn) = self.op_nodes[op][node].as_mut() {
                opn.phase1_sent = false;
                opn.confirm_pending = false;
                opn.confirm_sent = false;
            }
        }
        self.faults.operators_restarted += 1;
    }

    /// Re-derives the per-node working-set share of every not-yet-started
    /// lane from the live placement, failing fast when a waiting query can
    /// never fit on the shrunken topology.
    fn refresh_admission(&mut self) -> Result<()> {
        let cap = self.config.machine.memory_per_node_bytes;
        for i in 0..self.lanes.len() {
            if self.lanes[i].started {
                continue;
            }
            let placement_len = self.admission_nodes(i).len().max(1) as u64;
            let mem = self.lanes[i].memory_bytes.div_ceil(placement_len);
            self.lanes[i].mem_per_node = mem;
            if mem > cap {
                return Err(DlbError::exec(format!(
                    "query {i} needs {mem} bytes on each of its {placement_len} surviving \
                     placement node(s) but nodes have {cap} — it can never be admitted \
                     after the topology change"
                )));
            }
        }
        Ok(())
    }
}

/// Executes `plan` on the machine described by `config` with the given
/// strategy and options, returning the execution report.
pub fn execute(
    plan: &ParallelPlan,
    config: &SystemConfig,
    strategy: Strategy,
    options: &ExecOptions,
) -> Result<ExecutionReport> {
    if strategy.queue_based() {
        QueueEngine::new(plan, *config, strategy, *options)?.run()
    } else {
        crate::sp::execute_sp(plan, config, options)
    }
}

/// Co-simulates `queries` concurrent queries inside **one** engine event
/// loop on the machine described by `config`: query-tagged activations of
/// all queries interleave in the shared per-(operator, thread) queues,
/// threads serve lanes in priority order, and global load balancing ranks
/// providers by their cross-query load.
///
/// Each query carries a *placement mask* ([`CoSimQuery::mask`]) re-homing
/// its plan onto a node subset — the pinning placements of
/// [`crate::mix::MixPolicy::RoundRobin`] / [`crate::mix::MixPolicy::LoadAware`]
/// — and a working-set estimate ([`CoSimQuery::memory_bytes`]) admitted
/// against per-node free memory **inside** the event loop: a query whose
/// placement lacks the memory waits, in strict head-of-line FCFS arrival
/// order, until a `QueryRelease` frees enough (exactly the admission
/// discipline of [`crate::mix::schedule_mix`]). A query whose demand can
/// never fit is a configuration error, not a deadlock.
///
/// Only the queue-based strategies can interleave activations;
/// [`Strategy::synchronous`] is rejected. The event loop is strictly
/// sequential and seeded, so the result is bit-identical for any harness
/// thread count, and a single query with arrival 0, priority 1 and the
/// options' skew reproduces [`execute`] exactly (`aggregate ==` the plain
/// report).
pub fn execute_cosimulated(
    queries: &[CoSimQuery<'_>],
    config: &SystemConfig,
    strategy: Strategy,
    options: &ExecOptions,
) -> Result<CoSimReport> {
    execute_cosimulated_faulted(queries, config, strategy, options, &[])
}

/// [`execute_cosimulated`] with a deterministic stream of topology events
/// (node failures, drains, re-joins) injected into the shared event loop.
///
/// The stream is validated up front (see
/// [`crate::topology::validate_topology`]); recovery behaviour is selected by
/// `options.recovery`. Degradation accounting lands in
/// [`CoSimReport::faults`]. With an empty stream this is exactly
/// [`execute_cosimulated`] — same events, same report, bit for bit.
pub fn execute_cosimulated_faulted(
    queries: &[CoSimQuery<'_>],
    config: &SystemConfig,
    strategy: Strategy,
    options: &ExecOptions,
    topology: &[TopologyEvent],
) -> Result<CoSimReport> {
    if !strategy.queue_based() {
        return Err(DlbError::config(
            "co-simulation requires a queue-based strategy (DP or FP); \
             SP has no activation queues to interleave",
        ));
    }
    QueueEngine::new_cosim(queries, *config, strategy, *options, topology)?.run_cosim()
}

/// Runs the co-simulated engine as an **open system**: queries arrive over a
/// stochastic (but deterministic-per-seed) arrival process, are admitted from
/// a FCFS waiting room into a fixed pool of `traffic.concurrency` lane slots,
/// execute interleaved in the one shared event loop, and *retire* on
/// completion — their per-operator state is dropped and the slot recycled —
/// so live engine state is O(concurrency), never O(total queries).
///
/// Per-query latencies (response, admission wait, slowdown against the
/// template's solo time) stream into constant-size log-bucketed sketches; the
/// returned [`OpenReport`] carries p50/p95/p99 summaries overall and per
/// priority class.
///
/// An optional front end ([`OpenTraffic::frontend`]) sits between the stream
/// and the waiting room: an LRU/TTL result cache retires repeat queries at
/// the fan-out cost without touching a lane, and single-flight coalescing
/// subscribes concurrent identical arrivals to the in-flight leader's
/// result. [`OpenReport::frontend`] accounts for every outcome, and
/// [`OpenReport::engine_by_template`] records the residual per-template load
/// the balancer actually saw. With the default (inert) config the run is
/// bit-identical to one without a front end.
///
/// The arrival stream, template choices, priorities and FP thread allocations
/// are all drawn from seeded generators, and the event loop is strictly
/// sequential, so the result is bit-identical for any harness thread count.
/// A single-arrival stream reproduces [`execute`]'s response time exactly.
/// [`Strategy::synchronous`] is rejected like in co-simulated mode.
pub fn execute_open(
    traffic: &OpenTraffic<'_>,
    config: &SystemConfig,
    strategy: Strategy,
    options: &ExecOptions,
) -> Result<OpenReport> {
    if !strategy.queue_based() {
        return Err(DlbError::config(
            "open-system mode requires a queue-based strategy (DP or FP); \
             SP has no activation queues to interleave",
        ));
    }
    QueueEngine::new_open(traffic, *config, strategy, *options)?.run_open()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_common::{Duration, QueryId, RelationId};
    use dlb_query::jointree::JoinTree;
    use dlb_query::optree::OperatorTree;
    use dlb_query::plan::{ChainScheduling, OperatorHomes, ParallelPlan};

    fn two_join_plan(nodes: u32) -> ParallelPlan {
        let tree = JoinTree::join(
            JoinTree::join(
                JoinTree::leaf(RelationId::new(0), 4_000),
                JoinTree::leaf(RelationId::new(1), 8_000),
                1.0 / 8_000.0,
            ),
            JoinTree::leaf(RelationId::new(2), 6_000),
            1.0 / 6_000.0,
        );
        let ot = OperatorTree::from_join_tree(&tree);
        let homes = OperatorHomes::all_nodes(&ot, nodes);
        ParallelPlan::build(QueryId::new(7), ot, homes, ChainScheduling::OneAtATime).unwrap()
    }

    fn bushy_plan(nodes: u32) -> ParallelPlan {
        let left = JoinTree::join(
            JoinTree::leaf(RelationId::new(0), 5_000),
            JoinTree::leaf(RelationId::new(1), 10_000),
            1.0 / 10_000.0,
        );
        let right = JoinTree::join(
            JoinTree::leaf(RelationId::new(2), 4_000),
            JoinTree::leaf(RelationId::new(3), 12_000),
            1.0 / 12_000.0,
        );
        let tree = JoinTree::join(left, right, 1.0 / 5_000.0);
        let ot = OperatorTree::from_join_tree(&tree);
        let homes = OperatorHomes::all_nodes(&ot, nodes);
        ParallelPlan::build(QueryId::new(8), ot, homes, ChainScheduling::OneAtATime).unwrap()
    }

    fn solo(plan: &ParallelPlan, arrival: f64, priority: u32, skew: f64) -> CoSimQuery<'_> {
        CoSimQuery {
            plan,
            arrival_secs: arrival,
            priority,
            skew,
            mask: None,
            memory_bytes: 0,
        }
    }

    #[test]
    fn dp_single_node_executes_to_completion() {
        let plan = two_join_plan(1);
        let config = SystemConfig::shared_memory(4);
        let r = execute(&plan, &config, Strategy::dynamic(), &ExecOptions::default()).unwrap();
        assert!(r.response_time > Duration::ZERO);
        assert!(r.activations > 0);
        assert!(
            r.tuples_processed >= 18_000,
            "tuples {}",
            r.tuples_processed
        );
        assert_eq!(r.messages, 0, "single node must not use the network");
        assert_eq!(r.lb_bytes, 0);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
    }

    #[test]
    fn dp_more_processors_is_faster() {
        let plan = bushy_plan(1);
        let opts = ExecOptions::default();
        let t2 = execute(
            &plan,
            &SystemConfig::shared_memory(2),
            Strategy::dynamic(),
            &opts,
        )
        .unwrap()
        .response_time;
        let t8 = execute(
            &plan,
            &SystemConfig::shared_memory(8),
            Strategy::dynamic(),
            &opts,
        )
        .unwrap()
        .response_time;
        assert!(t8 < t2, "8 procs ({t8}) should beat 2 procs ({t2})");
        let speedup = t2.as_secs_f64() / t8.as_secs_f64();
        assert!(speedup > 1.5, "speedup {speedup}");
    }

    #[test]
    fn dp_is_deterministic() {
        let plan = bushy_plan(2);
        let config = SystemConfig::hierarchical(2, 4);
        let opts = ExecOptions::with_skew(0.5);
        let a = execute(&plan, &config, Strategy::dynamic(), &opts).unwrap();
        let b = execute(&plan, &config, Strategy::dynamic(), &opts).unwrap();
        assert_eq!(a.response_time, b.response_time);
        assert_eq!(a.activations, b.activations);
        assert_eq!(a.network_bytes, b.network_bytes);
    }

    #[test]
    fn dp_hierarchical_execution_uses_the_network_but_completes() {
        let plan = bushy_plan(2);
        let config = SystemConfig::hierarchical(2, 4);
        let r = execute(&plan, &config, Strategy::dynamic(), &ExecOptions::default()).unwrap();
        assert!(r.messages > 0, "pipelined tuples must cross nodes");
        assert!(r.network_bytes > 0);
        assert!(r.result_tuples > 0);
    }

    #[test]
    fn fp_executes_and_is_not_faster_than_dp_under_skew() {
        let plan = bushy_plan(1);
        let opts = ExecOptions::with_skew(0.8);
        let config = SystemConfig::shared_memory(8);
        let dp = execute(&plan, &config, Strategy::dynamic(), &opts).unwrap();
        let fp = execute(&plan, &config, Strategy::fixed(0.0), &opts).unwrap();
        assert!(
            fp.response_time >= dp.response_time,
            "FP ({}) should not beat DP ({}) with skewed data",
            fp.response_time,
            dp.response_time
        );
    }

    #[test]
    fn fp_with_cost_errors_is_no_faster_than_exact_fp() {
        let plan = two_join_plan(1);
        let config = SystemConfig::shared_memory(8);
        let opts = ExecOptions::default();
        let exact = execute(&plan, &config, Strategy::fixed(0.0), &opts).unwrap();
        let wrong = execute(&plan, &config, Strategy::fixed(0.3), &opts).unwrap();
        // Allocation with distorted estimates can only be as good or worse.
        assert!(wrong.response_time.as_secs_f64() >= exact.response_time.as_secs_f64() * 0.99);
    }

    #[test]
    fn processed_tuples_match_plan_volume_for_dp() {
        let plan = bushy_plan(1);
        let config = SystemConfig::shared_memory(4);
        let r = execute(&plan, &config, Strategy::dynamic(), &ExecOptions::default()).unwrap();
        // Every operator input must be processed exactly once; allow a small
        // slack for rounding of probe outputs.
        let expected = plan.total_input_tuples();
        let tolerance = expected / 50 + 10;
        assert!(
            r.tuples_processed.abs_diff(expected) <= tolerance,
            "processed {} expected {expected}",
            r.tuples_processed
        );
        // The result cardinality is close to the optimizer estimate.
        let est = plan.tree.result_tuples();
        assert!(r.result_tuples.abs_diff(est) <= est / 10 + 16);
    }

    #[test]
    fn global_load_balancing_kicks_in_under_heavy_skew() {
        let plan = bushy_plan(4);
        let config = SystemConfig::hierarchical(4, 2);
        let opts = ExecOptions {
            skew: 0.9,
            ..ExecOptions::default()
        };
        let r = execute(&plan, &config, Strategy::dynamic(), &opts).unwrap();
        assert!(
            r.lb_requests > 0,
            "skewed hierarchical run should starve some node"
        );
    }

    #[test]
    fn single_scan_plan_terminates() {
        let ot = OperatorTree::from_join_tree(&JoinTree::leaf(RelationId::new(0), 2_000));
        let homes = OperatorHomes::all_nodes(&ot, 1);
        let plan =
            ParallelPlan::build(QueryId::new(1), ot, homes, ChainScheduling::OneAtATime).unwrap();
        let r = execute(
            &plan,
            &SystemConfig::shared_memory(2),
            Strategy::dynamic(),
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(r.result_tuples, 2_000);
        assert!(r.response_time > Duration::ZERO);
    }

    #[test]
    fn invalid_machine_rejected() {
        let plan = two_join_plan(1);
        let mut config = SystemConfig::shared_memory(4);
        config.machine.nodes = 0;
        assert!(execute(&plan, &config, Strategy::dynamic(), &ExecOptions::default()).is_err());
    }

    // ------------------------------------------------------------------ //
    // Co-simulated (multi-query) mode
    // ------------------------------------------------------------------ //

    #[test]
    fn cosim_single_query_matches_the_plain_engine_exactly() {
        let plan = bushy_plan(2);
        let config = SystemConfig::hierarchical(2, 4);
        for (strategy, skew) in [
            (Strategy::dynamic(), 0.0),
            (Strategy::dynamic(), 0.6),
            (Strategy::fixed(0.1), 0.6),
        ] {
            let opts = ExecOptions::with_skew(skew);
            let plain = execute(&plan, &config, strategy, &opts).unwrap();
            let co = execute_cosimulated(&[solo(&plan, 0.0, 1, skew)], &config, strategy, &opts)
                .unwrap();
            assert_eq!(co.aggregate, plain, "{strategy:?} skew {skew}");
            assert_eq!(co.queries.len(), 1);
            let q = &co.queries[0];
            assert_eq!(q.response_secs, plain.response_time.as_secs_f64());
            assert_eq!(q.activations, plain.activations);
            assert_eq!(q.tuples_processed, plain.tuples_processed);
            assert_eq!(q.result_tuples, plain.result_tuples);
        }
    }

    #[test]
    fn cosim_interleaves_queries_and_slows_both_down() {
        let plan = bushy_plan(2);
        let config = SystemConfig::hierarchical(2, 2);
        let opts = ExecOptions::default();
        let alone = execute(&plan, &config, Strategy::dynamic(), &opts)
            .unwrap()
            .response_time
            .as_secs_f64();
        let co = execute_cosimulated(
            &[solo(&plan, 0.0, 1, 0.0), solo(&plan, 0.0, 1, 0.0)],
            &config,
            Strategy::dynamic(),
            &opts,
        )
        .unwrap();
        assert_eq!(co.queries.len(), 2);
        // Two simultaneous copies share the processors: neither can beat its
        // solo run, and the work counters double.
        for q in &co.queries {
            assert!(
                q.response_secs >= alone * 0.999,
                "query {} finished in {} but alone takes {alone}",
                q.query,
                q.response_secs
            );
        }
        assert!(co.queries.iter().any(|q| q.response_secs > alone * 1.2));
        assert_eq!(
            co.aggregate.tuples_processed,
            co.queries.iter().map(|q| q.tuples_processed).sum::<u64>()
        );
        assert!(co.makespan_secs() >= co.mean_response_secs());
    }

    #[test]
    fn cosim_is_deterministic() {
        let plan_a = bushy_plan(2);
        let plan_b = two_join_plan(2);
        let config = SystemConfig::hierarchical(2, 4);
        let opts = ExecOptions::default();
        let queries = [solo(&plan_a, 0.0, 2, 0.4), solo(&plan_b, 0.5, 1, 0.8)];
        let a = execute_cosimulated(&queries, &config, Strategy::dynamic(), &opts).unwrap();
        let b = execute_cosimulated(&queries, &config, Strategy::dynamic(), &opts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cosim_respects_arrival_offsets() {
        let plan = two_join_plan(1);
        let config = SystemConfig::shared_memory(4);
        let opts = ExecOptions::default();
        let arrival = 5.0;
        let co = execute_cosimulated(
            &[solo(&plan, 0.0, 1, 0.0), solo(&plan, arrival, 1, 0.0)],
            &config,
            Strategy::dynamic(),
            &opts,
        )
        .unwrap();
        assert_eq!(co.queries[1].arrival_secs, arrival);
        assert!(
            co.queries[1].completion_secs >= arrival,
            "a query cannot finish before it arrives"
        );
        // With a gap longer than the solo run, the first query runs alone.
        let alone = execute(&plan, &config, Strategy::dynamic(), &opts).unwrap();
        if alone.response_time.as_secs_f64() < arrival {
            assert_eq!(
                co.queries[0].response_secs,
                alone.response_time.as_secs_f64(),
                "a disjoint first query runs at solo speed"
            );
        }
    }

    #[test]
    fn cosim_priority_favors_the_high_priority_query() {
        let plan = two_join_plan(1);
        let config = SystemConfig::shared_memory(2);
        let opts = ExecOptions::default();
        let co = execute_cosimulated(
            &[solo(&plan, 0.0, 3, 0.0), solo(&plan, 0.0, 1, 0.0)],
            &config,
            Strategy::dynamic(),
            &opts,
        )
        .unwrap();
        assert!(
            co.queries[0].completion_secs <= co.queries[1].completion_secs,
            "priority 3 ({}) must not finish after priority 1 ({})",
            co.queries[0].completion_secs,
            co.queries[1].completion_secs
        );
    }

    #[test]
    fn cosim_steals_see_cross_query_load() {
        // Two skewed queries on a hierarchical machine: global load
        // balancing still fires with interleaved queries, and the aggregate
        // accounts all of it.
        let plan = bushy_plan(4);
        let config = SystemConfig::hierarchical(4, 2);
        let opts = ExecOptions::with_skew(0.9);
        let co = execute_cosimulated(
            &[solo(&plan, 0.0, 1, 0.9), solo(&plan, 0.0, 1, 0.9)],
            &config,
            Strategy::dynamic(),
            &opts,
        )
        .unwrap();
        assert!(co.aggregate.lb_requests > 0);
        assert!(co.aggregate.result_tuples > 0);
    }

    #[test]
    fn cosim_placement_mask_rehomes_a_lane_onto_its_nodes() {
        let plan = bushy_plan(2);
        let config = SystemConfig::hierarchical(2, 2);
        let opts = ExecOptions::default();
        for strategy in [Strategy::dynamic(), Strategy::fixed(0.0)] {
            let mask = [NodeId::from(1usize)];
            let co = execute_cosimulated(
                &[CoSimQuery {
                    mask: Some(&mask),
                    ..solo(&plan, 0.0, 1, 0.0)
                }],
                &config,
                strategy,
                &opts,
            )
            .unwrap();
            // All work lands on the masked node; the other node never
            // executes an activation (scheduling, steals and FP allocations
            // are all restricted to the mask).
            assert_eq!(
                co.aggregate.per_node_busy[0],
                Duration::ZERO,
                "{strategy:?}: node 0 is outside the mask"
            );
            assert!(co.aggregate.per_node_busy[1] > Duration::ZERO);
            assert!(co.queries[0].result_tuples > 0);
        }
    }

    #[test]
    fn cosim_mask_validation_rejects_bad_masks() {
        let plan = two_join_plan(2);
        let config = SystemConfig::hierarchical(2, 2);
        let opts = ExecOptions::default();
        let empty: [NodeId; 0] = [];
        assert!(execute_cosimulated(
            &[CoSimQuery {
                mask: Some(&empty),
                ..solo(&plan, 0.0, 1, 0.0)
            }],
            &config,
            Strategy::dynamic(),
            &opts
        )
        .is_err());
        let out_of_range = [NodeId::from(5usize)];
        assert!(execute_cosimulated(
            &[CoSimQuery {
                mask: Some(&out_of_range),
                ..solo(&plan, 0.0, 1, 0.0)
            }],
            &config,
            Strategy::dynamic(),
            &opts
        )
        .is_err());
    }

    #[test]
    fn cosim_memory_admission_serializes_and_keeps_fcfs_order() {
        let plan = two_join_plan(1);
        let mut config = SystemConfig::shared_memory(4);
        config.machine.memory_per_node_bytes = 1_010;
        let opts = ExecOptions::default();
        let with_mem = |mem: u64| CoSimQuery {
            memory_bytes: mem,
            ..solo(&plan, 0.0, 1, 0.0)
        };

        // q0 holds 1000 of the 1010 bytes; q1 (1000) blocks; q2 (10) would
        // fit but must not jump the blocked head of the FCFS queue.
        let co = execute_cosimulated(
            &[with_mem(1_000), with_mem(1_000), with_mem(10)],
            &config,
            Strategy::dynamic(),
            &opts,
        )
        .unwrap();
        let [q0, q1, q2] = [&co.queries[0], &co.queries[1], &co.queries[2]];
        assert_eq!(q0.wait_secs, 0.0, "the first arrival admits immediately");
        assert!(q1.wait_secs > 0.0, "q1 must wait for q0's release");
        assert_eq!(
            q1.admitted_secs, q0.completion_secs,
            "q1 is admitted by q0's QueryRelease"
        );
        assert!(
            q2.wait_secs > 0.0 && q2.admitted_secs >= q1.admitted_secs,
            "q2 fits from the start but never jumps the blocked head \
             (admitted {} vs {})",
            q2.admitted_secs,
            q1.admitted_secs
        );
        // Serialized q0/q1 stretch the makespan beyond the concurrent case.
        let generous = execute_cosimulated(
            &[with_mem(0), with_mem(0), with_mem(0)],
            &config,
            Strategy::dynamic(),
            &opts,
        )
        .unwrap();
        assert!(generous.queries.iter().all(|q| q.wait_secs == 0.0));
        assert_eq!(generous.mean_wait_secs(), 0.0);
        assert!(co.mean_wait_secs() > 0.0);
        // Serialized admission orders completions by admission instant.
        assert!(q1.completion_secs >= q0.completion_secs);
        assert!(
            q1.response_secs > q1.wait_secs,
            "waits are part of response"
        );

        // A demand that can never fit errors up front instead of stalling
        // the event loop.
        let err = execute_cosimulated(&[with_mem(2_000)], &config, Strategy::dynamic(), &opts)
            .unwrap_err();
        assert!(
            matches!(err, DlbError::InvalidConfig(ref m) if m.contains("never be admitted")),
            "{err}"
        );
    }

    #[test]
    fn fp_shared_realization_is_the_default_and_per_node_differs_on_hierarchies() {
        // With error injection on a multi-node machine the two realizations
        // draw different allocations; on exact estimates they coincide.
        let plan = bushy_plan(2);
        let config = SystemConfig::hierarchical(2, 4);
        let strategy = Strategy::fixed(0.3);
        let shared = ExecOptions::default();
        assert_eq!(shared.fp_realization, ErrorRealization::Shared);
        let per_node = ExecOptions {
            fp_realization: ErrorRealization::PerNode,
            ..ExecOptions::default()
        };
        let a = execute(&plan, &config, strategy, &shared).unwrap();
        let b = execute(&plan, &config, strategy, &per_node).unwrap();
        // Both complete the same logical work...
        assert_eq!(a.result_tuples, b.result_tuples);
        // ...and with exact estimates the knob is a no-op.
        let exact = Strategy::fixed(0.0);
        let ea = execute(&plan, &config, exact, &shared).unwrap();
        let eb = execute(&plan, &config, exact, &per_node).unwrap();
        assert_eq!(ea, eb);
    }

    // ------------------------------------------------------------------ //
    // Fault injection (topology events)
    // ------------------------------------------------------------------ //

    #[test]
    fn failover_rehome_resume_conserves_work_and_accounts_rebalance() {
        let plan = bushy_plan(4);
        let config = SystemConfig::hierarchical(4, 2);
        let opts = ExecOptions::with_skew(0.3);
        let queries = [solo(&plan, 0.0, 1, 0.3), solo(&plan, 0.05, 1, 0.3)];
        let clean = execute_cosimulated(&queries, &config, Strategy::dynamic(), &opts).unwrap();
        let topo = [TopologyEvent::fail(clean.makespan_secs() * 0.3, 3)];
        let faulted =
            execute_cosimulated_faulted(&queries, &config, Strategy::dynamic(), &opts, &topo)
                .unwrap();
        assert_eq!(faulted.faults.failures, 1);
        assert_eq!(faulted.faults.tuples_lost, 0, "resume never loses state");
        assert_eq!(faulted.faults.tuples_redone, 0, "resume never redoes work");
        assert!(
            faulted.faults.tuples_rehomed > 0,
            "a mid-run failure must find state to migrate"
        );
        assert!(faulted.faults.rebalance_bytes > 0);
        // Work conservation: re-homing moves activations, it neither drops
        // nor duplicates them.
        assert_eq!(
            faulted.aggregate.tuples_processed, clean.aggregate.tuples_processed,
            "re-home-and-resume conserves processed tuples exactly"
        );
        assert_eq!(
            faulted.aggregate.result_tuples,
            clean.aggregate.result_tuples
        );
        // Losing a quarter of the machine mid-run cannot speed things up.
        assert!(
            faulted.aggregate.response_time >= clean.aggregate.response_time,
            "faulted {} vs clean {}",
            faulted.aggregate.response_time,
            clean.aggregate.response_time
        );
        // The dead node never works again.
        assert_eq!(faulted.aggregate.per_node_busy.len(), 4);
    }

    #[test]
    fn failover_lose_restart_discards_and_redoes_work() {
        let plan = bushy_plan(4);
        let config = SystemConfig::hierarchical(4, 2);
        let mut opts = ExecOptions::with_skew(0.3);
        opts.recovery.policy = RecoveryPolicy::LoseRestart;
        let queries = [solo(&plan, 0.0, 1, 0.3), solo(&plan, 0.05, 1, 0.3)];
        let clean = execute_cosimulated(&queries, &config, Strategy::dynamic(), &opts).unwrap();
        let topo = [TopologyEvent::fail(clean.makespan_secs() * 0.5, 3)];
        let faulted =
            execute_cosimulated_faulted(&queries, &config, Strategy::dynamic(), &opts, &topo)
                .unwrap();
        assert!(faulted.faults.tuples_lost > 0, "failure must lose state");
        assert!(
            faulted.faults.tuples_redone > 0,
            "a needed hash table must be rebuilt"
        );
        // Redone build work inflates the processed-tuple count.
        assert!(
            faulted.aggregate.tuples_processed > clean.aggregate.tuples_processed,
            "faulted {} vs clean {}",
            faulted.aggregate.tuples_processed,
            clean.aggregate.tuples_processed
        );
        // The answer itself is unchanged: lost input is regenerated.
        assert_eq!(
            faulted.aggregate.result_tuples,
            clean.aggregate.result_tuples
        );
    }

    #[test]
    fn drain_migrates_without_loss_even_under_lose_restart() {
        let plan = bushy_plan(4);
        let config = SystemConfig::hierarchical(4, 2);
        let mut opts = ExecOptions::with_skew(0.3);
        opts.recovery.policy = RecoveryPolicy::LoseRestart;
        let queries = [solo(&plan, 0.0, 1, 0.3)];
        let clean = execute_cosimulated(&queries, &config, Strategy::dynamic(), &opts).unwrap();
        let topo = [TopologyEvent::drain(clean.makespan_secs() * 0.3, 2)];
        let faulted =
            execute_cosimulated_faulted(&queries, &config, Strategy::dynamic(), &opts, &topo)
                .unwrap();
        assert_eq!(faulted.faults.drains, 1);
        assert_eq!(faulted.faults.failures, 0);
        assert_eq!(faulted.faults.tuples_lost, 0, "drains migrate, never lose");
        assert_eq!(faulted.faults.tuples_redone, 0);
        assert_eq!(
            faulted.aggregate.tuples_processed,
            clean.aggregate.tuples_processed
        );
        assert_eq!(
            faulted.aggregate.result_tuples,
            clean.aggregate.result_tuples
        );
    }

    #[test]
    fn faulted_cosim_replays_bit_identically() {
        let plan_a = bushy_plan(4);
        let plan_b = two_join_plan(4);
        let config = SystemConfig::hierarchical(4, 2);
        let opts = ExecOptions::with_skew(0.6);
        let queries = [solo(&plan_a, 0.0, 2, 0.6), solo(&plan_b, 0.02, 1, 0.6)];
        let topo = [
            TopologyEvent::fail(0.05, 3),
            TopologyEvent::join(0.25, 3),
            TopologyEvent::drain(0.4, 1),
        ];
        for strategy in [Strategy::dynamic(), Strategy::fixed(0.1)] {
            let a = execute_cosimulated_faulted(&queries, &config, strategy, &opts, &topo).unwrap();
            let b = execute_cosimulated_faulted(&queries, &config, strategy, &opts, &topo).unwrap();
            assert_eq!(a, b, "{strategy:?}");
            assert_eq!(a.faults.failures, 1);
            assert_eq!(a.faults.joins, 1);
            assert!(a.queries.iter().all(|q| q.result_tuples > 0));
        }
    }

    #[test]
    fn failed_node_rejoins_and_the_run_completes() {
        let plan = bushy_plan(4);
        let config = SystemConfig::hierarchical(4, 2);
        let opts = ExecOptions::default();
        let queries = [solo(&plan, 0.0, 1, 0.0), solo(&plan, 0.1, 1, 0.0)];
        let clean = execute_cosimulated(&queries, &config, Strategy::dynamic(), &opts).unwrap();
        let m = clean.makespan_secs();
        let topo = [
            TopologyEvent::fail(m * 0.2, 3),
            TopologyEvent::join(m * 0.5, 3),
        ];
        let faulted =
            execute_cosimulated_faulted(&queries, &config, Strategy::dynamic(), &opts, &topo)
                .unwrap();
        assert_eq!(faulted.faults.failures, 1);
        assert_eq!(faulted.faults.joins, 1);
        assert_eq!(
            faulted.aggregate.result_tuples,
            clean.aggregate.result_tuples
        );
        assert_eq!(
            faulted.aggregate.tuples_processed,
            clean.aggregate.tuples_processed
        );
    }

    #[test]
    fn masked_lane_survives_death_of_its_only_node() {
        let plan = bushy_plan(2);
        let config = SystemConfig::hierarchical(2, 2);
        let opts = ExecOptions::default();
        let mask = [NodeId::from(1usize)];
        let queries = [CoSimQuery {
            mask: Some(&mask),
            ..solo(&plan, 0.0, 1, 0.0)
        }];
        let clean = execute_cosimulated(&queries, &config, Strategy::dynamic(), &opts).unwrap();
        let topo = [TopologyEvent::fail(clean.makespan_secs() * 0.4, 1)];
        for strategy in [Strategy::dynamic(), Strategy::fixed(0.0)] {
            let faulted =
                execute_cosimulated_faulted(&queries, &config, strategy, &opts, &topo).unwrap();
            // The whole lane re-homed onto node 0 and finished there.
            assert!(
                faulted.aggregate.per_node_busy[0] > Duration::ZERO,
                "{strategy:?}: the survivor must take over the pinned lane"
            );
            assert_eq!(
                faulted.queries[0].result_tuples,
                clean.queries[0].result_tuples
            );
            assert!(faulted.faults.tuples_rehomed > 0);
        }
    }

    #[test]
    fn waiting_query_that_cannot_fit_after_failure_errors_clearly() {
        let plan = two_join_plan(2);
        let mut config = SystemConfig::hierarchical(2, 2);
        config.machine.memory_per_node_bytes = 1_010;
        let opts = ExecOptions::default();
        let with_mem = |mem: u64| CoSimQuery {
            memory_bytes: mem,
            ..solo(&plan, 0.0, 1, 0.0)
        };
        // q0 takes 1000 of the 1010 bytes per node; q1 (750 per node across
        // both) waits. Node 1 dies before q0 releases: q1's demand collapses
        // onto node 0 as 1500 > 1010.
        let queries = [with_mem(2_000), with_mem(1_500)];
        let topo = [TopologyEvent::fail(1e-4, 1)];
        let err = execute_cosimulated_faulted(&queries, &config, Strategy::dynamic(), &opts, &topo)
            .unwrap_err();
        assert!(
            matches!(err, DlbError::ExecutionError(ref m)
                if m.contains("never be admitted after the topology change")),
            "{err}"
        );
        // Without the failure the same mix runs fine.
        assert!(execute_cosimulated(&queries, &config, Strategy::dynamic(), &opts).is_ok());
    }

    #[test]
    fn post_completion_topology_events_change_nothing_material() {
        let plan = bushy_plan(2);
        let config = SystemConfig::hierarchical(2, 2);
        let opts = ExecOptions::default();
        let queries = [solo(&plan, 0.0, 1, 0.0)];
        let clean = execute_cosimulated(&queries, &config, Strategy::dynamic(), &opts).unwrap();
        // The simulation ends with the last query: a failure scheduled past
        // that instant never takes effect and the report is bit-identical.
        let topo = [TopologyEvent::fail(clean.makespan_secs() + 1.0, 0)];
        let faulted =
            execute_cosimulated_faulted(&queries, &config, Strategy::dynamic(), &opts, &topo)
                .unwrap();
        assert_eq!(faulted, clean);
    }

    #[test]
    fn faulted_cosim_rejects_invalid_topology_streams() {
        let plan = two_join_plan(2);
        let config = SystemConfig::hierarchical(2, 2);
        let opts = ExecOptions::default();
        let queries = [solo(&plan, 0.0, 1, 0.0)];
        for topo in [
            vec![TopologyEvent::fail(0.1, 9)],
            vec![TopologyEvent::join(0.1, 0)],
            vec![TopologyEvent::fail(0.1, 0), TopologyEvent::fail(0.2, 1)],
            vec![TopologyEvent::fail(f64::NAN, 0)],
        ] {
            assert!(
                execute_cosimulated_faulted(&queries, &config, Strategy::dynamic(), &opts, &topo)
                    .is_err(),
                "{topo:?}"
            );
        }
    }

    #[test]
    fn cosim_rejects_invalid_inputs() {
        let plan = two_join_plan(1);
        let config = SystemConfig::shared_memory(2);
        let opts = ExecOptions::default();
        assert!(execute_cosimulated(&[], &config, Strategy::dynamic(), &opts).is_err());
        assert!(execute_cosimulated(
            &[solo(&plan, 0.0, 0, 0.0)],
            &config,
            Strategy::dynamic(),
            &opts
        )
        .is_err());
        assert!(execute_cosimulated(
            &[solo(&plan, -1.0, 1, 0.0)],
            &config,
            Strategy::dynamic(),
            &opts
        )
        .is_err());
        assert!(execute_cosimulated(
            &[solo(&plan, 0.0, 1, 2.0)],
            &config,
            Strategy::dynamic(),
            &opts
        )
        .is_err());
        assert!(execute_cosimulated(
            &[solo(&plan, 0.0, 1, 0.0)],
            &config,
            Strategy::synchronous(),
            &opts
        )
        .is_err());
    }

    // ------------------------------------------------------------------ //
    // Open-system mode
    // ------------------------------------------------------------------ //

    use dlb_traffic::ArrivalKind;

    /// A small two-relation join: 4 operators (2 scans, build, probe).
    fn tiny_plan(nodes: u32) -> ParallelPlan {
        let tree = JoinTree::join(
            JoinTree::leaf(RelationId::new(0), 120),
            JoinTree::leaf(RelationId::new(1), 240),
            1.0 / 240.0,
        );
        let ot = OperatorTree::from_join_tree(&tree);
        let homes = OperatorHomes::all_nodes(&ot, nodes);
        ParallelPlan::build(QueryId::new(9), ot, homes, ChainScheduling::OneAtATime).unwrap()
    }

    fn arrivals(kind: ArrivalKind, queries: usize, rate_qps: f64, burstiness: f64) -> ArrivalSpec {
        ArrivalSpec {
            kind,
            rate_qps,
            burstiness,
            queries,
            templates: 1,
            template_skew: 0.0,
            priority_classes: 1,
            seed: 0xD1B_1996,
        }
    }

    fn template(plan: &ParallelPlan) -> OpenTemplate<'_> {
        OpenTemplate {
            plan,
            memory_bytes: 0,
            solo_secs: 0.0,
        }
    }

    #[test]
    fn open_single_arrival_matches_the_plain_engine_exactly() {
        // One arrival through the open machinery is the closed engine,
        // time-translated to the arrival instant: response (and hence
        // slowdown against the solo baseline) must be bit-identical.
        let plan = bushy_plan(2);
        let config = SystemConfig::hierarchical(2, 4);
        for (strategy, skew) in [
            (Strategy::dynamic(), 0.0),
            (Strategy::dynamic(), 0.6),
            (Strategy::fixed(0.1), 0.6),
        ] {
            let opts = ExecOptions::with_skew(skew);
            let plain = execute(&plan, &config, strategy, &opts).unwrap();
            let traffic = OpenTraffic {
                templates: vec![OpenTemplate {
                    plan: &plan,
                    memory_bytes: 0,
                    solo_secs: plain.response_time.as_secs_f64(),
                }],
                arrivals: arrivals(ArrivalKind::Poisson, 1, 0.25, 0.0),
                concurrency: 3,
                frontend: FrontendConfig::default(),
            };
            let open = execute_open(&traffic, &config, strategy, &opts).unwrap();
            assert_eq!(open.completed, 1, "{strategy:?} skew {skew}");
            assert_eq!(open.peak_live, 1);
            assert_eq!(
                open.response.max(),
                plain.response_time.as_secs_f64(),
                "{strategy:?} skew {skew}: open response vs plain"
            );
            assert_eq!(open.wait.max(), 0.0, "an uncontended arrival never waits");
            assert_eq!(open.slowdown.max(), 1.0, "response / solo must be exact");
        }
    }

    #[test]
    fn open_runs_are_deterministic() {
        let plan = tiny_plan(2);
        let bushy = bushy_plan(2);
        let config = SystemConfig::hierarchical(2, 2);
        let opts = ExecOptions::with_skew(0.5);
        let traffic = OpenTraffic {
            templates: vec![template(&plan), template(&bushy)],
            arrivals: ArrivalSpec {
                templates: 2,
                priority_classes: 3,
                ..arrivals(ArrivalKind::Bursty, 120, 20.0, 0.5)
            },
            concurrency: 4,
            frontend: FrontendConfig::default(),
        };
        for strategy in [Strategy::dynamic(), Strategy::fixed(0.2)] {
            let a = execute_open(&traffic, &config, strategy, &opts).unwrap();
            let b = execute_open(&traffic, &config, strategy, &opts).unwrap();
            assert_eq!(a, b, "{strategy:?}");
            assert_eq!(a.completed, 120);
            assert!(a.throughput_qps > 0.0);
        }
    }

    #[test]
    fn open_live_state_is_bounded_by_concurrency_at_10k_queries() {
        // Saturating arrival stream: offered load far above capacity, so the
        // waiting room grows into the thousands while live engine state must
        // stay pinned at `concurrency` lane slots.
        let plan = tiny_plan(1);
        let config = SystemConfig::shared_memory(2);
        let opts = ExecOptions::default();
        let concurrency = 8;
        let traffic = OpenTraffic {
            templates: vec![template(&plan)],
            arrivals: arrivals(ArrivalKind::Poisson, 10_000, 400.0, 0.0),
            concurrency,
            frontend: FrontendConfig::default(),
        };
        let mut engine =
            QueueEngine::new_open(&traffic, config, Strategy::dynamic(), opts).unwrap();
        // Op state is O(concurrency × max_ops) by construction, not O(total).
        assert_eq!(engine.ops.len(), concurrency * 4);
        engine.run_loop().unwrap();
        let open = engine.open.as_ref().unwrap();
        assert_eq!(open.completed, 10_000);
        assert_eq!(open.response.count(), 10_000);
        assert!(
            open.peak_live <= concurrency,
            "peak live {} exceeds the {concurrency} lane slots",
            open.peak_live
        );
        // Under 50x overload the slot pool must actually fill up...
        assert_eq!(open.peak_live, concurrency);
        // ...and queries behind the pool must have waited.
        assert!(open.wait.quantile(0.5).unwrap() > 0.0);
        // Every retired query's operator state was dropped, not retained.
        assert!(engine.lanes.iter().all(|l| !l.started));
        assert!(engine
            .op_nodes
            .iter()
            .all(|row| row.iter().all(|cell| cell.is_none())));
        assert!(engine.ops.iter().all(|o| o.terminated && o.home.is_empty()));
    }

    #[test]
    fn open_bursty_and_diurnal_streams_complete() {
        let plan = tiny_plan(1);
        let config = SystemConfig::shared_memory(4);
        let opts = ExecOptions::default();
        for (kind, burstiness) in [(ArrivalKind::Bursty, 0.7), (ArrivalKind::Diurnal, 0.0)] {
            let traffic = OpenTraffic {
                templates: vec![template(&plan)],
                arrivals: arrivals(kind, 50, 30.0, burstiness),
                concurrency: 2,
                frontend: FrontendConfig::default(),
            };
            let r = execute_open(&traffic, &config, Strategy::dynamic(), &opts).unwrap();
            assert_eq!(r.completed, 50, "{kind:?}");
            assert_eq!(r.response.count(), 50);
            assert!(r.response.quantile(0.99).unwrap() > 0.0);
        }
    }

    #[test]
    fn open_multi_node_run_with_skew_and_memory_admission_completes() {
        // Multi-node, skewed, memory-constrained: exercises steal episodes
        // racing slot recycling (the epoch guard) and in-loop admission.
        let plan = tiny_plan(2);
        let bushy = bushy_plan(2);
        let config = SystemConfig::hierarchical(2, 2);
        let opts = ExecOptions::with_skew(0.8);
        let mem = config.machine.memory_per_node_bytes;
        let traffic = OpenTraffic {
            templates: vec![
                OpenTemplate {
                    plan: &plan,
                    memory_bytes: mem,
                    solo_secs: 0.01,
                },
                OpenTemplate {
                    plan: &bushy,
                    memory_bytes: mem / 2,
                    solo_secs: 0.05,
                },
            ],
            arrivals: ArrivalSpec {
                templates: 2,
                priority_classes: 2,
                ..arrivals(ArrivalKind::Bursty, 150, 40.0, 0.6)
            },
            concurrency: 3,
            frontend: FrontendConfig::default(),
        };
        for strategy in [Strategy::dynamic(), Strategy::fixed(0.2)] {
            let r = execute_open(&traffic, &config, strategy, &opts).unwrap();
            assert_eq!(r.completed, 150, "{strategy:?}");
            assert!(r.slowdown.count() == 150);
            // The working sets force queueing: someone must have waited.
            assert!(r.wait.max() > 0.0);
        }
    }

    #[test]
    fn open_priority_classes_partition_the_response_sketch() {
        let plan = tiny_plan(1);
        let config = SystemConfig::shared_memory(2);
        let opts = ExecOptions::default();
        let traffic = OpenTraffic {
            templates: vec![template(&plan)],
            arrivals: ArrivalSpec {
                priority_classes: 3,
                ..arrivals(ArrivalKind::Poisson, 200, 50.0, 0.0)
            },
            concurrency: 4,
            frontend: FrontendConfig::default(),
        };
        let r = execute_open(&traffic, &config, Strategy::dynamic(), &opts).unwrap();
        assert_eq!(r.response_by_class.len(), 3);
        let per_class: u64 = r.response_by_class.iter().map(|h| h.count()).sum();
        assert_eq!(per_class, r.completed);
        assert!(r.response_by_class.iter().all(|h| h.count() > 0));
        let classes = r.class_summaries();
        assert_eq!(classes.len(), 3);
        assert_eq!(classes[0].0, 1);
        assert_eq!(classes[2].0, 3);
    }

    #[test]
    fn open_result_cache_serves_repeats_without_engine_work() {
        // One template, infinite TTL, arrivals spaced far beyond the solo
        // response time: the first arrival executes and populates the cache,
        // every later arrival is a hit retiring at the fan-out cost.
        let plan = tiny_plan(1);
        let config = SystemConfig::shared_memory(2);
        let opts = ExecOptions::default();
        let traffic = OpenTraffic {
            templates: vec![template(&plan)],
            arrivals: arrivals(ArrivalKind::Poisson, 60, 2.0, 0.0),
            concurrency: 2,
            frontend: FrontendConfig {
                cache_capacity: 1,
                cache_ttl_secs: f64::INFINITY,
                coalesce: false,
                fanout_cost_secs: 0.001,
            },
        };
        let r = execute_open(&traffic, &config, Strategy::dynamic(), &opts).unwrap();
        assert_eq!(r.completed, 60);
        assert_eq!(r.frontend.engine_queries, 1, "only the first miss executes");
        assert_eq!(r.frontend.cache_hits, 59);
        assert_eq!(r.frontend.cache_misses, 1);
        assert_eq!(r.frontend.coalesced, 0);
        assert_eq!(r.response_cache_hit.count(), 59);
        assert_eq!(r.response_cache_hit.max(), 0.001, "hits cost the fan-out");
        assert_eq!(r.response_engine.count(), 1);
        assert_eq!(r.engine_by_template, vec![1]);
        assert_eq!(r.qps_multiplier(), 60.0);
        assert!((r.hit_ratio() - 59.0 / 60.0).abs() < 1e-12);
        // Decomposition: every completion is exactly one outcome.
        assert_eq!(
            r.response.count(),
            r.response_engine.count() + r.response_cache_hit.count() + r.response_coalesced.count()
        );
    }

    #[test]
    fn open_coalescing_subscribes_concurrent_identical_arrivals() {
        // One template under heavy overload with the cache off: the first
        // arrival leads, everyone arriving while it is in flight attaches,
        // and the whole stream is served by a handful of engine executions.
        let plan = tiny_plan(1);
        let config = SystemConfig::shared_memory(2);
        let opts = ExecOptions::default();
        let traffic = OpenTraffic {
            templates: vec![template(&plan)],
            arrivals: arrivals(ArrivalKind::Poisson, 200, 400.0, 0.0),
            concurrency: 4,
            frontend: FrontendConfig {
                cache_capacity: 0,
                cache_ttl_secs: f64::INFINITY,
                coalesce: true,
                fanout_cost_secs: 0.0005,
            },
        };
        let r = execute_open(&traffic, &config, Strategy::dynamic(), &opts).unwrap();
        assert_eq!(r.completed, 200);
        assert!(r.frontend.coalesced > 0, "overload must coalesce");
        assert_eq!(
            r.frontend.engine_queries + r.frontend.coalesced,
            r.completed,
            "every arrival either executed or followed a leader"
        );
        assert_eq!(r.frontend.cache_bypass, 200, "cache off: all bypass");
        assert_eq!(r.frontend.cache_hits, 0);
        assert_eq!(r.response_coalesced.count(), r.frontend.coalesced);
        assert_eq!(
            r.engine_by_template.iter().sum::<u64>(),
            r.frontend.engine_queries,
            "followers add zero engine admissions"
        );
        assert!(r.qps_multiplier() > 1.0);
        // Determinism holds with the front end on.
        let again = execute_open(&traffic, &config, Strategy::dynamic(), &opts).unwrap();
        assert_eq!(r, again);
    }

    #[test]
    fn open_inert_frontend_is_bit_identical_to_no_frontend() {
        // Setting the knobs that don't enable anything (TTL, fan-out cost)
        // must not perturb the run: the report is equal field for field.
        let plan = tiny_plan(2);
        let bushy = bushy_plan(2);
        let config = SystemConfig::hierarchical(2, 2);
        let opts = ExecOptions::with_skew(0.5);
        let mut traffic = OpenTraffic {
            templates: vec![template(&plan), template(&bushy)],
            arrivals: ArrivalSpec {
                templates: 2,
                priority_classes: 2,
                ..arrivals(ArrivalKind::Bursty, 80, 30.0, 0.5)
            },
            concurrency: 3,
            frontend: FrontendConfig::default(),
        };
        let base = execute_open(&traffic, &config, Strategy::dynamic(), &opts).unwrap();
        traffic.frontend = FrontendConfig {
            cache_capacity: 0,
            cache_ttl_secs: 0.25,
            coalesce: false,
            fanout_cost_secs: 0.5,
        };
        let inert = execute_open(&traffic, &config, Strategy::dynamic(), &opts).unwrap();
        assert_eq!(base, inert);
        assert_eq!(
            base.frontend,
            FrontendStats {
                engine_queries: 80,
                ..FrontendStats::default()
            },
            "engine executions are counted even without a front end"
        );
        assert_eq!(base.qps_multiplier(), 1.0, "no front end: no multiplier");
    }

    #[test]
    fn open_rejects_invalid_inputs() {
        let plan = tiny_plan(1);
        let config = SystemConfig::shared_memory(2);
        let opts = ExecOptions::default();
        let good = OpenTraffic {
            templates: vec![template(&plan)],
            arrivals: arrivals(ArrivalKind::Poisson, 10, 5.0, 0.0),
            concurrency: 2,
            frontend: FrontendConfig::default(),
        };
        // SP has no queues to interleave.
        assert!(execute_open(&good, &config, Strategy::synchronous(), &opts).is_err());
        // No templates.
        let mut bad = good.clone();
        bad.templates.clear();
        bad.arrivals.templates = 0;
        assert!(execute_open(&bad, &config, Strategy::dynamic(), &opts).is_err());
        // Zero concurrency.
        let mut bad = good.clone();
        bad.concurrency = 0;
        assert!(execute_open(&bad, &config, Strategy::dynamic(), &opts).is_err());
        // Arrival spec draws from more templates than supplied.
        let mut bad = good.clone();
        bad.arrivals.templates = 2;
        assert!(execute_open(&bad, &config, Strategy::dynamic(), &opts).is_err());
        // A working set that can never fit is a configuration error, not a
        // deadlock.
        let mut bad = good.clone();
        bad.templates[0].memory_bytes = 3 * config.machine.memory_per_node_bytes;
        assert!(execute_open(&bad, &config, Strategy::dynamic(), &opts).is_err());
        // Invalid solo baseline.
        let mut bad = good.clone();
        bad.templates[0].solo_secs = f64::NAN;
        assert!(execute_open(&bad, &config, Strategy::dynamic(), &opts).is_err());
    }
}
