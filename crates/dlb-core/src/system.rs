//! Hierarchical system description and execution entry point.

use dlb_common::config::{CostConstants, CpuParams, DiskParams, NetworkParams, SystemConfig};
use dlb_common::Result;
use dlb_exec::{ExecOptions, ExecutionReport, Strategy};
use dlb_query::plan::ParallelPlan;
use serde::{Deserialize, Serialize};

/// A simulated hierarchical parallel database system: a shared-nothing set of
/// shared-memory multiprocessor nodes (SM-nodes) with the paper's hardware
/// parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalSystem {
    config: SystemConfig,
    options: ExecOptions,
}

impl HierarchicalSystem {
    /// Starts building a system (defaults: 4 SM-nodes × 8 processors, the
    /// paper's base hierarchical configuration).
    pub fn builder() -> SystemBuilder {
        SystemBuilder::default()
    }

    /// A single shared-memory node with `processors` processors.
    pub fn shared_memory(processors: u32) -> Self {
        Self {
            config: SystemConfig::shared_memory(processors),
            options: ExecOptions::default(),
        }
    }

    /// A hierarchical system of `nodes` × `processors_per_node`.
    pub fn hierarchical(nodes: u32, processors_per_node: u32) -> Self {
        Self {
            config: SystemConfig::hierarchical(nodes, processors_per_node),
            options: ExecOptions::default(),
        }
    }

    /// The underlying simulation configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The execution options in force.
    pub fn options(&self) -> &ExecOptions {
        &self.options
    }

    /// Returns a copy of this system with different execution options.
    pub fn with_options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Returns a copy of this system with the given redistribution-skew
    /// factor.
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.options.skew = skew;
        self
    }

    /// Returns a copy of this system with a different number of SM-nodes;
    /// processors per node, memory and every other parameter are unchanged.
    /// Used by the inter-query scheduler to derive the single-node placement
    /// shape of a pinned query.
    pub fn with_nodes(mut self, nodes: u32) -> Self {
        self.config.machine.nodes = nodes.max(1);
        self
    }

    /// Returns a copy of this system with a different shared-memory size per
    /// SM-node (the admission limit of global load balancing and of the
    /// inter-query scheduler).
    pub fn with_memory_per_node(mut self, bytes: u64) -> Self {
        self.config.machine.memory_per_node_bytes = bytes;
        self
    }

    /// Number of SM-nodes.
    pub fn nodes(&self) -> u32 {
        self.config.machine.nodes
    }

    /// Processors per SM-node.
    pub fn processors_per_node(&self) -> u32 {
        self.config.machine.processors_per_node
    }

    /// Total processors.
    pub fn total_processors(&self) -> u32 {
        self.config.machine.total_processors()
    }

    /// Executes one parallel plan under the given strategy.
    pub fn run(&self, plan: &ParallelPlan, strategy: Strategy) -> Result<ExecutionReport> {
        dlb_exec::execute(plan, &self.config, strategy, &self.options)
    }

    /// Executes one plan under every strategy that is valid on this machine
    /// (SP is skipped on multi-node machines), returning `(strategy, report)`
    /// pairs.
    pub fn run_all_strategies(
        &self,
        plan: &ParallelPlan,
    ) -> Result<Vec<(Strategy, ExecutionReport)>> {
        let mut strategies = vec![Strategy::dynamic(), Strategy::fixed(0.0)];
        if self.nodes() == 1 {
            strategies.push(Strategy::synchronous());
        }
        strategies
            .into_iter()
            .map(|s| self.run(plan, s).map(|r| (s, r)))
            .collect()
    }
}

/// Builder for [`HierarchicalSystem`].
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    nodes: u32,
    processors_per_node: u32,
    memory_per_node_bytes: u64,
    cpu: CpuParams,
    network: NetworkParams,
    disk: DiskParams,
    costs: CostConstants,
    options: ExecOptions,
}

impl Default for SystemBuilder {
    fn default() -> Self {
        let c = SystemConfig::default();
        Self {
            nodes: c.machine.nodes,
            processors_per_node: c.machine.processors_per_node,
            memory_per_node_bytes: c.machine.memory_per_node_bytes,
            cpu: c.cpu,
            network: c.network,
            disk: c.disk,
            costs: c.costs,
            options: ExecOptions::default(),
        }
    }
}

impl SystemBuilder {
    /// Sets the number of SM-nodes.
    pub fn nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Sets the number of processors (and worker threads) per SM-node.
    pub fn processors_per_node(mut self, processors: u32) -> Self {
        self.processors_per_node = processors;
        self
    }

    /// Sets the shared memory available per node (admission limit of the
    /// global load-balancing policy).
    pub fn memory_per_node(mut self, bytes: u64) -> Self {
        self.memory_per_node_bytes = bytes;
        self
    }

    /// Overrides the CPU parameters (default: 40 MIPS, as on the KSR1).
    pub fn cpu(mut self, cpu: CpuParams) -> Self {
        self.cpu = cpu;
        self
    }

    /// Overrides the network parameters.
    pub fn network(mut self, network: NetworkParams) -> Self {
        self.network = network;
        self
    }

    /// Overrides the disk parameters.
    pub fn disk(mut self, disk: DiskParams) -> Self {
        self.disk = disk;
        self
    }

    /// Overrides the per-tuple cost constants.
    pub fn costs(mut self, costs: CostConstants) -> Self {
        self.costs = costs;
        self
    }

    /// Overrides the execution options (skew, queue capacity, ...).
    pub fn options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Builds the system.
    pub fn build(self) -> HierarchicalSystem {
        let config = SystemConfig {
            machine: dlb_common::config::MachineConfig {
                nodes: self.nodes.max(1),
                processors_per_node: self.processors_per_node.max(1),
                memory_per_node_bytes: self.memory_per_node_bytes,
            },
            cpu: self.cpu,
            network: self.network,
            disk: self.disk,
            costs: self.costs,
        };
        HierarchicalSystem {
            config,
            options: self.options,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adhoc::AdHocQuery;

    #[test]
    fn builder_defaults_match_paper_base_configuration() {
        let s = HierarchicalSystem::builder().build();
        assert_eq!(s.nodes(), 4);
        assert_eq!(s.processors_per_node(), 8);
        assert_eq!(s.total_processors(), 32);
        assert_eq!(s.config().cpu.mips, 40.0);
    }

    #[test]
    fn builder_overrides_apply() {
        let s = HierarchicalSystem::builder()
            .nodes(2)
            .processors_per_node(16)
            .memory_per_node(1 << 30)
            .build()
            .with_skew(0.5);
        assert_eq!(s.total_processors(), 32);
        assert_eq!(s.config().machine.memory_per_node_bytes, 1 << 30);
        assert_eq!(s.options().skew, 0.5);
    }

    #[test]
    fn zero_sizes_clamped() {
        let s = HierarchicalSystem::builder()
            .nodes(0)
            .processors_per_node(0)
            .build();
        assert_eq!(s.nodes(), 1);
        assert_eq!(s.processors_per_node(), 1);
    }

    #[test]
    fn run_all_strategies_includes_sp_only_on_shared_memory() {
        let query = AdHocQuery::new("t")
            .relation("a", 2_000)
            .relation("b", 3_000)
            .join("a", "b");
        let sm = HierarchicalSystem::shared_memory(4);
        let plans = query.compile(&sm).unwrap();
        let results = sm.run_all_strategies(&plans[0]).unwrap();
        assert_eq!(results.len(), 3);

        let hier = HierarchicalSystem::hierarchical(2, 2);
        let plans = query.compile(&hier).unwrap();
        let results = hier.run_all_strategies(&plans[0]).unwrap();
        assert_eq!(results.len(), 2);
    }
}
