//! Ad-hoc query construction.
//!
//! While the paper's evaluation runs randomly generated workloads, a
//! downstream user typically wants to describe a concrete multi-join query:
//! relations with cardinalities, join predicates with (optional) selectivity,
//! and get back optimized parallel plans ready to execute on a
//! [`HierarchicalSystem`].

use crate::system::HierarchicalSystem;
use dlb_common::{DlbError, QueryId, RelationId, Result};
use dlb_query::cost::CostModel;
use dlb_query::generator::Query;
use dlb_query::graph::PredicateGraph;
use dlb_query::optimizer::{Optimizer, OptimizerParams};
use dlb_query::optree::OperatorTree;
use dlb_query::plan::{ChainScheduling, OperatorHomes, ParallelPlan};
use dlb_storage::relation::{RelationDef, SizeClass};

/// A user-described multi-join query.
#[derive(Debug, Clone)]
pub struct AdHocQuery {
    name: String,
    relations: Vec<(String, u64, f64)>,
    joins: Vec<(String, String, Option<f64>)>,
    chain_scheduling: ChainScheduling,
    keep_best: usize,
}

impl AdHocQuery {
    /// Starts a new query description.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            relations: Vec::new(),
            joins: Vec::new(),
            chain_scheduling: ChainScheduling::OneAtATime,
            keep_best: 1,
        }
    }

    /// The query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a relation with the given cardinality.
    pub fn relation(mut self, name: impl Into<String>, cardinality: u64) -> Self {
        self.relations.push((name.into(), cardinality, 0.0));
        self
    }

    /// Adds a relation whose join attribute is skewed (Zipf theta).
    pub fn skewed_relation(mut self, name: impl Into<String>, cardinality: u64, skew: f64) -> Self {
        self.relations.push((name.into(), cardinality, skew));
        self
    }

    /// Adds an equi-join between two relations. The selectivity defaults to
    /// `1 / max(|L|, |R|)` (a key/foreign-key join).
    pub fn join(mut self, left: impl Into<String>, right: impl Into<String>) -> Self {
        self.joins.push((left.into(), right.into(), None));
        self
    }

    /// Adds a join with an explicit selectivity factor.
    pub fn join_with_selectivity(
        mut self,
        left: impl Into<String>,
        right: impl Into<String>,
        selectivity: f64,
    ) -> Self {
        self.joins
            .push((left.into(), right.into(), Some(selectivity)));
        self
    }

    /// Allows pipeline chains to execute concurrently instead of one at a
    /// time.
    pub fn concurrent_chains(mut self) -> Self {
        self.chain_scheduling = ChainScheduling::Concurrent;
        self
    }

    /// Number of alternative plans to produce (default 1).
    pub fn keep_best(mut self, n: usize) -> Self {
        self.keep_best = n.max(1);
        self
    }

    fn size_class(cardinality: u64) -> SizeClass {
        if cardinality <= 20_000 {
            SizeClass::Small
        } else if cardinality <= 200_000 {
            SizeClass::Medium
        } else {
            SizeClass::Large
        }
    }

    /// Turns the description into a [`Query`] (relations + predicate graph).
    pub fn to_query(&self) -> Result<Query> {
        if self.relations.is_empty() {
            return Err(DlbError::plan("query has no relations"));
        }
        let relations: Vec<RelationDef> = self
            .relations
            .iter()
            .enumerate()
            .map(|(i, (name, card, skew))| {
                RelationDef::new(
                    RelationId::from(i),
                    name.clone(),
                    *card,
                    Self::size_class(*card),
                )
                .with_skew(*skew)
            })
            .collect();
        let find = |name: &str| -> Result<RelationId> {
            relations
                .iter()
                .find(|r| r.name == name)
                .map(|r| r.id)
                .ok_or_else(|| DlbError::not_found(format!("relation '{name}'")))
        };
        let mut graph = PredicateGraph::new(relations.iter().map(|r| r.id).collect());
        for (l, r, sel) in &self.joins {
            let left = find(l)?;
            let right = find(r)?;
            let lc = relations[left.index()].cardinality;
            let rc = relations[right.index()].cardinality;
            let selectivity = sel.unwrap_or(1.0 / lc.max(rc).max(1) as f64);
            graph.add_edge(left, right, selectivity);
        }
        let query = Query {
            id: QueryId::new(0),
            relations,
            graph,
        };
        if !query.graph.is_connected() {
            return Err(DlbError::plan(
                "join graph is not connected: every relation must be joined (directly or \
                 transitively) with every other",
            ));
        }
        Ok(query)
    }

    /// Optimizes the query and builds parallel plans for `system`.
    pub fn compile(&self, system: &HierarchicalSystem) -> Result<Vec<ParallelPlan>> {
        let query = self.to_query()?;
        let cost = CostModel::new(
            system.config().costs,
            system.config().disk,
            system.config().cpu,
        );
        let optimizer = Optimizer::new(
            OptimizerParams {
                keep_best: self.keep_best,
                ..OptimizerParams::default()
            },
            cost,
        );
        let trees = optimizer.optimize(&query)?;
        trees
            .into_iter()
            .map(|tree| {
                let optree = OperatorTree::from_join_tree(&tree);
                let homes = OperatorHomes::all_nodes(&optree, system.nodes());
                ParallelPlan::build(query.id, optree, homes, self.chain_scheduling)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_exec::Strategy;

    fn star_query() -> AdHocQuery {
        AdHocQuery::new("star")
            .relation("fact", 50_000)
            .relation("dim_a", 2_000)
            .relation("dim_b", 3_000)
            .relation("dim_c", 1_000)
            .join("fact", "dim_a")
            .join("fact", "dim_b")
            .join("fact", "dim_c")
    }

    #[test]
    fn query_construction_and_compilation() {
        let system = HierarchicalSystem::shared_memory(4);
        let plans = star_query().keep_best(2).compile(&system).unwrap();
        assert!(!plans.is_empty() && plans.len() <= 2);
        for plan in &plans {
            assert_eq!(plan.tree.scan_count(), 4);
            assert_eq!(plan.tree.join_count(), 3);
            plan.validate().unwrap();
        }
    }

    #[test]
    fn compiled_plan_runs_on_the_system() {
        let system = HierarchicalSystem::hierarchical(2, 2);
        let plans = star_query().compile(&system).unwrap();
        let report = system.run(&plans[0], Strategy::dynamic()).unwrap();
        assert!(report.response_time.as_secs_f64() > 0.0);
        assert!(report.tuples_processed > 50_000);
    }

    #[test]
    fn default_selectivity_is_key_foreign_key() {
        let q = AdHocQuery::new("kfk")
            .relation("orders", 10_000)
            .relation("customers", 1_000)
            .join("orders", "customers")
            .to_query()
            .unwrap();
        let sel = q.graph.edges()[0].selectivity;
        assert!((sel - 1.0 / 10_000.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_selectivity_is_respected() {
        let q = AdHocQuery::new("x")
            .relation("a", 100)
            .relation("b", 100)
            .join_with_selectivity("a", "b", 0.5)
            .to_query()
            .unwrap();
        assert_eq!(q.graph.edges()[0].selectivity, 0.5);
    }

    #[test]
    fn unknown_relation_is_reported() {
        let err = AdHocQuery::new("bad")
            .relation("a", 100)
            .join("a", "missing")
            .to_query()
            .unwrap_err();
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn disconnected_query_is_rejected() {
        let err = AdHocQuery::new("bad")
            .relation("a", 100)
            .relation("b", 100)
            .to_query()
            .unwrap_err();
        assert!(err.to_string().contains("connected"));
    }

    #[test]
    fn empty_query_is_rejected() {
        assert!(AdHocQuery::new("empty").to_query().is_err());
    }

    #[test]
    fn skewed_relation_and_concurrent_chains_options() {
        let system = HierarchicalSystem::shared_memory(2);
        let q = AdHocQuery::new("skewed")
            .skewed_relation("a", 5_000, 0.8)
            .relation("b", 5_000)
            .join("a", "b")
            .concurrent_chains();
        let query = q.to_query().unwrap();
        assert_eq!(query.relations[0].attribute_skew, 0.8);
        let plans = q.compile(&system).unwrap();
        assert_eq!(plans[0].chain_scheduling, ChainScheduling::Concurrent);
    }
}
