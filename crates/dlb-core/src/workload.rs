//! Workload compilation: from generated queries to executable plans.

use crate::system::HierarchicalSystem;
use dlb_common::Result;
use dlb_query::cost::CostModel;
use dlb_query::generator::{Query, WorkloadGenerator, WorkloadParams};
use dlb_query::optimizer::{Optimizer, OptimizerParams};
use dlb_query::optree::OperatorTree;
use dlb_query::plan::{ChainScheduling, OperatorHomes, ParallelPlan};

/// A generated workload compiled into parallel execution plans for a given
/// system (the paper's "40 parallel execution plans": 20 queries × the two
/// best bushy trees each).
#[derive(Debug, Clone)]
pub struct CompiledWorkload {
    queries: Vec<Query>,
    plans: Vec<(usize, ParallelPlan)>,
}

impl CompiledWorkload {
    /// Generates `params.queries` queries and compiles each into its best
    /// bushy plans for `system` (two per query by default, as in the paper).
    pub fn generate(params: WorkloadParams, system: &HierarchicalSystem) -> Result<Self> {
        Self::generate_with(
            params,
            system,
            OptimizerParams::default(),
            ChainScheduling::OneAtATime,
        )
    }

    /// Full-control variant of [`CompiledWorkload::generate`].
    pub fn generate_with(
        params: WorkloadParams,
        system: &HierarchicalSystem,
        optimizer_params: OptimizerParams,
        chain_scheduling: ChainScheduling,
    ) -> Result<Self> {
        let queries = WorkloadGenerator::new(params).generate();
        let cost = CostModel::new(
            system.config().costs,
            system.config().disk,
            system.config().cpu,
        );
        let optimizer = Optimizer::new(optimizer_params, cost);
        let mut plans = Vec::new();
        for (qi, query) in queries.iter().enumerate() {
            for tree in optimizer.optimize(query)? {
                let optree = OperatorTree::from_join_tree(&tree);
                let homes = OperatorHomes::all_nodes(&optree, system.nodes());
                let plan = ParallelPlan::build(query.id, optree, homes, chain_scheduling)?;
                plans.push((qi, plan));
            }
        }
        Ok(Self { queries, plans })
    }

    /// The generated queries.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The compiled plans as `(query index, plan)` pairs.
    pub fn plans(&self) -> &[(usize, ParallelPlan)] {
        &self.plans
    }

    /// Number of compiled plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when the workload contains no plans.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Iterates over the plans only.
    pub fn iter_plans(&self) -> impl Iterator<Item = &ParallelPlan> {
        self.plans.iter().map(|(_, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_compiles_two_plans_per_query() {
        let system = HierarchicalSystem::shared_memory(4);
        let params = WorkloadParams::tiny(3, 6, 77);
        let w = CompiledWorkload::generate(params, &system).unwrap();
        assert_eq!(w.queries().len(), 3);
        assert!(w.len() >= 3 && w.len() <= 6, "plans {}", w.len());
        assert!(!w.is_empty());
        for plan in w.iter_plans() {
            plan.validate().unwrap();
            assert_eq!(plan.tree.scan_count(), 6);
        }
    }

    #[test]
    fn plans_reference_their_query() {
        let system = HierarchicalSystem::hierarchical(2, 2);
        let w = CompiledWorkload::generate(WorkloadParams::tiny(2, 4, 5), &system).unwrap();
        for (qi, plan) in w.plans() {
            assert_eq!(plan.query, w.queries()[*qi].id);
        }
    }

    #[test]
    fn homes_match_the_target_system() {
        let system = HierarchicalSystem::hierarchical(3, 2);
        let w = CompiledWorkload::generate(WorkloadParams::tiny(1, 4, 9), &system).unwrap();
        for plan in w.iter_plans() {
            for op in plan.tree.operators() {
                assert_eq!(plan.homes.home(op.id).len(), 3);
            }
        }
    }
}
