//! Workload compilation: from generated queries to executable plans.

use crate::system::HierarchicalSystem;
use dlb_common::Result;
use dlb_query::cost::CostModel;
use dlb_query::generator::{Query, WorkloadGenerator, WorkloadParams};
use dlb_query::optimizer::{Optimizer, OptimizerParams};
use dlb_query::optree::OperatorTree;
use dlb_query::plan::{ChainScheduling, OperatorHomes, ParallelPlan};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identity of a compiled workload, usable as (part of) a cache key.
///
/// Two workloads compare equal only when they are guaranteed to contain the
/// same plans: generated workloads are a pure function of their generation
/// inputs (workload parameters, optimizer parameters, chain scheduling, and
/// the parts of the system configuration the compiler reads — node count for
/// operator homes, cost/disk/CPU parameters for the cost model), so their
/// fingerprint is those inputs, bit-exact. Hand-assembled workloads
/// ([`CompiledWorkload::from_plans`]) get a process-unique tag instead: they
/// never alias each other, though clones (and [`std::sync::Arc`] shares)
/// still compare equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WorkloadFingerprint(Box<[u64]>);

static ADHOC_WORKLOADS: AtomicU64 = AtomicU64::new(0);

impl WorkloadFingerprint {
    fn generated(
        params: &WorkloadParams,
        optimizer: &OptimizerParams,
        scheduling: ChainScheduling,
        system: &HierarchicalSystem,
    ) -> Self {
        let c = system.config();
        let mut bits: Vec<u64> = vec![
            1, // discriminant: generated
            params.queries as u64,
            params.relations_per_query as u64,
            params.scale.to_bits(),
            params.skew.to_bits(),
            params.seed,
            optimizer.candidates as u64,
            optimizer.keep_best as u64,
            optimizer.seed,
            match scheduling {
                ChainScheduling::OneAtATime => 0,
                ChainScheduling::Concurrent => 1,
            },
            // The compiler places homes on every node and costs plans with
            // the cost model, so those inputs are part of the identity.
            c.machine.nodes as u64,
            c.cpu.mips.to_bits(),
            c.disk.disks_per_processor as u64,
            c.disk.latency.as_nanos(),
            c.disk.seek_time.as_nanos(),
            c.disk.transfer_rate_bytes_per_sec.to_bits(),
            c.disk.async_io_init_instr,
            c.disk.io_cache_pages as u64,
        ];
        bits.extend(cost_bits(&c.costs));
        Self(bits.into_boxed_slice())
    }

    fn adhoc() -> Self {
        let tag = ADHOC_WORKLOADS.fetch_add(1, Ordering::Relaxed);
        Self(Box::new([0, tag]))
    }

    /// Extends a base fingerprint with additional identity bits (used by
    /// [`CompiledWorkload::subset`] to key a sub-workload on its parent's
    /// identity plus the selected plan indices).
    fn derived(base: &WorkloadFingerprint, extra: impl IntoIterator<Item = u64>) -> Self {
        let mut bits: Vec<u64> = vec![2]; // discriminant: derived
        bits.extend(base.0.iter().copied());
        bits.extend(extra);
        Self(bits.into_boxed_slice())
    }
}

fn cost_bits(c: &dlb_common::config::CostConstants) -> [u64; 10] {
    [
        c.tuple_bytes,
        c.scan_tuple_instr,
        c.build_tuple_instr,
        c.probe_tuple_instr,
        c.result_tuple_instr,
        c.queue_access_instr,
        c.interference_instr,
        c.operator_startup_instr,
        c.control_message_instr,
        c.tuples_per_batch,
    ]
}

/// A generated workload compiled into parallel execution plans for a given
/// system (the paper's "40 parallel execution plans": 20 queries × the two
/// best bushy trees each).
#[derive(Debug, Clone)]
pub struct CompiledWorkload {
    queries: Vec<Query>,
    plans: Vec<(usize, ParallelPlan)>,
    fingerprint: WorkloadFingerprint,
}

impl CompiledWorkload {
    /// Generates `params.queries` queries and compiles each into its best
    /// bushy plans for `system` (two per query by default, as in the paper).
    pub fn generate(params: WorkloadParams, system: &HierarchicalSystem) -> Result<Self> {
        Self::generate_with(
            params,
            system,
            OptimizerParams::default(),
            ChainScheduling::OneAtATime,
        )
    }

    /// Full-control variant of [`CompiledWorkload::generate`].
    pub fn generate_with(
        params: WorkloadParams,
        system: &HierarchicalSystem,
        optimizer_params: OptimizerParams,
        chain_scheduling: ChainScheduling,
    ) -> Result<Self> {
        let fingerprint =
            WorkloadFingerprint::generated(&params, &optimizer_params, chain_scheduling, system);
        let queries = WorkloadGenerator::new(params).generate();
        let cost = CostModel::new(
            system.config().costs,
            system.config().disk,
            system.config().cpu,
        );
        let optimizer = Optimizer::new(optimizer_params, cost);
        let mut plans = Vec::new();
        for (qi, query) in queries.iter().enumerate() {
            for tree in optimizer.optimize(query)? {
                let optree = OperatorTree::from_join_tree(&tree);
                let homes = OperatorHomes::all_nodes(&optree, system.nodes());
                let plan = ParallelPlan::build(query.id, optree, homes, chain_scheduling)?;
                plans.push((qi, plan));
            }
        }
        Ok(Self {
            queries,
            plans,
            fingerprint,
        })
    }

    /// Wraps hand-assembled plans (e.g. the §5.3 pipeline-chain plan) as a
    /// workload. Plans are paired with query index 0; `queries` is empty.
    /// The workload receives a process-unique [`WorkloadFingerprint`], so
    /// cached runs of distinct ad-hoc workloads can never be confused.
    pub fn from_plans(plans: Vec<ParallelPlan>) -> Self {
        Self {
            queries: Vec::new(),
            plans: plans.into_iter().map(|p| (0, p)).collect(),
            fingerprint: WorkloadFingerprint::adhoc(),
        }
    }

    /// The cache identity of this workload.
    pub fn fingerprint(&self) -> &WorkloadFingerprint {
        &self.fingerprint
    }

    /// The generated queries.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The compiled plans as `(query index, plan)` pairs.
    pub fn plans(&self) -> &[(usize, ParallelPlan)] {
        &self.plans
    }

    /// Number of compiled plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True when the workload contains no plans.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Iterates over the plans only.
    pub fn iter_plans(&self) -> impl Iterator<Item = &ParallelPlan> {
        self.plans.iter().map(|(_, p)| p)
    }

    /// A sub-workload holding only the plans at `indices` (in the given
    /// order), keeping their `(query index, plan)` pairing.
    ///
    /// The subset's fingerprint is *derived deterministically* from this
    /// workload's fingerprint and the index list, so equal subsets of equal
    /// workloads share [`crate::RunCache`] entries across experiments and
    /// sweep points — this is how [`crate::Experiment::run_mix`] simulates
    /// each query of a mix exactly once per configuration.
    pub fn subset(&self, indices: &[usize]) -> CompiledWorkload {
        let plans = indices.iter().map(|&i| self.plans[i].clone()).collect();
        let fingerprint = WorkloadFingerprint::derived(
            &self.fingerprint,
            std::iter::once(indices.len() as u64).chain(indices.iter().map(|&i| i as u64)),
        );
        CompiledWorkload {
            queries: self.queries.clone(),
            plans,
            fingerprint,
        }
    }
}

/// Per-query descriptor of an inter-query mix: when the query arrives, how
/// it is weighted against concurrent queries, and the redistribution-skew
/// profile its own execution exhibits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixEntry {
    /// Arrival offset from the start of the mix, in seconds.
    pub arrival_secs: f64,
    /// Scheduling priority (≥ 1), the processor-sharing weight of the query
    /// against concurrent queries on the same SM-node.
    pub priority: u32,
    /// Redistribution-skew factor (Zipf theta) of this query's execution.
    pub skew: f64,
}

impl Default for MixEntry {
    fn default() -> Self {
        Self {
            arrival_secs: 0.0,
            priority: 1,
            skew: 0.0,
        }
    }
}

/// N concurrent queries built on top of one [`CompiledWorkload`]: one plan
/// per query (the optimizer's best tree) plus a [`MixEntry`] per query.
///
/// A `QueryMix` is the unit the inter-query scheduler works on (see
/// [`crate::Experiment::run_mix`] and [`dlb_exec::mix`]). Its cache identity
/// flows through the existing fingerprint machinery: the solo runs of its
/// queries are keyed by derived sub-workload fingerprints
/// ([`CompiledWorkload::subset`]) plus the execution options carrying each
/// query's skew profile, so repeated configurations are cache hits while
/// any input difference separates entries.
#[derive(Debug, Clone)]
pub struct QueryMix {
    workload: Arc<CompiledWorkload>,
    entries: Vec<MixEntry>,
    /// Plan index (within the workload) chosen for each query.
    chosen: Vec<usize>,
}

impl QueryMix {
    /// Builds a mix over `workload` with one [`MixEntry`] per query.
    ///
    /// The first compiled plan of each query becomes the query's plan;
    /// `entries` must therefore have exactly one element per distinct query
    /// of the workload.
    pub fn new(workload: Arc<CompiledWorkload>, entries: Vec<MixEntry>) -> Result<Self> {
        let mut chosen: Vec<usize> = Vec::new();
        let mut seen_query = std::collections::BTreeSet::new();
        for (plan_index, (query_index, _)) in workload.plans().iter().enumerate() {
            if seen_query.insert(*query_index) {
                chosen.push(plan_index);
            }
        }
        if chosen.len() != entries.len() {
            return Err(dlb_common::DlbError::config(format!(
                "mix has {} entries for a workload of {} queries",
                entries.len(),
                chosen.len()
            )));
        }
        for (i, e) in entries.iter().enumerate() {
            if e.priority == 0 {
                return Err(dlb_common::DlbError::config(format!(
                    "mix query {i} has priority 0 (priorities are ≥ 1)"
                )));
            }
            if !(e.arrival_secs.is_finite() && e.arrival_secs >= 0.0) {
                return Err(dlb_common::DlbError::config(format!(
                    "mix query {i} has invalid arrival {}",
                    e.arrival_secs
                )));
            }
            if !(e.skew.is_finite() && (0.0..=1.0).contains(&e.skew)) {
                return Err(dlb_common::DlbError::config(format!(
                    "mix query {i} has skew {} outside [0, 1]",
                    e.skew
                )));
            }
        }
        Ok(Self {
            workload,
            entries,
            chosen,
        })
    }

    /// The inner compiled workload.
    pub fn workload(&self) -> &Arc<CompiledWorkload> {
        &self.workload
    }

    /// The per-query descriptors, in query order.
    pub fn entries(&self) -> &[MixEntry] {
        &self.entries
    }

    /// Number of queries in the mix.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the mix holds no queries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The workload plan index chosen for query `q`.
    pub fn plan_index(&self, q: usize) -> usize {
        self.chosen[q]
    }

    /// The plan chosen for query `q`.
    pub fn plan(&self, q: usize) -> &ParallelPlan {
        &self.workload.plans()[self.chosen[q]].1
    }

    /// Working-set estimate of query `q`, in bytes: the hash tables its plan
    /// builds (the quantity the engine's global load balancing ships and the
    /// admission limit reasons about).
    pub fn memory_demand(&self, q: usize, cost: &CostModel) -> u64 {
        self.plan(q)
            .tree
            .operators()
            .iter()
            .filter(|op| op.kind.is_build())
            .map(|op| cost.hash_table_bytes(op.input_tuples))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_compiles_two_plans_per_query() {
        let system = HierarchicalSystem::shared_memory(4);
        let params = WorkloadParams::tiny(3, 6, 77);
        let w = CompiledWorkload::generate(params, &system).unwrap();
        assert_eq!(w.queries().len(), 3);
        assert!(w.len() >= 3 && w.len() <= 6, "plans {}", w.len());
        assert!(!w.is_empty());
        for plan in w.iter_plans() {
            plan.validate().unwrap();
            assert_eq!(plan.tree.scan_count(), 6);
        }
    }

    #[test]
    fn plans_reference_their_query() {
        let system = HierarchicalSystem::hierarchical(2, 2);
        let w = CompiledWorkload::generate(WorkloadParams::tiny(2, 4, 5), &system).unwrap();
        for (qi, plan) in w.plans() {
            assert_eq!(plan.query, w.queries()[*qi].id);
        }
    }

    #[test]
    fn fingerprints_identify_generation_inputs() {
        let system = HierarchicalSystem::hierarchical(2, 2);
        let params = WorkloadParams::tiny(2, 4, 5);
        let a = CompiledWorkload::generate(params, &system).unwrap();
        let b = CompiledWorkload::generate(params, &system).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Any generation input difference shows in the fingerprint: seed...
        let c = CompiledWorkload::generate(WorkloadParams::tiny(2, 4, 6), &system).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        // ...and the node count the homes were compiled for.
        let other = HierarchicalSystem::hierarchical(3, 2);
        let d = CompiledWorkload::generate(params, &other).unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn adhoc_workloads_never_alias() {
        let system = HierarchicalSystem::shared_memory(2);
        let w = CompiledWorkload::generate(WorkloadParams::tiny(1, 3, 9), &system).unwrap();
        let plan = w.iter_plans().next().unwrap().clone();
        let a = CompiledWorkload::from_plans(vec![plan.clone()]);
        let b = CompiledWorkload::from_plans(vec![plan]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_eq!(a.len(), 1);
        assert!(a.queries().is_empty());
    }

    #[test]
    fn query_mix_picks_one_plan_per_query() {
        let system = HierarchicalSystem::hierarchical(2, 2);
        let w =
            Arc::new(CompiledWorkload::generate(WorkloadParams::tiny(3, 4, 5), &system).unwrap());
        let entries = vec![
            MixEntry::default(),
            MixEntry {
                arrival_secs: 1.5,
                priority: 2,
                skew: 0.4,
            },
            MixEntry::default(),
        ];
        let mix = QueryMix::new(Arc::clone(&w), entries).unwrap();
        assert_eq!(mix.len(), 3);
        for q in 0..3 {
            assert_eq!(
                w.plans()[mix.plan_index(q)].0,
                q,
                "plan belongs to query {q}"
            );
        }
        // A build-heavy plan has a positive memory demand.
        let cost = CostModel::new(
            system.config().costs,
            system.config().disk,
            system.config().cpu,
        );
        assert!(mix.memory_demand(0, &cost) > 0);
    }

    #[test]
    fn subsets_derive_deterministic_distinct_fingerprints() {
        let system = HierarchicalSystem::hierarchical(2, 2);
        let params = WorkloadParams::tiny(2, 4, 5);
        let w = CompiledWorkload::generate(params, &system).unwrap();
        let sub = w.subset(&[0, 2]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.plans()[0].0, w.plans()[0].0);
        // Equal workload + equal indices → equal fingerprints, even across
        // separate generations (this is what lets mix solo runs share the
        // run cache across strategies and sweep points).
        let again = CompiledWorkload::generate(params, &system)
            .unwrap()
            .subset(&[0, 2]);
        assert_eq!(sub.fingerprint(), again.fingerprint());
        // Different indices, the full set, and the parent never collide.
        assert_ne!(sub.fingerprint(), w.subset(&[0, 1]).fingerprint());
        assert_ne!(sub.fingerprint(), w.fingerprint());
        let all: Vec<usize> = (0..w.len()).collect();
        assert_ne!(w.subset(&all).fingerprint(), w.fingerprint());
    }

    #[test]
    fn query_mix_rejects_mismatched_or_invalid_entries() {
        let system = HierarchicalSystem::shared_memory(2);
        let w =
            Arc::new(CompiledWorkload::generate(WorkloadParams::tiny(2, 3, 9), &system).unwrap());
        // Wrong entry count.
        assert!(QueryMix::new(Arc::clone(&w), vec![MixEntry::default()]).is_err());
        // Invalid per-query values.
        for bad in [
            MixEntry {
                priority: 0,
                ..MixEntry::default()
            },
            MixEntry {
                arrival_secs: -1.0,
                ..MixEntry::default()
            },
            MixEntry {
                skew: 1.5,
                ..MixEntry::default()
            },
        ] {
            let entries = vec![bad, MixEntry::default()];
            assert!(QueryMix::new(Arc::clone(&w), entries).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn homes_match_the_target_system() {
        let system = HierarchicalSystem::hierarchical(3, 2);
        let w = CompiledWorkload::generate(WorkloadParams::tiny(1, 4, 9), &system).unwrap();
        for plan in w.iter_plans() {
            for op in plan.tree.operators() {
                assert_eq!(plan.homes.home(op.id).len(), 3);
            }
        }
    }
}
