//! Result aggregation following the paper's methodology (§5.1.3).
//!
//! Because the workload mixes very different queries, the paper never
//! averages absolute response times. Every figure point is
//!
//! ```text
//! (1/n) * Σ_plans  response_time(plan) / reference_response_time(plan)
//! ```
//!
//! i.e. the mean of per-plan ratios against a reference strategy or
//! configuration. Speedups are computed the same way with the one-processor
//! run as the reference.

use crate::experiment::PlanRun;
use dlb_common::Duration;
use serde::{Deserialize, Serialize};

/// Mean of per-plan response-time ratios of `runs` against `reference`
/// (the paper's relative-performance metric; 1.0 = identical, > 1.0 = slower
/// than the reference).
///
/// Plans present in only one of the two sets are ignored; plans are matched
/// by `plan_index`.
pub fn relative_performance(runs: &[PlanRun], reference: &[PlanRun]) -> f64 {
    let mut ratios = Vec::new();
    for run in runs {
        if let Some(r) = reference.iter().find(|r| r.plan_index == run.plan_index) {
            let denom = r.report.response_secs();
            if denom > 0.0 {
                ratios.push(run.report.response_secs() / denom);
            }
        }
    }
    if ratios.is_empty() {
        return f64::NAN;
    }
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

/// Mean of per-plan speedups of `runs` against the single-processor
/// `baseline` (ratio of baseline time over run time).
pub fn speedup(runs: &[PlanRun], baseline: &[PlanRun]) -> f64 {
    let inverse = relative_performance(runs, baseline);
    if inverse > 0.0 {
        1.0 / inverse
    } else {
        f64::NAN
    }
}

/// Aggregate statistics of one experiment run (one strategy on one machine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of plans executed.
    pub plans: usize,
    /// Mean response time (seconds) — only meaningful to compare runs of the
    /// *same* workload.
    pub mean_response_secs: f64,
    /// Mean processor utilization.
    pub mean_utilization: f64,
    /// Mean fraction of processor time spent idle.
    pub mean_idle_fraction: f64,
    /// Total inter-node messages across all plans.
    pub total_messages: u64,
    /// Total inter-node bytes across all plans.
    pub total_network_bytes: u64,
    /// Total bytes shipped by global load balancing across all plans.
    pub total_lb_bytes: u64,
    /// Total global load-balancing acquisitions.
    pub total_lb_acquisitions: u64,
    /// Longest single-plan response time.
    pub max_response: Duration,
}

impl Summary {
    /// Builds a summary from a set of plan runs.
    pub fn from_runs(runs: &[PlanRun]) -> Self {
        let plans = runs.len();
        let mean = |f: &dyn Fn(&PlanRun) -> f64| -> f64 {
            if plans == 0 {
                0.0
            } else {
                runs.iter().map(f).sum::<f64>() / plans as f64
            }
        };
        Self {
            plans,
            mean_response_secs: mean(&|r| r.report.response_secs()),
            mean_utilization: mean(&|r| r.report.utilization),
            mean_idle_fraction: mean(&|r| r.report.idle_fraction()),
            total_messages: runs.iter().map(|r| r.report.messages).sum(),
            total_network_bytes: runs.iter().map(|r| r.report.network_bytes).sum(),
            total_lb_bytes: runs.iter().map(|r| r.report.lb_bytes).sum(),
            total_lb_acquisitions: runs.iter().map(|r| r.report.lb_acquisitions).sum(),
            max_response: runs
                .iter()
                .map(|r| r.report.response_time)
                .max()
                .unwrap_or(Duration::ZERO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_exec::{ExecutionReport, Strategy};

    fn run(plan_index: usize, secs: u64) -> PlanRun {
        PlanRun {
            plan_index,
            query_index: plan_index / 2,
            report: ExecutionReport {
                strategy: Strategy::dynamic(),
                nodes: 1,
                processors_per_node: 4,
                response_time: Duration::from_secs(secs),
                activations: 10,
                tuples_processed: 100,
                result_tuples: 10,
                total_busy: Duration::from_secs(secs * 3),
                total_idle: Duration::from_secs(secs),
                utilization: 0.75,
                per_node_busy: vec![Duration::from_secs(secs * 3)],
                messages: 2,
                network_bytes: 100,
                lb_requests: 1,
                lb_acquisitions: 1,
                lb_bytes: 50,
                events: 5,
            },
        }
    }

    #[test]
    fn relative_performance_is_mean_of_ratios() {
        let reference = vec![run(0, 10), run(1, 20)];
        let slower = vec![run(0, 20), run(1, 20)];
        // Ratios: 2.0 and 1.0 -> mean 1.5.
        let rel = relative_performance(&slower, &reference);
        assert!((rel - 1.5).abs() < 1e-12);
        // Speedup is the inverse direction.
        let sp = speedup(&reference, &slower);
        assert!((sp - 1.0 / relative_performance(&reference, &slower)).abs() < 1e-12);
    }

    #[test]
    fn unmatched_plans_are_ignored() {
        let reference = vec![run(0, 10)];
        let runs = vec![run(0, 10), run(7, 99)];
        assert!((relative_performance(&runs, &reference) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_give_nan() {
        assert!(relative_performance(&[], &[]).is_nan());
        assert!(speedup(&[], &[]).is_nan());
    }

    #[test]
    fn summary_aggregates_counters() {
        let runs = vec![run(0, 10), run(1, 30)];
        let s = Summary::from_runs(&runs);
        assert_eq!(s.plans, 2);
        assert!((s.mean_response_secs - 20.0).abs() < 1e-12);
        assert!((s.mean_utilization - 0.75).abs() < 1e-12);
        assert_eq!(s.total_messages, 4);
        assert_eq!(s.total_lb_bytes, 100);
        assert_eq!(s.total_lb_acquisitions, 2);
        assert_eq!(s.max_response, Duration::from_secs(30));
        let empty = Summary::from_runs(&[]);
        assert_eq!(empty.plans, 0);
        assert_eq!(empty.max_response, Duration::ZERO);
    }
}
