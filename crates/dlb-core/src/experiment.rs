//! Experiments: running a whole workload under one strategy.
//!
//! The paper's methodology (§5.1.3) never averages absolute response times of
//! different plans; every figure point is the *average of per-plan ratios*
//! against a reference strategy. [`Experiment`] produces the per-plan reports
//! and [`crate::summary`] implements the ratio aggregation.
//!
//! Every plan execution is a self-contained, seeded, deterministic
//! simulation, so [`Experiment::run`] fans the plans of the workload out
//! across worker threads ([`rayon`]); results are collected in plan order and
//! are bit-identical to a sequential run ([`Experiment::run_sequential`]
//! exposes the sequential baseline for validation and benchmarking). Repeated
//! runs of the same strategy are answered from a cache of shared
//! [`Arc`]-backed results, keyed structurally (strategy, skew bits, machine
//! shape) so that hits cost one reference count instead of a deep clone.
//!
//! The worker-thread count can be pinned with the `HIERDB_THREADS`
//! environment variable (see [`init_threads_from_env`]) or programmatically
//! with [`set_threads`].

use crate::system::HierarchicalSystem;
use crate::workload::CompiledWorkload;
use dlb_common::Result;
use dlb_exec::{ExecutionReport, Strategy};
use dlb_query::generator::WorkloadParams;
use dlb_query::plan::ParallelPlan;
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// The report of one plan execution within an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRun {
    /// Index of the plan within the workload.
    pub plan_index: usize,
    /// Index of the query the plan answers.
    pub query_index: usize,
    /// The execution report.
    pub report: ExecutionReport,
}

/// Structured cache key of one experiment run.
///
/// Replaces the previous stringly `format!("{:?}/skew{}/{}x{}", ...)` key:
/// floats are keyed by their IEEE-754 bit patterns, so two skews (or FP error
/// rates) that differ by less than any display precision can never collide,
/// and lookups hash a few integers instead of formatting and comparing
/// strings.
///
/// The cache this key indexes is **per [`Experiment`]** (each `on_system`
/// copy starts empty), so within one cache every field except `strategy` is
/// constant; skew and the machine shape are included defensively, as the
/// seed's key did. They are *not* sufficient for a cache shared across
/// systems — reports also depend on the remaining [`dlb_exec::ExecOptions`]
/// fields (execution seed, steal tuning, …), so any future cross-system
/// cache must fold the full options into the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunKey {
    strategy: StrategyKey,
    skew_bits: u64,
    nodes: u32,
    processors_per_node: u32,
}

/// The strategy component of a [`RunKey`]; FP's error rate is keyed by bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum StrategyKey {
    Dynamic,
    Fixed { error_bits: u64 },
    Synchronous,
}

impl RunKey {
    /// Builds the key for `strategy` on a machine of `nodes` ×
    /// `processors_per_node` with redistribution skew `skew`.
    pub fn new(strategy: Strategy, skew: f64, nodes: u32, processors_per_node: u32) -> Self {
        let strategy = match strategy {
            Strategy::Dynamic => StrategyKey::Dynamic,
            Strategy::Fixed { error_rate } => StrategyKey::Fixed {
                error_bits: error_rate.to_bits(),
            },
            Strategy::Synchronous => StrategyKey::Synchronous,
        };
        Self {
            strategy,
            skew_bits: skew.to_bits(),
            nodes,
            processors_per_node,
        }
    }
}

/// Pins the number of worker threads used by [`Experiment::run`] (0 =
/// automatic, one per available core).
///
/// Call this **before the first parallel operation**. The offline rayon shim
/// allows reconfiguring at any time, but the real rayon's `build_global`
/// fails once the global pool has been used — that failure is swallowed
/// here, so a late call would silently keep the existing thread count.
pub fn set_threads(n: usize) {
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global();
}

/// Applies the `HIERDB_THREADS` environment variable, if set and parseable,
/// to the worker-thread pool. Figure and benchmark binaries call this once at
/// start-up; unset or invalid values leave the automatic setting in place.
pub fn init_threads_from_env() {
    if let Some(n) = std::env::var("HIERDB_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        set_threads(n);
    }
}

/// An experiment: a system, a compiled workload, and the machinery to execute
/// every plan under a chosen strategy.
#[derive(Debug, Clone)]
pub struct Experiment {
    system: HierarchicalSystem,
    workload: Arc<CompiledWorkload>,
    /// Cache of runs keyed by [`RunKey`], so repeated references (e.g. SP as
    /// the baseline of several figures) are computed once and shared without
    /// deep-cloning the reports.
    cache: Arc<Mutex<HashMap<RunKey, Arc<Vec<PlanRun>>>>>,
}

impl Experiment {
    /// Starts building an experiment.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// Creates an experiment from an existing system and workload.
    pub fn new(system: HierarchicalSystem, workload: CompiledWorkload) -> Self {
        Self {
            system,
            workload: Arc::new(workload),
            cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The system under test.
    pub fn system(&self) -> &HierarchicalSystem {
        &self.system
    }

    /// The compiled workload.
    pub fn workload(&self) -> &CompiledWorkload {
        &self.workload
    }

    /// Returns a copy of this experiment running on a different system but
    /// the same workload (used for processor-count sweeps). The cache is not
    /// shared since reports depend on the machine.
    pub fn on_system(&self, system: HierarchicalSystem) -> Self {
        Self {
            system,
            workload: Arc::clone(&self.workload),
            cache: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    fn cache_key(&self, strategy: Strategy) -> RunKey {
        RunKey::new(
            strategy,
            self.system.options().skew,
            self.system.nodes(),
            self.system.processors_per_node(),
        )
    }

    /// Executes one plan of the workload (shared by the parallel and
    /// sequential paths so that both run byte-for-byte the same simulation).
    fn run_plan(
        &self,
        strategy: Strategy,
        plan_index: usize,
        entry: &(usize, ParallelPlan),
    ) -> Result<PlanRun> {
        let (query_index, plan) = entry;
        let report = self.system.run(plan, strategy)?;
        Ok(PlanRun {
            plan_index,
            query_index: *query_index,
            report,
        })
    }

    /// Runs every plan of the workload under `strategy`, returning one
    /// [`PlanRun`] per plan.
    ///
    /// Plans are independent seeded simulations, so they are fanned out
    /// across worker threads; results come back in plan order and are
    /// bit-identical to [`run_sequential`]. Results are cached per
    /// [`RunKey`]; cache hits share the same allocation.
    ///
    /// [`run_sequential`]: Experiment::run_sequential
    pub fn run(&self, strategy: Strategy) -> Result<Arc<Vec<PlanRun>>> {
        let key = self.cache_key(strategy);
        if let Some(cached) = self.cache.lock().get(&key) {
            return Ok(Arc::clone(cached));
        }
        let runs: Result<Vec<PlanRun>> = self
            .workload
            .plans()
            .par_iter()
            .enumerate()
            .map(|(plan_index, entry)| self.run_plan(strategy, plan_index, entry))
            .collect();
        let runs = Arc::new(runs?);
        // Re-check under the lock: a concurrent caller with the same key may
        // have finished first. Keeping the first insertion means every
        // caller shares one allocation, preserving the `Arc::ptr_eq`
        // cache-hit contract even under racing runs.
        let mut cache = self.cache.lock();
        let entry = cache.entry(key).or_insert(runs);
        Ok(Arc::clone(entry))
    }

    /// Runs every plan strictly sequentially on the calling thread, bypassing
    /// the cache: the baseline against which the parallel fan-out of [`run`]
    /// is validated (determinism tests) and benchmarked (`bench_report`).
    ///
    /// [`run`]: Experiment::run
    pub fn run_sequential(&self, strategy: Strategy) -> Result<Vec<PlanRun>> {
        self.workload
            .plans()
            .iter()
            .enumerate()
            .map(|(plan_index, entry)| self.run_plan(strategy, plan_index, entry))
            .collect()
    }
}

/// Builder for [`Experiment`].
#[derive(Debug, Clone, Default)]
pub struct ExperimentBuilder {
    system: Option<HierarchicalSystem>,
    workload_params: Option<WorkloadParams>,
}

impl ExperimentBuilder {
    /// Sets the system under test.
    pub fn system(mut self, system: HierarchicalSystem) -> Self {
        self.system = Some(system);
        self
    }

    /// Sets the workload-generation parameters.
    pub fn workload(mut self, params: WorkloadParams) -> Self {
        self.workload_params = Some(params);
        self
    }

    /// Generates the workload and builds the experiment.
    pub fn build(self) -> Result<Experiment> {
        let system = self
            .system
            .unwrap_or_else(|| HierarchicalSystem::builder().build());
        let params = self.workload_params.unwrap_or_default();
        let workload = CompiledWorkload::generate(params, &system)?;
        Ok(Experiment::new(system, workload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_experiment(nodes: u32, procs: u32) -> Experiment {
        Experiment::builder()
            .system(HierarchicalSystem::hierarchical(nodes, procs))
            .workload(WorkloadParams::tiny(2, 4, 11))
            .build()
            .unwrap()
    }

    #[test]
    fn experiment_runs_every_plan() {
        let exp = small_experiment(1, 4);
        let runs = exp.run(Strategy::Dynamic).unwrap();
        assert_eq!(runs.len(), exp.workload().len());
        for run in runs.iter() {
            assert!(run.report.response_time.as_secs_f64() > 0.0);
        }
    }

    #[test]
    fn cache_returns_identical_results() {
        let exp = small_experiment(1, 2);
        let a = exp.run(Strategy::Dynamic).unwrap();
        let b = exp.run(Strategy::Dynamic).unwrap();
        assert_eq!(a, b);
        // A hit shares the allocation instead of deep-cloning the reports.
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn sequential_run_matches_parallel_run() {
        let exp = small_experiment(2, 2);
        let parallel = exp.run(Strategy::Dynamic).unwrap();
        let sequential = exp.run_sequential(Strategy::Dynamic).unwrap();
        assert_eq!(*parallel, sequential);
    }

    #[test]
    fn on_system_keeps_the_same_workload() {
        let exp = small_experiment(1, 2);
        let bigger = exp.on_system(HierarchicalSystem::shared_memory(8));
        assert_eq!(bigger.workload().len(), exp.workload().len());
        let small = exp.run(Strategy::Dynamic).unwrap();
        let big = bigger.run(Strategy::Dynamic).unwrap();
        // More processors must not be slower on average.
        let mean_small: f64 =
            small.iter().map(|r| r.report.response_secs()).sum::<f64>() / small.len() as f64;
        let mean_big: f64 =
            big.iter().map(|r| r.report.response_secs()).sum::<f64>() / big.len() as f64;
        assert!(mean_big <= mean_small * 1.05);
    }

    #[test]
    fn default_builder_uses_default_system() {
        let exp = Experiment::builder()
            .workload(WorkloadParams::tiny(1, 3, 3))
            .build()
            .unwrap();
        assert_eq!(exp.system().nodes(), 4);
    }

    #[test]
    fn run_key_distinguishes_skews_beyond_display_precision() {
        // Regression test for the stringly cache key: two skews whose f64
        // bit patterns differ by one ULP must produce distinct keys, no
        // matter how they would format.
        let a = 0.3_f64;
        let b = f64::from_bits(a.to_bits() + 1);
        assert_ne!(a.to_bits(), b.to_bits());
        let ka = RunKey::new(Strategy::Dynamic, a, 4, 8);
        let kb = RunKey::new(Strategy::Dynamic, b, 4, 8);
        assert_ne!(ka, kb);
        // Same for FP error rates.
        let ea = RunKey::new(Strategy::Fixed { error_rate: a }, 0.0, 4, 8);
        let eb = RunKey::new(Strategy::Fixed { error_rate: b }, 0.0, 4, 8);
        assert_ne!(ea, eb);
        // Identical parameters produce identical keys.
        assert_eq!(ka, RunKey::new(Strategy::Dynamic, 0.3, 4, 8));
    }

    #[test]
    fn run_key_distinguishes_strategies_and_machines() {
        let dp = RunKey::new(Strategy::Dynamic, 0.0, 4, 8);
        let sp = RunKey::new(Strategy::Synchronous, 0.0, 4, 8);
        let fp = RunKey::new(Strategy::Fixed { error_rate: 0.0 }, 0.0, 4, 8);
        assert_ne!(dp, sp);
        assert_ne!(dp, fp);
        assert_ne!(fp, sp);
        assert_ne!(dp, RunKey::new(Strategy::Dynamic, 0.0, 2, 8));
        assert_ne!(dp, RunKey::new(Strategy::Dynamic, 0.0, 4, 4));
    }

    #[test]
    fn distinct_strategies_are_cached_separately() {
        let exp = small_experiment(1, 2);
        let dp = exp.run(Strategy::Dynamic).unwrap();
        let fp = exp.run(Strategy::Fixed { error_rate: 0.0 }).unwrap();
        assert!(!Arc::ptr_eq(&dp, &fp));
        // Both stay cached.
        assert!(Arc::ptr_eq(&dp, &exp.run(Strategy::Dynamic).unwrap()));
        assert!(Arc::ptr_eq(
            &fp,
            &exp.run(Strategy::Fixed { error_rate: 0.0 }).unwrap()
        ));
    }
}
