//! Experiments: running a whole workload under one strategy.
//!
//! The paper's methodology (§5.1.3) never averages absolute response times of
//! different plans; every figure point is the *average of per-plan ratios*
//! against a reference strategy. [`Experiment`] produces the per-plan reports
//! and [`crate::summary`] implements the ratio aggregation.

use crate::system::HierarchicalSystem;
use crate::workload::CompiledWorkload;
use dlb_common::Result;
use dlb_exec::{ExecutionReport, Strategy};
use dlb_query::generator::WorkloadParams;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The report of one plan execution within an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRun {
    /// Index of the plan within the workload.
    pub plan_index: usize,
    /// Index of the query the plan answers.
    pub query_index: usize,
    /// The execution report.
    pub report: ExecutionReport,
}

/// An experiment: a system, a compiled workload, and the machinery to execute
/// every plan under a chosen strategy.
#[derive(Debug, Clone)]
pub struct Experiment {
    system: HierarchicalSystem,
    workload: Arc<CompiledWorkload>,
    /// Cache of runs keyed by strategy label + skew, so repeated references
    /// (e.g. SP as the baseline of several figures) are computed once.
    cache: Arc<Mutex<Vec<(String, Vec<PlanRun>)>>>,
}

impl Experiment {
    /// Starts building an experiment.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// Creates an experiment from an existing system and workload.
    pub fn new(system: HierarchicalSystem, workload: CompiledWorkload) -> Self {
        Self {
            system,
            workload: Arc::new(workload),
            cache: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The system under test.
    pub fn system(&self) -> &HierarchicalSystem {
        &self.system
    }

    /// The compiled workload.
    pub fn workload(&self) -> &CompiledWorkload {
        &self.workload
    }

    /// Returns a copy of this experiment running on a different system but
    /// the same workload (used for processor-count sweeps). The cache is not
    /// shared since reports depend on the machine.
    pub fn on_system(&self, system: HierarchicalSystem) -> Self {
        Self {
            system,
            workload: Arc::clone(&self.workload),
            cache: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn cache_key(&self, strategy: Strategy) -> String {
        format!(
            "{:?}/skew{}/{}x{}",
            strategy,
            self.system.options().skew,
            self.system.nodes(),
            self.system.processors_per_node()
        )
    }

    /// Runs every plan of the workload under `strategy`, returning one
    /// [`PlanRun`] per plan. Results are cached per strategy.
    pub fn run(&self, strategy: Strategy) -> Result<Vec<PlanRun>> {
        let key = self.cache_key(strategy);
        if let Some((_, cached)) = self.cache.lock().iter().find(|(k, _)| *k == key) {
            return Ok(cached.clone());
        }
        let mut runs = Vec::with_capacity(self.workload.len());
        for (plan_index, (query_index, plan)) in self.workload.plans().iter().enumerate() {
            let report = self.system.run(plan, strategy)?;
            runs.push(PlanRun {
                plan_index,
                query_index: *query_index,
                report,
            });
        }
        self.cache.lock().push((key, runs.clone()));
        Ok(runs)
    }
}

/// Builder for [`Experiment`].
#[derive(Debug, Clone, Default)]
pub struct ExperimentBuilder {
    system: Option<HierarchicalSystem>,
    workload_params: Option<WorkloadParams>,
}

impl ExperimentBuilder {
    /// Sets the system under test.
    pub fn system(mut self, system: HierarchicalSystem) -> Self {
        self.system = Some(system);
        self
    }

    /// Sets the workload-generation parameters.
    pub fn workload(mut self, params: WorkloadParams) -> Self {
        self.workload_params = Some(params);
        self
    }

    /// Generates the workload and builds the experiment.
    pub fn build(self) -> Result<Experiment> {
        let system = self.system.unwrap_or_else(|| HierarchicalSystem::builder().build());
        let params = self.workload_params.unwrap_or_default();
        let workload = CompiledWorkload::generate(params, &system)?;
        Ok(Experiment::new(system, workload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_experiment(nodes: u32, procs: u32) -> Experiment {
        Experiment::builder()
            .system(HierarchicalSystem::hierarchical(nodes, procs))
            .workload(WorkloadParams::tiny(2, 4, 11))
            .build()
            .unwrap()
    }

    #[test]
    fn experiment_runs_every_plan() {
        let exp = small_experiment(1, 4);
        let runs = exp.run(Strategy::Dynamic).unwrap();
        assert_eq!(runs.len(), exp.workload().len());
        for run in &runs {
            assert!(run.report.response_time.as_secs_f64() > 0.0);
        }
    }

    #[test]
    fn cache_returns_identical_results() {
        let exp = small_experiment(1, 2);
        let a = exp.run(Strategy::Dynamic).unwrap();
        let b = exp.run(Strategy::Dynamic).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn on_system_keeps_the_same_workload() {
        let exp = small_experiment(1, 2);
        let bigger = exp.on_system(HierarchicalSystem::shared_memory(8));
        assert_eq!(bigger.workload().len(), exp.workload().len());
        let small = exp.run(Strategy::Dynamic).unwrap();
        let big = bigger.run(Strategy::Dynamic).unwrap();
        // More processors must not be slower on average.
        let mean_small: f64 = small.iter().map(|r| r.report.response_secs()).sum::<f64>()
            / small.len() as f64;
        let mean_big: f64 =
            big.iter().map(|r| r.report.response_secs()).sum::<f64>() / big.len() as f64;
        assert!(mean_big <= mean_small * 1.05);
    }

    #[test]
    fn default_builder_uses_default_system() {
        let exp = Experiment::builder()
            .workload(WorkloadParams::tiny(1, 3, 3))
            .build()
            .unwrap();
        assert_eq!(exp.system().nodes(), 4);
    }
}
