//! Experiments: running a whole workload under one strategy.
//!
//! The paper's methodology (§5.1.3) never averages absolute response times of
//! different plans; every figure point is the *average of per-plan ratios*
//! against a reference strategy. [`Experiment`] produces the per-plan reports
//! and [`crate::summary`] implements the ratio aggregation.
//!
//! Every plan execution is a self-contained, seeded, deterministic
//! simulation, so [`Experiment::run`] fans the plans of the workload out
//! across worker threads ([`rayon`]); results are collected in plan order and
//! are bit-identical to a sequential run ([`Experiment::run_sequential`]
//! exposes the sequential baseline for validation and benchmarking).
//!
//! Repeated runs are answered from a [`RunCache`]: a workspace-level cache of
//! shared [`Arc`]-backed results keyed by [`RunKey`], a bit-exact fingerprint
//! of *everything* a report depends on — strategy, the full
//! [`dlb_exec::ExecOptions`] (seed, flow control, contention model, steal
//! policy), the full [`dlb_common::SystemConfig`] (machine shape and every
//! hardware parameter) and the workload identity
//! ([`crate::workload::WorkloadFingerprint`]). Because the key is total, one
//! cache can safely be shared across systems and experiments — e.g. by every
//! point of a scenario sweep ([`crate::scenario`]) — and a hit costs one
//! reference count instead of a recomputation or a deep clone.
//!
//! The worker-thread count can be pinned with the `HIERDB_THREADS`
//! environment variable (see [`init_threads_from_env`]) or programmatically
//! with [`set_threads`].

use crate::system::HierarchicalSystem;
use crate::workload::{CompiledWorkload, MixEntry, QueryMix, WorkloadFingerprint};
use dlb_common::config::SystemConfig;
use dlb_common::{NodeId, Result};
use dlb_exec::mix::{schedule_mix, MixJob, MixMode, MixPolicy, MixSchedule};
use dlb_exec::{
    execute_cosimulated_faulted, execute_open, CoSimQuery, CoSimReport, ExecOptions,
    ExecutionReport, FaultStats, FrontendConfig, OpenReport, OpenTemplate, OpenTraffic,
    QueryOutcome, Strategy, TopologyEvent,
};
use dlb_query::cost::CostModel;
use dlb_query::generator::WorkloadParams;
use dlb_query::plan::ParallelPlan;
use dlb_traffic::ArrivalSpec;
use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// The report of one plan execution within an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanRun {
    /// Index of the plan within the workload.
    pub plan_index: usize,
    /// Index of the query the plan answers.
    pub query_index: usize,
    /// The execution report.
    pub report: ExecutionReport,
}

/// The outcome of [`Experiment::run_mix`]: the inter-query schedule plus the
/// per-query solo runs it was derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct MixRun {
    /// Admission, placement and response times of every query of the mix.
    /// Under [`MixMode::CoSimulated`] these come from the interleaved engine
    /// run; under [`MixMode::Composed`] from the analytic scheduler.
    pub schedule: MixSchedule,
    /// The *composed* (analytic) schedule of the same mix, carried alongside
    /// a co-simulated schedule so reports can contrast the two fidelities.
    /// `None` for composed-mode runs (the main schedule already is one).
    pub composed: Option<MixSchedule>,
    /// One solo run per query (its plan, executed alone on the query's
    /// placement shape with the query's skew profile). `Arc`-shared so that
    /// mix-cache hits clone a reference, not the per-plan reports.
    pub solo: Arc<Vec<PlanRun>>,
    /// Degradation accounting of the injected topology events. `Some` (even
    /// if all-zero) exactly when the run was produced by
    /// [`Experiment::run_mix_with_topology`] with a non-empty event stream.
    pub faults: Option<FaultStats>,
    /// The same mix co-simulated **without** the topology events: the
    /// no-fault baseline that per-query response inflation is measured
    /// against. `Some` exactly when `faults` is.
    pub fault_free: Option<MixSchedule>,
}

/// The outcome of [`Experiment::run_open`]: the open-system report plus the
/// per-template solo runs its slowdown baseline was derived from.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenRun {
    /// Streaming latency sketches, throughput and aggregate counters of the
    /// whole arrival stream (see [`dlb_exec::OpenReport`]).
    pub report: OpenReport,
    /// One solo run per template (its plan, executed alone on the whole
    /// machine). `Arc`-shared so that open-cache hits clone a reference, not
    /// the per-plan reports.
    pub solo: Arc<Vec<PlanRun>>,
}

/// Structured cache key of one experiment run: a bit-exact fingerprint of
/// every input of the simulation.
///
/// The seed's key (strategy, skew, machine shape) was only sufficient for a
/// cache private to one `Experiment`, where the remaining inputs were
/// constant; sharing results *across* systems needs the rest — the execution
/// seed, steal tuning, flow control, contention model, every hardware
/// parameter, and the identity of the workload itself. `RunKey` folds all of
/// them in: floats are keyed by their IEEE-754 bit patterns, so two values
/// that differ by less than any display precision can never collide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunKey {
    strategy: StrategyKey,
    bits: Box<[u64]>,
    workload: WorkloadFingerprint,
}

/// The strategy component of a [`RunKey`]: the policy's registered name plus
/// its parameter values keyed by IEEE-754 bit patterns (FP's error rate,
/// Diffusion's radius, Threshold's hi/lo — whatever the policy declares, in
/// identity order). Trait-object identity reduced to plain data, so two
/// handles of one policy collide exactly when their parameters do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct StrategyKey {
    name: &'static str,
    param_bits: [u64; dlb_exec::strategy::MAX_PARAMS],
}

impl RunKey {
    /// Builds the key for `strategy` under `options` on the machine described
    /// by `config`, running the workload identified by `workload`.
    pub fn new(
        strategy: Strategy,
        options: &ExecOptions,
        config: &SystemConfig,
        workload: &WorkloadFingerprint,
    ) -> Self {
        Self::with_extra(strategy, options, config, workload, std::iter::empty())
    }

    /// The key of one inter-query mix run: the base fingerprint extended
    /// with the mix identity — evaluation mode, placement policy, every
    /// per-query descriptor (arrival, priority, skew) and every per-query
    /// memory demand (the working sets the admission — analytic or
    /// co-simulated — reasons about; placement masks derive from the policy
    /// and these inputs, so the mask+memory bits of a co-simulated run are
    /// fully pinned down), and the injected topology-event stream (time,
    /// node and kind of every event — the recovery policies acting on them
    /// are part of the base options bits). The machine's memory limit is
    /// already part of the base `config` bits.
    #[allow(clippy::too_many_arguments)]
    pub fn for_mix(
        strategy: Strategy,
        options: &ExecOptions,
        config: &SystemConfig,
        workload: &WorkloadFingerprint,
        entries: &[MixEntry],
        policy: MixPolicy,
        mode: MixMode,
        memory_demands: &[u64],
        topology: &[TopologyEvent],
    ) -> Self {
        let mix_bits = [
            u64::MAX, // discriminant: a mix run, never colliding with plain keys
            match mode {
                MixMode::Composed => 0,
                MixMode::CoSimulated => 1,
            },
            match policy {
                MixPolicy::Fcfs => 0,
                MixPolicy::RoundRobin => 1,
                MixPolicy::LoadAware => 2,
            },
            entries.len() as u64,
        ]
        .into_iter()
        .chain(entries.iter().flat_map(|e| {
            [
                e.arrival_secs.to_bits(),
                e.priority as u64,
                e.skew.to_bits(),
            ]
        }))
        .chain(memory_demands.iter().copied())
        .chain(std::iter::once(topology.len() as u64))
        .chain(
            topology
                .iter()
                .flat_map(|e| [e.at_secs.to_bits(), e.node.index() as u64, e.change.bits()]),
        );
        Self::with_extra(strategy, options, config, workload, mix_bits)
    }

    /// The key of one open-system run: the base fingerprint extended with
    /// the traffic identity — arrival process (kind, rate, burstiness,
    /// query count, template-pool size, template skew, priority classes,
    /// stream seed), the concurrency level and the front-end configuration
    /// (cache capacity, TTL, coalescing, fan-out cost). The per-template
    /// memory demands and solo baselines are pure functions of inputs the
    /// base key already covers (workload, cost model, machine, options), so
    /// they need no extra bits.
    pub fn for_open(
        strategy: Strategy,
        options: &ExecOptions,
        config: &SystemConfig,
        workload: &WorkloadFingerprint,
        arrivals: &ArrivalSpec,
        concurrency: usize,
        frontend: &FrontendConfig,
    ) -> Self {
        let open_bits = [
            // Discriminant: an open run, never colliding with plain keys
            // (no extra bits) or mix keys (discriminant u64::MAX).
            u64::MAX - 1,
            match arrivals.kind {
                dlb_traffic::ArrivalKind::Poisson => 0,
                dlb_traffic::ArrivalKind::Bursty => 1,
                dlb_traffic::ArrivalKind::Diurnal => 2,
            },
            arrivals.rate_qps.to_bits(),
            arrivals.burstiness.to_bits(),
            arrivals.queries as u64,
            arrivals.templates as u64,
            arrivals.template_skew.to_bits(),
            arrivals.priority_classes as u64,
            arrivals.seed,
            concurrency as u64,
            frontend.cache_capacity as u64,
            frontend.cache_ttl_secs.to_bits(),
            frontend.coalesce as u64,
            frontend.fanout_cost_secs.to_bits(),
        ];
        Self::with_extra(strategy, options, config, workload, open_bits)
    }

    fn with_extra(
        strategy: Strategy,
        options: &ExecOptions,
        config: &SystemConfig,
        workload: &WorkloadFingerprint,
        extra: impl IntoIterator<Item = u64>,
    ) -> Self {
        let strategy = StrategyKey {
            name: strategy.name(),
            param_bits: strategy.param_bits(),
        };
        let mut bits: Vec<u64> = Vec::with_capacity(32);
        // Execution options, group by group.
        bits.extend([
            options.skew.to_bits(),
            options.seed,
            match options.fp_realization {
                dlb_exec::ErrorRealization::Shared => 0,
                dlb_exec::ErrorRealization::PerNode => 1,
            },
            options.flow.queue_capacity as u64,
            options.flow.trigger_pages,
            options.contention.threshold as u64,
            options.contention.degradation.to_bits(),
            options.steal.min_tuples,
            options.steal.fraction.to_bits(),
            match options.recovery.policy {
                dlb_exec::RecoveryPolicy::RehomeResume => 0,
                dlb_exec::RecoveryPolicy::LoseRestart => 1,
            },
            match options.recovery.rehome {
                dlb_exec::RehomePolicy::ConsistentHash => 0,
                dlb_exec::RehomePolicy::Range => 1,
            },
        ]);
        // Machine shape and hardware parameters.
        bits.extend([
            config.machine.nodes as u64,
            config.machine.processors_per_node as u64,
            config.machine.memory_per_node_bytes,
            config.cpu.mips.to_bits(),
            config
                .network
                .bandwidth_bytes_per_sec
                .map_or(u64::MAX, f64::to_bits),
            config.network.end_to_end_delay.as_nanos(),
            config.network.send_instr_per_page,
            config.network.recv_instr_per_page,
            config.disk.disks_per_processor as u64,
            config.disk.latency.as_nanos(),
            config.disk.seek_time.as_nanos(),
            config.disk.transfer_rate_bytes_per_sec.to_bits(),
            config.disk.async_io_init_instr,
            config.disk.io_cache_pages as u64,
        ]);
        // Cost-model constants.
        bits.extend([
            config.costs.tuple_bytes,
            config.costs.scan_tuple_instr,
            config.costs.build_tuple_instr,
            config.costs.probe_tuple_instr,
            config.costs.result_tuple_instr,
            config.costs.queue_access_instr,
            config.costs.interference_instr,
            config.costs.operator_startup_instr,
            config.costs.control_message_instr,
            config.costs.tuples_per_batch,
        ]);
        bits.extend(extra);
        Self {
            strategy,
            bits: bits.into_boxed_slice(),
            workload: workload.clone(),
        }
    }
}

/// A workspace-level cache of experiment runs, keyed by [`RunKey`].
///
/// Because the key fingerprints every simulation input, one `RunCache` can be
/// shared across experiments, systems and sweeps: the scenario driver uses a
/// single cache for a whole figure grid, so e.g. the SP reference of Figure 7
/// is computed once per machine shape no matter how many error rates probe
/// it. Hits share one allocation (`Arc` clone), never a deep copy.
#[derive(Debug, Default)]
pub struct RunCache {
    map: Mutex<HashMap<RunKey, Arc<Vec<PlanRun>>>>,
    /// Inter-query mix runs, keyed by [`RunKey::for_mix`]. Kept apart from
    /// the per-plan map because the cached value is a whole [`MixRun`]
    /// (schedule + contrast + solo set), not a plan list.
    mix: Mutex<HashMap<RunKey, Arc<MixRun>>>,
    /// Open-system runs, keyed by [`RunKey::for_open`].
    open: Mutex<HashMap<RunKey, Arc<OpenRun>>>,
}

impl RunCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached plan runs (mix runs are counted by [`mix_len`]).
    ///
    /// [`mix_len`]: RunCache::mix_len
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Number of cached inter-query mix runs.
    pub fn mix_len(&self) -> usize {
        self.mix.lock().len()
    }

    /// Number of cached open-system runs.
    pub fn open_len(&self) -> usize {
        self.open.lock().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty() && self.mix.lock().is_empty() && self.open.lock().is_empty()
    }

    /// Looks up a cached run.
    pub fn get(&self, key: &RunKey) -> Option<Arc<Vec<PlanRun>>> {
        self.map.lock().get(key).map(Arc::clone)
    }

    /// Inserts `runs` unless the key is already present, returning the cached
    /// value either way. Keeping the first insertion means every racing
    /// caller shares one allocation, preserving the `Arc::ptr_eq` cache-hit
    /// contract even under concurrent runs.
    pub fn insert_or_get(&self, key: RunKey, runs: Arc<Vec<PlanRun>>) -> Arc<Vec<PlanRun>> {
        let mut map = self.map.lock();
        Arc::clone(map.entry(key).or_insert(runs))
    }

    /// Looks up a cached mix run.
    pub fn get_mix(&self, key: &RunKey) -> Option<Arc<MixRun>> {
        self.mix.lock().get(key).map(Arc::clone)
    }

    /// Inserts a mix run unless the key is already present, returning the
    /// cached value either way (same first-insertion-wins contract as
    /// [`insert_or_get`]).
    ///
    /// [`insert_or_get`]: RunCache::insert_or_get
    pub fn insert_or_get_mix(&self, key: RunKey, run: Arc<MixRun>) -> Arc<MixRun> {
        let mut map = self.mix.lock();
        Arc::clone(map.entry(key).or_insert(run))
    }

    /// Looks up a cached open-system run.
    pub fn get_open(&self, key: &RunKey) -> Option<Arc<OpenRun>> {
        self.open.lock().get(key).map(Arc::clone)
    }

    /// Inserts an open-system run unless the key is already present,
    /// returning the cached value either way (same first-insertion-wins
    /// contract as [`insert_or_get`]).
    ///
    /// [`insert_or_get`]: RunCache::insert_or_get
    pub fn insert_or_get_open(&self, key: RunKey, run: Arc<OpenRun>) -> Arc<OpenRun> {
        let mut map = self.open.lock();
        Arc::clone(map.entry(key).or_insert(run))
    }
}

/// Pins the number of worker threads used by [`Experiment::run`] (0 =
/// automatic, one per available core), returning whether the pool was
/// actually (re)configured.
///
/// Call this **before the first parallel operation**. The offline rayon shim
/// allows reconfiguring at any time (always `true`), but the real rayon's
/// `build_global` fails once the global pool has been used — such a late call
/// returns `false` and keeps the existing thread count.
pub fn set_threads(n: usize) -> bool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .is_ok()
}

/// Applies the `HIERDB_THREADS` environment variable, if set, to the
/// worker-thread pool. Figure and benchmark binaries call this once at
/// start-up; an unset variable leaves the automatic setting in place, while
/// an unparseable value or a pool that refuses reconfiguration logs a warning
/// to stderr instead of being silently ignored.
pub fn init_threads_from_env() {
    let Ok(value) = std::env::var("HIERDB_THREADS") else {
        return;
    };
    match value.parse::<usize>() {
        Ok(n) => {
            if !set_threads(n) {
                eprintln!(
                    "warning: HIERDB_THREADS={value} ignored: \
                     the global thread pool is already initialized"
                );
            }
        }
        Err(_) => eprintln!(
            "warning: HIERDB_THREADS={value:?} is not a valid thread count; \
             using the automatic setting"
        ),
    }
}

/// An experiment: a system, a compiled workload, and the machinery to execute
/// every plan under a chosen strategy.
#[derive(Debug, Clone)]
pub struct Experiment {
    system: HierarchicalSystem,
    workload: Arc<CompiledWorkload>,
    /// Cache of runs keyed by [`RunKey`], so repeated references (e.g. SP as
    /// the baseline of several figures) are computed once and shared without
    /// deep-cloning the reports. Fresh per [`Experiment::new`]; share one
    /// across experiments with [`ExperimentBuilder::cache`] or
    /// [`Experiment::with_cache`].
    cache: Arc<RunCache>,
}

impl Experiment {
    /// Starts building an experiment.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// Creates an experiment from an existing system and workload, with a
    /// private cache.
    pub fn new(system: HierarchicalSystem, workload: CompiledWorkload) -> Self {
        Self::with_cache(system, Arc::new(workload), Arc::new(RunCache::new()))
    }

    /// Creates an experiment sharing an existing workload and run cache —
    /// the constructor sweep drivers use so that every point of a sweep
    /// draws from (and feeds) one cache.
    pub fn with_cache(
        system: HierarchicalSystem,
        workload: Arc<CompiledWorkload>,
        cache: Arc<RunCache>,
    ) -> Self {
        Self {
            system,
            workload,
            cache,
        }
    }

    /// The system under test.
    pub fn system(&self) -> &HierarchicalSystem {
        &self.system
    }

    /// The compiled workload.
    pub fn workload(&self) -> &CompiledWorkload {
        &self.workload
    }

    /// The run cache this experiment reads and feeds.
    pub fn cache(&self) -> &Arc<RunCache> {
        &self.cache
    }

    /// Returns a copy of this experiment running on a different system but
    /// the same workload (used for processor-count and skew sweeps). The
    /// cache **is** shared: [`RunKey`] fingerprints the machine and options,
    /// so runs of different systems can never be confused, and shared
    /// references (e.g. a sweep's baseline point) are computed only once.
    pub fn on_system(&self, system: HierarchicalSystem) -> Self {
        Self {
            system,
            workload: Arc::clone(&self.workload),
            cache: Arc::clone(&self.cache),
        }
    }

    fn cache_key(&self, strategy: Strategy) -> RunKey {
        RunKey::new(
            strategy,
            self.system.options(),
            self.system.config(),
            self.workload.fingerprint(),
        )
    }

    /// Executes one plan of the workload (shared by the parallel and
    /// sequential paths so that both run byte-for-byte the same simulation).
    fn run_plan(
        &self,
        strategy: Strategy,
        plan_index: usize,
        entry: &(usize, ParallelPlan),
    ) -> Result<PlanRun> {
        let (query_index, plan) = entry;
        let report = self.system.run(plan, strategy)?;
        Ok(PlanRun {
            plan_index,
            query_index: *query_index,
            report,
        })
    }

    /// Runs every plan of the workload under `strategy`, returning one
    /// [`PlanRun`] per plan.
    ///
    /// Plans are independent seeded simulations, so they are fanned out
    /// across worker threads; results come back in plan order and are
    /// bit-identical to [`run_sequential`]. Results are cached per
    /// [`RunKey`]; cache hits share the same allocation.
    ///
    /// [`run_sequential`]: Experiment::run_sequential
    pub fn run(&self, strategy: Strategy) -> Result<Arc<Vec<PlanRun>>> {
        let key = self.cache_key(strategy);
        if let Some(cached) = self.cache.get(&key) {
            return Ok(cached);
        }
        let runs: Result<Vec<PlanRun>> = self
            .workload
            .plans()
            .par_iter()
            .enumerate()
            .map(|(plan_index, entry)| self.run_plan(strategy, plan_index, entry))
            .collect();
        Ok(self.cache.insert_or_get(key, Arc::new(runs?)))
    }

    /// Runs an inter-query mix on this experiment's system: admission,
    /// placement and processor sharing of the mix's queries on the shared
    /// SM-nodes (see [`dlb_exec::mix`]).
    ///
    /// For each query the engine first measures the *solo* response time of
    /// the query's plan under `strategy` on the query's placement shape —
    /// the full machine for [`MixPolicy::Fcfs`], one SM-node for the pinning
    /// policies — with the query's own skew profile. These runs go through
    /// this experiment's [`RunCache`] (each query is simulated exactly once
    /// per configuration — queries sharing a skew profile are batched into
    /// one cached sub-workload run, and repeated sweep points or reference
    /// strategies are cache hits).
    ///
    /// What happens next depends on `mode`:
    ///
    /// * [`MixMode::Composed`] — the analytic scheduler derives per-query
    ///   and aggregate response times under priority-weighted processor
    ///   sharing and the per-node memory admission limit.
    /// * [`MixMode::CoSimulated`] — all queries are re-executed **together**
    ///   in one engine event loop ([`dlb_exec::execute_cosimulated`]):
    ///   intra-run interference (queue contention, flow control, cross-query
    ///   steal traffic, per-node memory admission) is simulated rather than
    ///   modeled. The pinning policies re-home each query's plan onto the
    ///   node the analytic scheduler chose (its *placement mask*), so both
    ///   fidelities answer the same placement question; the analytic
    ///   schedule is carried as [`MixRun::composed`] so reports can contrast
    ///   the two.
    ///
    /// Whole mix runs are cached under an extended [`RunKey`]
    /// ([`RunKey::for_mix`]) that fingerprints the mix identity (mode,
    /// policy, per-query arrival/priority/skew/memory demand) on top of
    /// every simulation input, so repeated sweep points are cache hits even
    /// in co-simulated mode.
    ///
    /// The mix carries its own workload; this experiment contributes the
    /// machine, the base execution options and the shared cache.
    pub fn run_mix(
        &self,
        mix: &QueryMix,
        policy: MixPolicy,
        mode: MixMode,
        strategy: Strategy,
    ) -> Result<MixRun> {
        self.run_mix_with_topology(mix, policy, mode, strategy, &[])
    }

    /// [`run_mix`] with a deterministic topology-event stream (node
    /// failures, drains, re-joins) injected into the co-simulated event
    /// loop — see [`dlb_exec::execute_cosimulated_faulted`].
    ///
    /// A non-empty stream requires [`MixMode::CoSimulated`] (the analytic
    /// composition has no event loop to fail a node in). Besides the faulted
    /// schedule, the run then carries [`MixRun::faults`] (degradation
    /// accounting) and [`MixRun::fault_free`] (the same mix without the
    /// events, sharing this experiment's cache), so reports can state
    /// per-query response inflation against the no-fault baseline.
    ///
    /// [`run_mix`]: Experiment::run_mix
    pub fn run_mix_with_topology(
        &self,
        mix: &QueryMix,
        policy: MixPolicy,
        mode: MixMode,
        strategy: Strategy,
        topology: &[TopologyEvent],
    ) -> Result<MixRun> {
        if !topology.is_empty() && mode != MixMode::CoSimulated {
            return Err(dlb_common::DlbError::config(
                "topology events require the co-simulated mix mode; the analytic \
                 composition has no event loop to inject them into",
            ));
        }
        let config = self.system.config();
        let cost = CostModel::new(config.costs, config.disk, config.cpu);
        let demands: Vec<u64> = (0..mix.len())
            .map(|q| mix.memory_demand(q, &cost))
            .collect();
        let key = RunKey::for_mix(
            strategy,
            self.system.options(),
            config,
            mix.workload().fingerprint(),
            mix.entries(),
            policy,
            mode,
            &demands,
            topology,
        );
        if let Some(hit) = self.cache.get_mix(&key) {
            return Ok((*hit).clone());
        }

        // The placement shape: what one query of the mix actually occupies.
        let placement = match policy {
            MixPolicy::Fcfs => self.system.clone(),
            MixPolicy::RoundRobin | MixPolicy::LoadAware => self.system.clone().with_nodes(1),
        };

        // Group queries by skew profile; each distinct profile becomes one
        // (cached) run of a sub-workload holding exactly those queries'
        // chosen plans, so every query is simulated once — never the whole
        // multi-plan workload per profile. The sub-workload's derived
        // fingerprint keeps the cache exact across strategies and sweeps.
        let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
        for (q, entry) in mix.entries().iter().enumerate() {
            let bits = entry.skew.to_bits();
            match groups.iter_mut().find(|(b, _)| *b == bits) {
                Some((_, queries)) => queries.push(q),
                None => groups.push((bits, vec![q])),
            }
        }
        let mut solo: Vec<Option<PlanRun>> = vec![None; mix.len()];
        for (bits, queries) in &groups {
            let indices: Vec<usize> = queries.iter().map(|&q| mix.plan_index(q)).collect();
            let sub = Arc::new(mix.workload().subset(&indices));
            let mut options = *self.system.options();
            options.skew = f64::from_bits(*bits);
            let exp = Experiment::with_cache(
                placement.clone().with_options(options),
                sub,
                Arc::clone(&self.cache),
            );
            let runs = exp.run(strategy)?;
            for (position, &q) in queries.iter().enumerate() {
                let mut run = runs[position].clone();
                // Re-anchor to the mix's workload-relative plan index so the
                // assembled solo set has one unique index per query.
                run.plan_index = mix.plan_index(q);
                solo[q] = Some(run);
            }
        }
        let solo: Arc<Vec<PlanRun>> = Arc::new(
            solo.into_iter()
                .map(|run| run.expect("every query was simulated"))
                .collect(),
        );

        let jobs: Vec<MixJob> = mix
            .entries()
            .iter()
            .enumerate()
            .map(|(q, entry)| MixJob {
                arrival_secs: entry.arrival_secs,
                priority: entry.priority,
                solo_secs: solo[q].report.response_secs(),
                memory_bytes: demands[q],
            })
            .collect();

        let composed = schedule_mix(
            &jobs,
            self.system.nodes(),
            config.machine.memory_per_node_bytes,
            policy,
        )?;
        let run = match mode {
            MixMode::Composed => MixRun {
                schedule: composed,
                composed: None,
                solo,
                faults: None,
                fault_free: None,
            },
            MixMode::CoSimulated => {
                // Placement masks: FCFS spreads every query over the whole
                // machine (no mask); the pinning policies re-home each query
                // onto the node the analytic scheduler chose — round-robin
                // rotation, or the least-loaded node at the analytic
                // admission instant — so the co-simulation answers the same
                // placement decision at full fidelity.
                let mut placements: Vec<Option<u32>> = vec![None; mix.len()];
                for outcome in &composed.queries {
                    placements[outcome.query] = outcome.node;
                }
                let masks: Vec<Option<Vec<NodeId>>> = placements
                    .iter()
                    .map(|node| node.map(|n| vec![NodeId::from(n as usize)]))
                    .collect();
                let queries: Vec<CoSimQuery<'_>> = mix
                    .entries()
                    .iter()
                    .enumerate()
                    .map(|(q, entry)| CoSimQuery {
                        plan: mix.plan(q),
                        arrival_secs: entry.arrival_secs,
                        priority: entry.priority,
                        skew: entry.skew,
                        mask: masks[q].as_deref(),
                        memory_bytes: demands[q],
                    })
                    .collect();
                let report = execute_cosimulated_faulted(
                    &queries,
                    config,
                    strategy,
                    self.system.options(),
                    topology,
                )?;
                // A faulted run carries the same mix without the events as
                // its inflation baseline; the recursive call shares this
                // experiment's cache, so sweeps pay for it once.
                let fault_free = if topology.is_empty() {
                    None
                } else {
                    Some(self.run_mix(mix, policy, mode, strategy)?.schedule)
                };
                MixRun {
                    schedule: cosim_schedule(&report, &jobs, policy, &placements),
                    composed: Some(composed),
                    solo,
                    faults: (!topology.is_empty()).then_some(report.faults),
                    fault_free,
                }
            }
        };
        Ok((*self.cache.insert_or_get_mix(key, Arc::new(run))).clone())
    }

    /// Runs an open system on this experiment's machine: the workload's
    /// plans become the query-template pool, `arrivals` generates the
    /// stochastic stream over that pool, and the engine admits arrivals FCFS
    /// into at most `concurrency` lane slots (per-node memory permitting),
    /// retiring each query — and dropping its operator state — on completion
    /// (see [`dlb_exec::execute_open`]).
    ///
    /// The per-template slowdown baselines are this experiment's own cached
    /// whole-machine solo runs ([`Experiment::run`]), and each template's
    /// memory demand is its plan's hash-table working set under this
    /// machine's cost model — the same demand the mix scheduler reasons
    /// about. Whole open runs are cached under [`RunKey::for_open`], so
    /// repeated sweep points and reference strategies are cache hits.
    ///
    /// Like [`QueryMix`], the first compiled plan of each
    /// distinct query becomes that template's plan, so `arrivals.templates`
    /// must equal the workload's distinct query count.
    pub fn run_open(
        &self,
        arrivals: &ArrivalSpec,
        concurrency: usize,
        strategy: Strategy,
    ) -> Result<OpenRun> {
        self.run_open_with_frontend(arrivals, concurrency, FrontendConfig::default(), strategy)
    }

    /// [`Experiment::run_open`] with a front-end layer (result cache +
    /// single-flight coalescing) between the arrival stream and the engine's
    /// waiting room. With the default (inert) config this is exactly
    /// `run_open` — same events, same report, bit for bit.
    pub fn run_open_with_frontend(
        &self,
        arrivals: &ArrivalSpec,
        concurrency: usize,
        frontend: FrontendConfig,
        strategy: Strategy,
    ) -> Result<OpenRun> {
        // First plan per distinct query — the optimizer may have emitted
        // several plan variants per query.
        let mut chosen: Vec<usize> = Vec::new();
        let mut seen_query = std::collections::BTreeSet::new();
        for (plan_index, (query_index, _)) in self.workload.plans().iter().enumerate() {
            if seen_query.insert(*query_index) {
                chosen.push(plan_index);
            }
        }
        if arrivals.templates != chosen.len() {
            return Err(dlb_common::DlbError::config(format!(
                "the arrival spec draws from {} templates but the workload \
                 compiled {} distinct queries",
                arrivals.templates,
                chosen.len()
            )));
        }
        if concurrency == 0 {
            return Err(dlb_common::DlbError::config(
                "open-system runs need at least one lane slot",
            ));
        }
        let config = self.system.config();
        let key = RunKey::for_open(
            strategy,
            self.system.options(),
            config,
            self.workload.fingerprint(),
            arrivals,
            concurrency,
            &frontend,
        );
        if let Some(hit) = self.cache.get_open(&key) {
            return Ok((*hit).clone());
        }
        // Solo baselines: the cached whole-machine run of every template.
        let solo = self.run(strategy)?;
        // Working sets under this machine's cost model — the same hash-table
        // estimate the mix admission uses.
        let cost = CostModel::new(config.costs, config.disk, config.cpu);
        let templates: Vec<OpenTemplate<'_>> = chosen
            .iter()
            .map(|&plan_index| {
                let (_, plan) = &self.workload.plans()[plan_index];
                OpenTemplate {
                    plan,
                    memory_bytes: plan
                        .tree
                        .operators()
                        .iter()
                        .filter(|op| op.kind.is_build())
                        .map(|op| cost.hash_table_bytes(op.input_tuples))
                        .sum(),
                    solo_secs: solo[plan_index].report.response_secs(),
                }
            })
            .collect();
        let traffic = OpenTraffic {
            templates,
            arrivals: *arrivals,
            concurrency,
            frontend,
        };
        let report = execute_open(&traffic, config, strategy, self.system.options())?;
        let run = OpenRun { report, solo };
        Ok((*self.cache.insert_or_get_open(key, Arc::new(run))).clone())
    }

    /// Runs every plan strictly sequentially on the calling thread, bypassing
    /// the cache: the baseline against which the parallel fan-out of [`run`]
    /// is validated (determinism tests) and benchmarked (`bench_report`).
    ///
    /// [`run`]: Experiment::run
    pub fn run_sequential(&self, strategy: Strategy) -> Result<Vec<PlanRun>> {
        self.workload
            .plans()
            .iter()
            .enumerate()
            .map(|(plan_index, entry)| self.run_plan(strategy, plan_index, entry))
            .collect()
    }
}

/// Assembles the [`MixSchedule`] of one co-simulated engine run: per-query
/// outcomes — including the admission instants and waits the engine's
/// in-loop memory admission produced — come from the interleaved execution
/// ([`CoSimReport`]); the solo times of the (composed-compatible)
/// [`MixJob`]s provide the slowdown baseline, and `placements` records the
/// node each query was pinned to (`None` for whole-machine FCFS spreading).
fn cosim_schedule(
    report: &CoSimReport,
    jobs: &[MixJob],
    policy: MixPolicy,
    placements: &[Option<u32>],
) -> MixSchedule {
    let queries: Vec<QueryOutcome> = report
        .queries
        .iter()
        .map(|q| QueryOutcome {
            query: q.query,
            node: placements[q.query],
            arrival_secs: q.arrival_secs,
            admitted_secs: q.admitted_secs,
            completion_secs: q.completion_secs,
            response_secs: q.response_secs,
            wait_secs: q.wait_secs,
            solo_secs: jobs[q.query].solo_secs,
            slowdown: if jobs[q.query].solo_secs > 0.0 {
                q.response_secs / jobs[q.query].solo_secs
            } else {
                1.0
            },
        })
        .collect();
    let n = queries.len() as f64;
    let mean = |f: &dyn Fn(&QueryOutcome) -> f64| -> f64 {
        if queries.is_empty() {
            0.0
        } else {
            queries.iter().map(f).sum::<f64>() / n
        }
    };
    MixSchedule {
        policy,
        mode: MixMode::CoSimulated,
        makespan_secs: queries
            .iter()
            .map(|o| o.completion_secs)
            .fold(0.0, f64::max),
        mean_response_secs: mean(&|o| o.response_secs),
        max_response_secs: queries.iter().map(|o| o.response_secs).fold(0.0, f64::max),
        mean_slowdown: mean(&|o| o.slowdown),
        mean_wait_secs: mean(&|o| o.wait_secs),
        queries,
    }
}

/// Builder for [`Experiment`].
#[derive(Debug, Clone, Default)]
pub struct ExperimentBuilder {
    system: Option<HierarchicalSystem>,
    workload_params: Option<WorkloadParams>,
    cache: Option<Arc<RunCache>>,
}

impl ExperimentBuilder {
    /// Sets the system under test.
    pub fn system(mut self, system: HierarchicalSystem) -> Self {
        self.system = Some(system);
        self
    }

    /// Sets the workload-generation parameters.
    pub fn workload(mut self, params: WorkloadParams) -> Self {
        self.workload_params = Some(params);
        self
    }

    /// Shares an existing run cache instead of starting with a private one.
    pub fn cache(mut self, cache: Arc<RunCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Generates the workload and builds the experiment.
    pub fn build(self) -> Result<Experiment> {
        let system = self
            .system
            .unwrap_or_else(|| HierarchicalSystem::builder().build());
        let params = self.workload_params.unwrap_or_default();
        let workload = CompiledWorkload::generate(params, &system)?;
        Ok(Experiment::with_cache(
            system,
            Arc::new(workload),
            self.cache.unwrap_or_default(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_exec::StealPolicy;

    fn small_experiment(nodes: u32, procs: u32) -> Experiment {
        Experiment::builder()
            .system(HierarchicalSystem::hierarchical(nodes, procs))
            .workload(WorkloadParams::tiny(2, 4, 11))
            .build()
            .unwrap()
    }

    #[test]
    fn experiment_runs_every_plan() {
        let exp = small_experiment(1, 4);
        let runs = exp.run(Strategy::dynamic()).unwrap();
        assert_eq!(runs.len(), exp.workload().len());
        for run in runs.iter() {
            assert!(run.report.response_time.as_secs_f64() > 0.0);
        }
    }

    #[test]
    fn cache_returns_identical_results() {
        let exp = small_experiment(1, 2);
        let a = exp.run(Strategy::dynamic()).unwrap();
        let b = exp.run(Strategy::dynamic()).unwrap();
        assert_eq!(a, b);
        // A hit shares the allocation instead of deep-cloning the reports.
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn sequential_run_matches_parallel_run() {
        let exp = small_experiment(2, 2);
        let parallel = exp.run(Strategy::dynamic()).unwrap();
        let sequential = exp.run_sequential(Strategy::dynamic()).unwrap();
        assert_eq!(*parallel, sequential);
    }

    #[test]
    fn on_system_keeps_the_same_workload() {
        let exp = small_experiment(1, 2);
        let bigger = exp.on_system(HierarchicalSystem::shared_memory(8));
        assert_eq!(bigger.workload().len(), exp.workload().len());
        let small = exp.run(Strategy::dynamic()).unwrap();
        let big = bigger.run(Strategy::dynamic()).unwrap();
        // More processors must not be slower on average.
        let mean_small: f64 =
            small.iter().map(|r| r.report.response_secs()).sum::<f64>() / small.len() as f64;
        let mean_big: f64 =
            big.iter().map(|r| r.report.response_secs()).sum::<f64>() / big.len() as f64;
        assert!(mean_big <= mean_small * 1.05);
    }

    #[test]
    fn default_builder_uses_default_system() {
        let exp = Experiment::builder()
            .workload(WorkloadParams::tiny(1, 3, 3))
            .build()
            .unwrap();
        assert_eq!(exp.system().nodes(), 4);
    }

    fn key_for(strategy: Strategy, options: &ExecOptions, config: &SystemConfig) -> RunKey {
        let system = HierarchicalSystem::shared_memory(2);
        let workload = CompiledWorkload::generate(WorkloadParams::tiny(1, 3, 3), &system).unwrap();
        RunKey::new(strategy, options, config, workload.fingerprint())
    }

    #[test]
    fn run_key_distinguishes_skews_beyond_display_precision() {
        // Regression test for the stringly cache key: two skews whose f64
        // bit patterns differ by one ULP must produce distinct keys, no
        // matter how they would format.
        let a = 0.3_f64;
        let b = f64::from_bits(a.to_bits() + 1);
        assert_ne!(a.to_bits(), b.to_bits());
        let config = SystemConfig::shared_memory(8);
        let ka = key_for(Strategy::dynamic(), &ExecOptions::with_skew(a), &config);
        let kb = key_for(Strategy::dynamic(), &ExecOptions::with_skew(b), &config);
        assert_ne!(ka, kb);
        // Same for FP error rates.
        let o = ExecOptions::default();
        let ea = key_for(Strategy::fixed(a), &o, &config);
        let eb = key_for(Strategy::fixed(b), &o, &config);
        assert_ne!(ea, eb);
        // Identical parameters produce identical keys.
        assert_eq!(
            ka,
            key_for(Strategy::dynamic(), &ExecOptions::with_skew(0.3), &config)
        );
    }

    #[test]
    fn run_key_distinguishes_strategies_machines_and_tuning() {
        let o = ExecOptions::default();
        let c48 = SystemConfig::hierarchical(4, 8);
        let dp = key_for(Strategy::dynamic(), &o, &c48);
        let sp = key_for(Strategy::synchronous(), &o, &c48);
        let fp = key_for(Strategy::fixed(0.0), &o, &c48);
        assert_ne!(dp, sp);
        assert_ne!(dp, fp);
        assert_ne!(fp, sp);
        assert_ne!(
            dp,
            key_for(Strategy::dynamic(), &o, &SystemConfig::hierarchical(2, 8))
        );
        assert_ne!(
            dp,
            key_for(Strategy::dynamic(), &o, &SystemConfig::hierarchical(4, 4))
        );
        // Fields the seed's key ignored now count: the execution seed, the
        // steal tuning, and hardware parameters.
        let reseeded = ExecOptions::builder().seed(o.seed + 1).build();
        assert_ne!(dp, key_for(Strategy::dynamic(), &reseeded, &c48));
        let retuned = ExecOptions::builder()
            .steal(StealPolicy {
                min_tuples: o.steal.min_tuples + 1,
                fraction: o.steal.fraction,
            })
            .build();
        assert_ne!(dp, key_for(Strategy::dynamic(), &retuned, &c48));
        // The FP error-realization knob is a simulation input too.
        let per_node = ExecOptions::builder()
            .fp_realization(dlb_exec::ErrorRealization::PerNode)
            .build();
        assert_ne!(
            key_for(Strategy::fixed(0.2), &o, &c48),
            key_for(Strategy::fixed(0.2), &per_node, &c48)
        );
        let mut slower = c48;
        slower.cpu.mips = 39.0;
        assert_ne!(dp, key_for(Strategy::dynamic(), &o, &slower));
    }

    #[test]
    fn run_mix_reports_per_query_and_aggregate_responses() {
        use crate::workload::MixEntry;
        let exp = small_experiment(2, 2);
        let entries = vec![
            MixEntry::default(),
            MixEntry {
                arrival_secs: 0.0,
                priority: 1,
                skew: 0.5,
            },
        ];
        let mix = QueryMix::new(Arc::new(exp.workload().clone()), entries).unwrap();
        let run = exp
            .run_mix(
                &mix,
                MixPolicy::Fcfs,
                MixMode::Composed,
                Strategy::dynamic(),
            )
            .unwrap();
        assert_eq!(run.schedule.queries.len(), 2);
        assert_eq!(run.solo.len(), 2);
        for (q, outcome) in run.schedule.queries.iter().enumerate() {
            assert_eq!(outcome.query, q);
            assert!(outcome.response_secs > 0.0);
            assert!(outcome.slowdown >= 1.0 - 1e-9);
            assert!(
                (outcome.solo_secs - run.solo[q].report.response_secs()).abs() < 1e-12,
                "solo time comes from the engine run"
            );
        }
        // Two simultaneous queries sharing the machine: neither can be
        // faster than alone, and at least one is measurably slower.
        assert!(run.schedule.mean_slowdown > 1.0);
        assert!(run.schedule.makespan_secs >= run.schedule.max_response_secs);
    }

    #[test]
    fn run_mix_pinning_policies_use_single_node_solo_runs() {
        use crate::workload::MixEntry;
        let exp = small_experiment(2, 2);
        let entries = vec![MixEntry::default(), MixEntry::default()];
        let mix = QueryMix::new(Arc::new(exp.workload().clone()), entries).unwrap();
        let rr = exp
            .run_mix(
                &mix,
                MixPolicy::RoundRobin,
                MixMode::Composed,
                Strategy::dynamic(),
            )
            .unwrap();
        // Pinned to distinct nodes: no inter-query interference at all.
        for outcome in &rr.schedule.queries {
            assert!(outcome.node.is_some());
            assert!((outcome.slowdown - 1.0).abs() < 1e-9);
        }
        // The FCFS placement measures solo runs on the full machine, the
        // pinning placement on one node: distinct simulations, both valid.
        let fcfs = exp
            .run_mix(
                &mix,
                MixPolicy::Fcfs,
                MixMode::Composed,
                Strategy::dynamic(),
            )
            .unwrap();
        for (a, b) in rr.solo.iter().zip(fcfs.solo.iter()) {
            assert_eq!(a.report.nodes, 1);
            assert_eq!(b.report.nodes, 2);
            assert!(a.report.response_secs() > 0.0 && b.report.response_secs() > 0.0);
        }
        // The solo runs landed in the shared cache: re-running the mix does
        // not grow it.
        let before = exp.cache().len();
        exp.run_mix(
            &mix,
            MixPolicy::RoundRobin,
            MixMode::Composed,
            Strategy::dynamic(),
        )
        .unwrap();
        assert_eq!(exp.cache().len(), before);
    }

    #[test]
    fn run_mix_cosimulated_contrasts_the_composed_model_and_caches() {
        use crate::workload::MixEntry;
        let exp = small_experiment(2, 2);
        let entries = vec![
            MixEntry::default(),
            MixEntry {
                arrival_secs: 0.0,
                priority: 2,
                skew: 0.3,
            },
        ];
        let mix = QueryMix::new(Arc::new(exp.workload().clone()), entries).unwrap();
        let run = exp
            .run_mix(
                &mix,
                MixPolicy::Fcfs,
                MixMode::CoSimulated,
                Strategy::dynamic(),
            )
            .unwrap();
        assert_eq!(run.schedule.mode, MixMode::CoSimulated);
        assert_eq!(run.schedule.queries.len(), 2);
        assert_eq!(run.solo.len(), 2);
        // The contrast schedule is the analytic composition of the same mix.
        let contrast = run.composed.as_ref().expect("cosim carries the contrast");
        assert_eq!(contrast.mode, MixMode::Composed);
        let composed_run = exp
            .run_mix(
                &mix,
                MixPolicy::Fcfs,
                MixMode::Composed,
                Strategy::dynamic(),
            )
            .unwrap();
        assert_eq!(&composed_run.schedule, contrast);
        assert!(composed_run.composed.is_none());
        // Slowdowns are anchored on the same engine-measured solo runs.
        for (q, outcome) in run.schedule.queries.iter().enumerate() {
            assert_eq!(outcome.query, q);
            assert!(outcome.response_secs > 0.0);
            assert_eq!(outcome.node, None, "cosim spreads over the whole machine");
            assert!(
                (outcome.solo_secs - run.solo[q].report.response_secs()).abs() < 1e-12,
                "solo time comes from the engine run"
            );
        }
        // Both mode runs are cached under distinct extended keys; repeats
        // are hits that change nothing.
        assert_eq!(exp.cache().mix_len(), 2);
        let again = exp
            .run_mix(
                &mix,
                MixPolicy::Fcfs,
                MixMode::CoSimulated,
                Strategy::dynamic(),
            )
            .unwrap();
        assert_eq!(again, run);
        assert_eq!(exp.cache().mix_len(), 2);
    }

    #[test]
    fn run_mix_cosim_single_query_matches_the_solo_engine_run_exactly() {
        use crate::workload::MixEntry;
        let exp = Experiment::builder()
            .system(HierarchicalSystem::hierarchical(2, 2))
            .workload(WorkloadParams::tiny(1, 4, 11))
            .build()
            .unwrap();
        let mix =
            QueryMix::new(Arc::new(exp.workload().clone()), vec![MixEntry::default()]).unwrap();
        let run = exp
            .run_mix(
                &mix,
                MixPolicy::Fcfs,
                MixMode::CoSimulated,
                Strategy::dynamic(),
            )
            .unwrap();
        let outcome = &run.schedule.queries[0];
        assert_eq!(
            outcome.response_secs,
            run.solo[0].report.response_secs(),
            "one co-simulated query IS the plain engine run"
        );
        assert_eq!(outcome.slowdown, 1.0);
        assert_eq!(run.schedule.mean_wait_secs, 0.0);
    }

    #[test]
    fn run_mix_cosimulates_pinning_placements() {
        use crate::workload::MixEntry;
        let exp = small_experiment(2, 2);
        let entries = vec![MixEntry::default(), MixEntry::default()];
        let mix = QueryMix::new(Arc::new(exp.workload().clone()), entries).unwrap();
        for policy in [MixPolicy::RoundRobin, MixPolicy::LoadAware] {
            let run = exp
                .run_mix(&mix, policy, MixMode::CoSimulated, Strategy::dynamic())
                .unwrap();
            assert_eq!(run.schedule.mode, MixMode::CoSimulated);
            let contrast = run.composed.as_ref().expect("cosim carries the contrast");
            for (a, b) in run.schedule.queries.iter().zip(&contrast.queries) {
                assert_eq!(
                    a.node, b.node,
                    "{policy:?}: the co-simulation pins the analytic placement"
                );
                assert!(a.node.is_some(), "{policy:?}: pinning policies pin");
            }
            // Two queries rotated onto the two nodes never share a node:
            // the masks really isolate the lanes. Query 0 reproduces its
            // single-node solo run bit-exactly (same routers, same node);
            // query 1's activation routing differs from its solo capture
            // (router seeds key off the global operator index), so it gets
            // a tolerance — but with no contention it stays near solo, and
            // the isolated lanes run concurrently, not serialized.
            if policy == MixPolicy::RoundRobin {
                let nodes: Vec<_> = run.schedule.queries.iter().map(|q| q.node).collect();
                assert_eq!(nodes, vec![Some(0), Some(1)]);
                let s0 = run.solo[0].report.response_secs();
                let s1 = run.solo[1].report.response_secs();
                assert_eq!(run.schedule.queries[0].response_secs, s0);
                assert!(
                    run.schedule.queries[1].response_secs < s1 * 1.5,
                    "query 1 alone on node 1 must stay near solo speed ({} vs {s1})",
                    run.schedule.queries[1].response_secs
                );
                assert!(
                    run.schedule.makespan_secs < s0 + s1,
                    "isolated lanes run concurrently, not serialized"
                );
            }
        }
    }

    #[test]
    fn run_mix_cosim_memory_admission_waits_match_the_discipline() {
        use crate::workload::MixEntry;
        use dlb_query::cost::CostModel;
        // A machine whose per-node memory admits any single query but never
        // two at once: the second FCFS query must wait for the first
        // release, inside the event loop.
        let system = HierarchicalSystem::hierarchical(1, 2);
        let workload = CompiledWorkload::generate(
            WorkloadParams {
                queries: 2,
                relations_per_query: 4,
                scale: 2.0,
                skew: 0.0,
                seed: 42,
            },
            &system,
        )
        .unwrap();
        let exp = Experiment::new(system.clone(), workload);
        let mix = QueryMix::new(
            Arc::new(exp.workload().clone()),
            vec![MixEntry::default(); 2],
        )
        .unwrap();
        let config = system.config();
        let cost = CostModel::new(config.costs, config.disk, config.cpu);
        let demands: Vec<u64> = (0..mix.len())
            .map(|q| mix.memory_demand(q, &cost))
            .collect();
        let tight = *demands.iter().max().unwrap();
        assert!(
            *demands.iter().min().unwrap() > 0,
            "demands {demands:?} must be positive"
        );

        let tight_exp = exp.on_system(system.clone().with_memory_per_node(tight));
        let run = tight_exp
            .run_mix(
                &mix,
                MixPolicy::Fcfs,
                MixMode::CoSimulated,
                Strategy::dynamic(),
            )
            .unwrap();
        let q0 = &run.schedule.queries[0];
        let q1 = &run.schedule.queries[1];
        assert_eq!(q0.wait_secs, 0.0, "the first arrival admits immediately");
        assert!(
            q1.wait_secs > 0.0,
            "the second query must wait for the release (waits {:?})",
            (q0.wait_secs, q1.wait_secs)
        );
        // Admission is serialized: the second query enters exactly when the
        // first completes, and it then runs without processor sharing.
        assert_eq!(q1.admitted_secs, q0.completion_secs);
        assert!(run.schedule.mean_wait_secs > 0.0);

        // With generous memory both are admitted on arrival and interleave.
        let generous = exp
            .run_mix(
                &mix,
                MixPolicy::Fcfs,
                MixMode::CoSimulated,
                Strategy::dynamic(),
            )
            .unwrap();
        assert!(generous.schedule.queries.iter().all(|q| q.wait_secs == 0.0));
        assert_eq!(generous.schedule.mean_wait_secs, 0.0);

        // A demand that can never fit is a configuration error, not a stall.
        let impossible = exp.on_system(system.with_memory_per_node(tight / 2));
        let err = impossible
            .run_mix(
                &mix,
                MixPolicy::Fcfs,
                MixMode::CoSimulated,
                Strategy::dynamic(),
            )
            .unwrap_err();
        assert!(
            matches!(err, dlb_common::DlbError::InvalidConfig(_)),
            "{err}"
        );
    }

    #[test]
    fn mix_run_keys_distinguish_mode_policy_and_entries() {
        use crate::workload::MixEntry;
        let system = HierarchicalSystem::hierarchical(2, 2);
        let workload = CompiledWorkload::generate(WorkloadParams::tiny(2, 4, 11), &system).unwrap();
        let options = ExecOptions::default();
        let entries = vec![MixEntry::default(), MixEntry::default()];
        let demands = [1u64 << 20, 2u64 << 20];
        let key = |entries: &[MixEntry], policy, mode, demands: &[u64]| {
            RunKey::for_mix(
                Strategy::dynamic(),
                &options,
                system.config(),
                workload.fingerprint(),
                entries,
                policy,
                mode,
                demands,
                &[],
            )
        };
        let base = key(&entries, MixPolicy::Fcfs, MixMode::Composed, &demands);
        assert_eq!(
            base,
            key(&entries, MixPolicy::Fcfs, MixMode::Composed, &demands)
        );
        assert_ne!(
            base,
            key(&entries, MixPolicy::Fcfs, MixMode::CoSimulated, &demands)
        );
        assert_ne!(
            base,
            key(&entries, MixPolicy::LoadAware, MixMode::Composed, &demands)
        );
        // The per-query memory demands — the bits the admission (and the
        // co-simulated placement masks derived from them) reason about —
        // separate entries too.
        assert_ne!(
            base,
            key(
                &entries,
                MixPolicy::Fcfs,
                MixMode::Composed,
                &[1u64 << 20, 3u64 << 20]
            )
        );
        let mut reprioritized = entries.clone();
        reprioritized[1].priority = 2;
        assert_ne!(
            base,
            key(&reprioritized, MixPolicy::Fcfs, MixMode::Composed, &demands)
        );
        let mut reskewed = entries.clone();
        reskewed[0].skew = 0.5;
        assert_ne!(
            base,
            key(&reskewed, MixPolicy::Fcfs, MixMode::Composed, &demands)
        );
        // A mix key never collides with the plain key of the same inputs.
        assert_ne!(
            base,
            RunKey::new(
                Strategy::dynamic(),
                &options,
                system.config(),
                workload.fingerprint()
            )
        );
        // Topology events and recovery policies are simulation inputs too.
        let faulted_key = |topology: &[TopologyEvent], options: &ExecOptions| {
            RunKey::for_mix(
                Strategy::dynamic(),
                options,
                system.config(),
                workload.fingerprint(),
                &entries,
                MixPolicy::Fcfs,
                MixMode::CoSimulated,
                &demands,
                topology,
            )
        };
        let cosim = key(&entries, MixPolicy::Fcfs, MixMode::CoSimulated, &demands);
        let fail = [TopologyEvent::fail(0.1, 1)];
        assert_ne!(cosim, faulted_key(&fail, &options));
        assert_ne!(
            faulted_key(&fail, &options),
            faulted_key(&[TopologyEvent::fail(0.2, 1)], &options)
        );
        assert_ne!(
            faulted_key(&fail, &options),
            faulted_key(&[TopologyEvent::drain(0.1, 1)], &options)
        );
        let lose = ExecOptions::builder()
            .recovery_policy(dlb_exec::RecoveryPolicy::LoseRestart)
            .build();
        assert_ne!(faulted_key(&fail, &options), faulted_key(&fail, &lose));
        let range = ExecOptions::builder()
            .rehome_policy(dlb_exec::RehomePolicy::Range)
            .build();
        assert_ne!(faulted_key(&fail, &options), faulted_key(&fail, &range));
    }

    #[test]
    fn run_mix_with_topology_reports_faults_and_the_no_fault_baseline() {
        use crate::workload::MixEntry;
        let exp = small_experiment(2, 2);
        let entries = vec![MixEntry::default(), MixEntry::default()];
        let mix = QueryMix::new(Arc::new(exp.workload().clone()), entries).unwrap();
        // Composed mode cannot host topology events.
        let fail_early = [TopologyEvent::fail(1e-3, 1)];
        assert!(exp
            .run_mix_with_topology(
                &mix,
                MixPolicy::Fcfs,
                MixMode::Composed,
                Strategy::dynamic(),
                &fail_early,
            )
            .is_err());
        let clean = exp
            .run_mix(
                &mix,
                MixPolicy::Fcfs,
                MixMode::CoSimulated,
                Strategy::dynamic(),
            )
            .unwrap();
        assert!(clean.faults.is_none() && clean.fault_free.is_none());
        let faulted = exp
            .run_mix_with_topology(
                &mix,
                MixPolicy::Fcfs,
                MixMode::CoSimulated,
                Strategy::dynamic(),
                &fail_early,
            )
            .unwrap();
        let stats = faulted.faults.expect("faulted runs carry fault stats");
        assert_eq!(stats.failures, 1);
        // The carried baseline is the clean co-simulated schedule, byte for
        // byte (it came from the shared cache).
        assert_eq!(faulted.fault_free.as_ref(), Some(&clean.schedule));
        // The failure reshapes the run (no monotonic response claim is safe
        // at this scale: re-homing changes the interleaving, which can speed
        // individual queries or even this tiny mix up). What must hold: the
        // faulted schedule differs from the clean baseline and the stats
        // record the recovery work.
        assert_ne!(faulted.schedule, clean.schedule);
        assert!(stats.activations_rehomed > 0 || stats.tuples_rehomed > 0);
        // Faulted and clean runs are cached under distinct keys; a repeat is
        // a pure hit.
        let again = exp
            .run_mix_with_topology(
                &mix,
                MixPolicy::Fcfs,
                MixMode::CoSimulated,
                Strategy::dynamic(),
                &fail_early,
            )
            .unwrap();
        assert_eq!(again, faulted);
    }

    fn small_arrivals(queries: usize, templates: usize) -> ArrivalSpec {
        ArrivalSpec {
            kind: dlb_traffic::ArrivalKind::Poisson,
            rate_qps: 50.0,
            burstiness: 0.0,
            queries,
            templates,
            template_skew: 0.0,
            priority_classes: 1,
            seed: 7,
        }
    }

    #[test]
    fn run_open_reports_latencies_and_caches() {
        let exp = small_experiment(2, 2);
        let arrivals = small_arrivals(20, exp.workload().queries().len());
        let run = exp.run_open(&arrivals, 2, Strategy::dynamic()).unwrap();
        assert_eq!(run.report.completed, 20);
        assert_eq!(run.report.response.count(), 20);
        assert!(run.report.peak_live <= 2);
        assert!(run.report.throughput_qps > 0.0);
        assert_eq!(run.solo.len(), exp.workload().len());
        // Loaded responses can never beat the solo baseline: every slowdown
        // sample is >= 1 (the zero bucket stays empty).
        assert_eq!(
            run.report.slowdown.quantile(0.0).map(|v| v > 0.0),
            Some(true)
        );
        // A repeat is a pure cache hit.
        assert_eq!(exp.cache().open_len(), 1);
        let again = exp.run_open(&arrivals, 2, Strategy::dynamic()).unwrap();
        assert_eq!(again, run);
        assert_eq!(exp.cache().open_len(), 1);
        // Mismatched template pool or a zero concurrency are config errors.
        assert!(exp
            .run_open(&small_arrivals(20, 99), 2, Strategy::dynamic())
            .is_err());
        assert!(exp.run_open(&arrivals, 0, Strategy::dynamic()).is_err());
    }

    #[test]
    fn open_run_keys_distinguish_traffic_and_concurrency() {
        let system = HierarchicalSystem::hierarchical(2, 2);
        let workload = CompiledWorkload::generate(WorkloadParams::tiny(2, 4, 11), &system).unwrap();
        let options = ExecOptions::default();
        let frontend = FrontendConfig::default();
        let key = |arrivals: &ArrivalSpec, concurrency: usize| {
            RunKey::for_open(
                Strategy::dynamic(),
                &options,
                system.config(),
                workload.fingerprint(),
                arrivals,
                concurrency,
                &frontend,
            )
        };
        let base_spec = small_arrivals(20, 2);
        let base = key(&base_spec, 4);
        assert_eq!(base, key(&base_spec, 4));
        assert_ne!(base, key(&base_spec, 8));
        assert_ne!(
            base,
            key(
                &ArrivalSpec {
                    rate_qps: 51.0,
                    ..base_spec
                },
                4
            )
        );
        assert_ne!(
            base,
            key(
                &ArrivalSpec {
                    kind: dlb_traffic::ArrivalKind::Bursty,
                    ..base_spec
                },
                4
            )
        );
        assert_ne!(
            base,
            key(
                &ArrivalSpec {
                    seed: 8,
                    ..base_spec
                },
                4
            )
        );
        assert_ne!(
            base,
            key(
                &ArrivalSpec {
                    queries: 21,
                    ..base_spec
                },
                4
            )
        );
        assert_ne!(
            base,
            key(
                &ArrivalSpec {
                    template_skew: 0.5,
                    ..base_spec
                },
                4
            )
        );
        // Every front-end knob is part of the key.
        let fe_key = |frontend: &FrontendConfig| {
            RunKey::for_open(
                Strategy::dynamic(),
                &options,
                system.config(),
                workload.fingerprint(),
                &base_spec,
                4,
                frontend,
            )
        };
        for frontend in [
            FrontendConfig {
                cache_capacity: 2,
                ..FrontendConfig::default()
            },
            FrontendConfig {
                cache_ttl_secs: 0.5,
                ..FrontendConfig::default()
            },
            FrontendConfig {
                coalesce: true,
                ..FrontendConfig::default()
            },
            FrontendConfig {
                fanout_cost_secs: 0.001,
                ..FrontendConfig::default()
            },
        ] {
            assert_ne!(base, fe_key(&frontend), "{frontend:?}");
        }
        // Open keys never collide with plain or mix keys of the same inputs.
        assert_ne!(
            base,
            RunKey::new(
                Strategy::dynamic(),
                &options,
                system.config(),
                workload.fingerprint()
            )
        );
    }

    #[test]
    fn distinct_strategies_are_cached_separately() {
        let exp = small_experiment(1, 2);
        let dp = exp.run(Strategy::dynamic()).unwrap();
        let fp = exp.run(Strategy::fixed(0.0)).unwrap();
        assert!(!Arc::ptr_eq(&dp, &fp));
        // Both stay cached.
        assert!(Arc::ptr_eq(&dp, &exp.run(Strategy::dynamic()).unwrap()));
        assert!(Arc::ptr_eq(&fp, &exp.run(Strategy::fixed(0.0)).unwrap()));
    }

    #[test]
    fn shared_cache_spans_systems_without_confusing_them() {
        let exp = small_experiment(2, 2);
        let base = exp.run(Strategy::dynamic()).unwrap();
        // Same machine, options differing only in steal tuning — fields the
        // seed's per-experiment key did not cover. The shared cache must
        // keep them apart.
        let retuned = exp
            .system()
            .clone()
            .with_options(ExecOptions::builder().min_steal_tuples(1).build());
        let other = exp.on_system(retuned);
        let tuned_runs = other.run(Strategy::dynamic()).unwrap();
        assert!(!Arc::ptr_eq(&base, &tuned_runs));
        // While a genuinely identical configuration, reached through a
        // different Experiment value, hits the shared entry.
        let same = exp.on_system(exp.system().clone());
        assert!(Arc::ptr_eq(&base, &same.run(Strategy::dynamic()).unwrap()));
        assert_eq!(exp.cache().len(), 2);
    }
}
