//! # dlb-core
//!
//! Public facade of the hierdb workspace: everything a downstream user needs
//! to set up a simulated hierarchical parallel database system, generate or
//! describe multi-join workloads, execute them under the three load-balancing
//! strategies of the paper (DP, FP, SP) and aggregate the results with the
//! paper's methodology.
//!
//! ```
//! use dlb_core::{AdHocQuery, HierarchicalSystem, Strategy};
//!
//! // A 2-node x 4-processor hierarchical system with the paper's hardware
//! // parameters.
//! let system = HierarchicalSystem::builder().nodes(2).processors_per_node(4).build();
//!
//! // An ad-hoc 3-relation join query.
//! let query = AdHocQuery::new("triangle")
//!     .relation("customers", 20_000)
//!     .relation("orders", 60_000)
//!     .relation("lineitems", 90_000)
//!     .join("customers", "orders")
//!     .join("orders", "lineitems");
//!
//! let report = system.run(&query.compile(&system).unwrap()[0], Strategy::dynamic()).unwrap();
//! assert!(report.response_time.as_secs_f64() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adhoc;
pub mod experiment;
pub mod scenario;
pub mod summary;
pub mod system;
pub mod workload;

pub use adhoc::AdHocQuery;
pub use dlb_common::config::{CostConstants, CpuParams, DiskParams, NetworkParams, SystemConfig};
pub use dlb_common::{Duration, SimTime};
pub use dlb_exec::mix::{MixJob, MixMode, MixPolicy, MixSchedule, QueryOutcome};
pub use dlb_exec::{
    policies, CoSimQuery, CoSimReport, ContentionModel, ErrorRealization, ExecOptions,
    ExecOptionsBuilder, ExecutionReport, FaultStats, FlowControl, FrontendConfig, FrontendStats,
    OpenReport, ParamSpec, Policy, QueryExecReport, RecoveryOptions, RecoveryPolicy, RehomePolicy,
    StealPolicy, Strategy, TopologyChange, TopologyEvent,
};
pub use dlb_query::plan::{ChainScheduling, ParallelPlan};
pub use dlb_query::{Query, WorkloadParams};
pub use dlb_traffic::{ArrivalKind, ArrivalSpec, LatencyHistogram, LatencySummary};
pub use experiment::{
    init_threads_from_env, set_threads, Experiment, ExperimentBuilder, MixRun, OpenRun, PlanRun,
    RunCache, RunKey,
};
pub use scenario::{run_scenario, ScenarioReport, ScenarioSpec};
pub use summary::{relative_performance, speedup, Summary};
pub use system::{HierarchicalSystem, SystemBuilder};
pub use workload::{CompiledWorkload, MixEntry, QueryMix, WorkloadFingerprint};
