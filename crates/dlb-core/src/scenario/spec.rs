//! The typed scenario description: what to run, over which sweep axes,
//! against which reference, and how to present it.

use crate::workload::MixEntry;
use dlb_common::{DlbError, Result};
use dlb_exec::{ExecOptions, MixMode, MixPolicy, Strategy, TopologyEvent};
use dlb_traffic::ArrivalKind;

/// A sweepable dimension of the evaluation grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Redistribution skew (Zipf theta), applied to the execution options.
    Skew,
    /// Number of SM-nodes of the machine.
    Nodes,
    /// Processors per SM-node.
    ProcessorsPerNode,
    /// FP cost-model error rate, applied to every `error_rate`-parameterized
    /// policy of the strategy set.
    ErrorRate,
    /// Number of concurrent queries of a [`WorkloadSpec::Mix`] workload
    /// (inter-query scheduling scenarios only).
    ConcurrentQueries,
    /// Shared memory per SM-node, in megabytes — the admission limit of
    /// global load balancing and of the inter-query scheduler.
    MemoryPerNode,
    /// Simulated time at which the mix's topology events fire: every event of
    /// the base [`MixSpec::topology`] stream is re-timed to the row value
    /// (failover scenarios sweeping *when* a node dies).
    FailureTime,
    /// Number of nodes failed at the base stream's first event time: the
    /// topology is replaced by that many simultaneous crash failures, taking
    /// the highest node indices first (failover scenarios sweeping *how much*
    /// of the machine dies).
    FailedNodes,
    /// Mean arrival rate (queries per second) of a [`WorkloadSpec::Open`]
    /// workload's stochastic arrival process (open-system scenarios only).
    ArrivalRate,
    /// Burstiness knob of a [`WorkloadSpec::Open`] workload's arrival
    /// process, in `[0, 1)`: 0 = smooth, larger = longer ON/OFF bursts
    /// (open-system scenarios only).
    Burstiness,
    /// Template skew of a [`WorkloadSpec::Open`] workload's arrival process,
    /// in `[0, 1)`: the probability an arrival targets the hot template 0
    /// instead of drawing uniformly (open-system scenarios only).
    TemplateSkew,
}

impl Axis {
    /// Short human label, used as the default row header.
    pub fn label(&self) -> &'static str {
        match self {
            Axis::Skew => "skew",
            Axis::Nodes => "nodes",
            Axis::ProcessorsPerNode => "procs",
            Axis::ErrorRate => "error",
            Axis::ConcurrentQueries => "queries",
            Axis::MemoryPerNode => "mem MB",
            Axis::FailureTime => "fail t",
            Axis::FailedNodes => "failed",
            Axis::ArrivalRate => "rate",
            Axis::Burstiness => "burst",
            Axis::TemplateSkew => "t-skew",
        }
    }

    /// The default row-label formatting for values of this axis.
    pub fn default_row_fmt(&self) -> RowFmt {
        match self {
            Axis::Skew => RowFmt::Fixed1,
            Axis::Nodes
            | Axis::ProcessorsPerNode
            | Axis::ConcurrentQueries
            | Axis::MemoryPerNode
            | Axis::FailedNodes => RowFmt::Int,
            Axis::ErrorRate => RowFmt::Percent,
            Axis::FailureTime => RowFmt::Fixed2,
            Axis::ArrivalRate => RowFmt::Fixed1,
            Axis::Burstiness | Axis::TemplateSkew => RowFmt::Fixed2,
        }
    }

    /// True for axes whose sweep values must be positive integers.
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            Axis::Nodes
                | Axis::ProcessorsPerNode
                | Axis::ConcurrentQueries
                | Axis::MemoryPerNode
                | Axis::FailedNodes
        )
    }

    /// True for the axes that reshape a mix's topology-event stream (and so
    /// require a mix workload carrying one, co-simulated).
    pub fn is_topology(&self) -> bool {
        matches!(self, Axis::FailureTime | Axis::FailedNodes)
    }

    /// True for the axes that retune an open workload's arrival process (and
    /// so require an open workload to act on).
    pub fn is_arrival(&self) -> bool {
        matches!(
            self,
            Axis::ArrivalRate | Axis::Burstiness | Axis::TemplateSkew
        )
    }
}

/// One sweep: an axis and the values it takes.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// The swept dimension.
    pub axis: Axis,
    /// The values, in presentation order. Integer axes (nodes, processors)
    /// take integral values.
    pub values: Vec<f64>,
}

impl Sweep {
    /// A sweep over `axis` with the given values.
    pub fn new(axis: Axis, values: impl IntoIterator<Item = f64>) -> Self {
        Self {
            axis,
            values: values.into_iter().collect(),
        }
    }
}

/// The base machine shape of a scenario (before any axis is applied).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineSpec {
    /// Number of SM-nodes.
    pub nodes: u32,
    /// Processors per SM-node.
    pub processors_per_node: u32,
    /// Shared memory per SM-node in megabytes; `None` keeps the library
    /// default (512 MB). A [`Axis::MemoryPerNode`] sweep overrides this per
    /// point.
    pub memory_per_node_mb: Option<u64>,
}

impl Default for MachineSpec {
    fn default() -> Self {
        // The paper's base hierarchical configuration.
        Self {
            nodes: 4,
            processors_per_node: 8,
            memory_per_node_mb: None,
        }
    }
}

/// An inter-query mix workload: N concurrent queries sharing the machine's
/// SM-nodes under an admission/placement policy (see [`dlb_exec::mix`]).
///
/// The inner workload is generated exactly like [`WorkloadSpec::Generated`]
/// (one plan per query); `arrival_gap_secs`, `priorities` and `skews` derive
/// the per-query [`MixEntry`] descriptors.
#[derive(Debug, Clone, PartialEq)]
pub struct MixSpec {
    /// Number of concurrent queries (overridden per point by an
    /// [`Axis::ConcurrentQueries`] sweep).
    pub queries: usize,
    /// Relations per generated query.
    pub relations: usize,
    /// Cardinality scale factor (1.0 = paper scale).
    pub scale: f64,
    /// Workload seed.
    pub seed: u64,
    /// Arrival spacing: query `i` arrives at `i * arrival_gap_secs`.
    pub arrival_gap_secs: f64,
    /// Admission / placement policy of the mix.
    pub policy: MixPolicy,
    /// Evaluation fidelity: compose solo runs with the analytic contention
    /// model, or co-simulate all queries — placement masks and per-node
    /// memory admission included — in one engine event loop.
    pub mode: MixMode,
    /// Per-query priorities, cycled over the queries; empty = all 1.
    pub priorities: Vec<u32>,
    /// Per-query skew profiles, cycled over the queries; empty = every query
    /// uses the scenario's base `options.skew`.
    pub skews: Vec<f64>,
    /// Deterministic topology events (node failures / drains / joins at
    /// fixed simulated times) injected into the run; requires the
    /// co-simulated mode. Empty = a fault-free run. The
    /// [`Axis::FailureTime`] and [`Axis::FailedNodes`] sweeps reshape this
    /// stream per point.
    pub topology: Vec<TopologyEvent>,
}

impl Default for MixSpec {
    /// A reduced-scale four-query mix under load-aware placement.
    fn default() -> Self {
        let WorkloadSpec::Generated {
            relations,
            scale,
            seed,
            ..
        } = WorkloadSpec::default()
        else {
            unreachable!("default workload is generated");
        };
        Self {
            queries: 4,
            relations,
            scale,
            seed,
            arrival_gap_secs: 0.0,
            policy: MixPolicy::LoadAware,
            mode: MixMode::Composed,
            priorities: Vec::new(),
            skews: Vec::new(),
            topology: Vec::new(),
        }
    }
}

impl MixSpec {
    /// Materializes the per-query [`MixEntry`] descriptors for `queries`
    /// concurrent queries (the spec's own count, unless an
    /// [`Axis::ConcurrentQueries`] sweep overrode it), with `base_skew` as
    /// the profile of queries not covered by `skews`.
    pub fn entries(&self, queries: usize, base_skew: f64) -> Vec<MixEntry> {
        (0..queries)
            .map(|i| MixEntry {
                arrival_secs: i as f64 * self.arrival_gap_secs,
                priority: if self.priorities.is_empty() {
                    1
                } else {
                    self.priorities[i % self.priorities.len()]
                },
                skew: if self.skews.is_empty() {
                    base_skew
                } else {
                    self.skews[i % self.skews.len()]
                },
            })
            .collect()
    }
}

/// An open-system workload: queries arrive over a seeded stochastic process,
/// wait in a FCFS admission queue for a lane slot and per-node memory, run
/// concurrently inside one engine event loop, and retire on completion (see
/// [`dlb_exec::execute_open`]).
///
/// The template pool is generated exactly like [`WorkloadSpec::Generated`]
/// (`templates` plans over `relations` relations each); every arrival
/// instantiates one template chosen uniformly by the arrival stream.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenSpec {
    /// Shape of the arrival process (Poisson / bursty / diurnal).
    pub kind: ArrivalKind,
    /// Long-run target arrival rate in queries per second (overridden per
    /// point by an [`Axis::ArrivalRate`] sweep).
    pub rate_qps: f64,
    /// OFF fraction of the bursty process, in `[0, 1)` (overridden per point
    /// by an [`Axis::Burstiness`] sweep; ignored by the other kinds).
    pub burstiness: f64,
    /// Total number of query arrivals the run generates.
    pub queries: usize,
    /// Number of lane slots: at most this many queries execute concurrently,
    /// and live engine state stays O(concurrency) however long the stream.
    pub concurrency: usize,
    /// Number of priority classes; each arrival draws one uniformly from
    /// `1..=priority_classes`.
    pub priority_classes: u32,
    /// Size of the generated query-template pool.
    pub templates: usize,
    /// Relations per generated template.
    pub relations: usize,
    /// Cardinality scale factor (1.0 = paper scale).
    pub scale: f64,
    /// Seed of both the template generator and the arrival stream.
    pub seed: u64,
    /// Probability an arrival targets the hot template 0 instead of drawing
    /// uniformly, in `[0, 1)` (overridden per point by an
    /// [`Axis::TemplateSkew`] sweep). 0 keeps the historical uniform draw.
    pub template_skew: f64,
    /// Result-cache capacity in entries; 0 disables the cache.
    pub cache_capacity: usize,
    /// Result-cache TTL in simulated seconds; `INFINITY` = never expires.
    pub cache_ttl_secs: f64,
    /// Single-flight coalescing of concurrent identical arrivals.
    pub coalesce: bool,
    /// Front-end fan-out cost in simulated seconds added to every cache hit
    /// and coalesced follower's response.
    pub fanout_cost_secs: f64,
}

impl Default for OpenSpec {
    /// A reduced-scale Poisson stream over a three-template pool.
    fn default() -> Self {
        let WorkloadSpec::Generated {
            relations,
            scale,
            seed,
            ..
        } = WorkloadSpec::default()
        else {
            unreachable!("default workload is generated");
        };
        Self {
            kind: ArrivalKind::Poisson,
            rate_qps: 20.0,
            burstiness: 0.0,
            queries: 120,
            concurrency: 4,
            priority_classes: 1,
            templates: 3,
            relations,
            scale,
            seed,
            template_skew: 0.0,
            cache_capacity: 0,
            cache_ttl_secs: f64::INFINITY,
            coalesce: false,
            fanout_cost_secs: 0.0,
        }
    }
}

impl OpenSpec {
    /// The [`dlb_traffic::ArrivalSpec`] this workload feeds the engine.
    pub fn arrivals(&self) -> dlb_traffic::ArrivalSpec {
        dlb_traffic::ArrivalSpec {
            kind: self.kind,
            rate_qps: self.rate_qps,
            burstiness: self.burstiness,
            queries: self.queries,
            templates: self.templates,
            priority_classes: self.priority_classes,
            seed: self.seed,
            template_skew: self.template_skew,
        }
    }

    /// The [`dlb_exec::FrontendConfig`] this workload places above the
    /// engine. With the default knobs the config is inert and
    /// [`dlb_exec::execute_open`] behaves bit-identically to a run with no
    /// front end at all.
    pub fn frontend(&self) -> dlb_exec::FrontendConfig {
        dlb_exec::FrontendConfig {
            cache_capacity: self.cache_capacity,
            cache_ttl_secs: self.cache_ttl_secs,
            coalesce: self.coalesce,
            fanout_cost_secs: self.fanout_cost_secs,
        }
    }
}

/// The workload a scenario executes.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// A generated multi-join workload (§5.1.2): `queries` random queries
    /// over `relations` relations each, compiled to their best bushy plans.
    Generated {
        /// Number of generated queries.
        queries: usize,
        /// Relations per query.
        relations: usize,
        /// Cardinality scale factor (1.0 = paper scale).
        scale: f64,
        /// Workload seed.
        seed: u64,
    },
    /// A single maximum pipeline chain (§5.3): a right-deep join tree whose
    /// probe relation streams through `relations - 1` consecutive probes.
    Chain {
        /// Number of base relations (chain length is `relations` operators:
        /// the probe scan plus `relations - 1` probes).
        relations: usize,
        /// Cardinality of every build relation.
        build_rows: u64,
        /// Cardinality of the probing relation.
        probe_rows: u64,
    },
    /// An inter-query mix: N concurrent queries scheduled onto shared
    /// SM-nodes (see [`MixSpec`]).
    Mix(MixSpec),
    /// An open system: stochastic arrivals over a template pool, streaming
    /// FCFS admission into bounded lane slots, latency percentiles out (see
    /// [`OpenSpec`]).
    Open(OpenSpec),
}

impl Default for WorkloadSpec {
    /// The evaluation harness's reduced default workload (a full run
    /// completes in seconds; `--paper` / environment overrides approach the
    /// paper's scale).
    fn default() -> Self {
        WorkloadSpec::Generated {
            queries: 6,
            relations: 10,
            scale: 0.1,
            seed: 0xD1B_1996,
        }
    }
}

impl WorkloadSpec {
    /// True for inter-query mix workloads.
    pub fn is_mix(&self) -> bool {
        matches!(self, WorkloadSpec::Mix(_))
    }

    /// True for open-system workloads.
    pub fn is_open(&self) -> bool {
        matches!(self, WorkloadSpec::Open(_))
    }
}

/// What each measured run is compared against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reference {
    /// The run of this strategy at the same sweep point (e.g. SP in Figure
    /// 6, DP in Figure 10).
    SamePoint(Strategy),
    /// Each strategy's own run at the first row value (speed-up baselines,
    /// skew-degradation baselines).
    FirstRow,
}

/// The per-point metric derived from the run and its reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Mean of per-plan response-time ratios run/reference (1.0 = equal,
    /// larger = slower) — the paper's relative-performance metric.
    Relative,
    /// Mean per-plan speed-up reference/run (larger = faster).
    Speedup,
}

/// How a row label is rendered in text output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowFmt {
    /// The value as an integer (processor or node counts).
    Int,
    /// One decimal (skew factors).
    Fixed1,
    /// Two decimals (failure times in seconds).
    Fixed2,
    /// A percentage without decimals, e.g. `20%` (error rates).
    Percent,
    /// `<nodes>x<value>` machine-shape labels, e.g. `4x12`.
    NodesByProcs,
}

/// Layout constants of a rendered table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStyle {
    /// Header of the row-label column.
    pub row_header: String,
    /// Row-label formatting.
    pub row_fmt: RowFmt,
    /// Width of the row-label column.
    pub row_width: usize,
    /// Width of every value column.
    pub cell_width: usize,
    /// Value-column headers; empty means "use the strategy labels".
    pub headers: Vec<String>,
}

impl TableStyle {
    /// The default style for a row sweep over `axis`.
    pub fn for_axis(axis: Axis) -> Self {
        Self {
            row_header: axis.label().to_string(),
            row_fmt: axis.default_row_fmt(),
            row_width: 8,
            cell_width: 8,
            headers: Vec::new(),
        }
    }
}

/// How a scenario's results are rendered as text.
#[derive(Debug, Clone, PartialEq)]
pub enum Presentation {
    /// One row per row-axis value, one value column per strategy.
    Table(TableStyle),
    /// One row per row-axis value, one value column per *column-axis* value
    /// (single-strategy grids such as Figure 7).
    Grid(TableStyle),
    /// Strategy ratio columns followed by per-strategy load-balancing
    /// traffic and idle-time columns (Figure 10).
    Balance(TableStyle),
    /// The §5.3 pipeline-chain report: plan shape, absolute response times
    /// and load-balancing traffic of each strategy.
    Chain,
    /// Inter-query mix report: strategy ratio columns followed by
    /// per-strategy mean response, makespan, slowdown and admission-wait
    /// columns (mix workloads only).
    Mix(TableStyle),
    /// Open-system report: strategy ratio columns followed by per-strategy
    /// response percentiles (p50/p95/p99), mean admission wait, mean
    /// slowdown and achieved throughput (open workloads only).
    Open(TableStyle),
}

/// A complete, serializable description of one evaluation scenario.
///
/// A spec owns everything a figure needs: machine shape, workload, execution
/// options, the strategy set, up to two sweep axes, the reference and metric
/// of each point, and its presentation. Bundled specs for every figure of the
/// paper live in [`crate::scenario::registry`]; arbitrary specs come from
/// [`ScenarioSpec::builder`] or from JSON files via
/// [`ScenarioSpec::from_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Registry / lookup name (`fig6`, `chain53`, ...).
    pub name: String,
    /// Display title (`Figure 6`).
    pub title: String,
    /// One-line description, shown in banners and listings.
    pub description: String,
    /// Base machine shape; sweep axes may override parts of it per point.
    pub machine: MachineSpec,
    /// Base execution options; the skew axis overrides `options.skew`.
    pub options: ExecOptions,
    /// The workload to execute.
    pub workload: WorkloadSpec,
    /// The strategies to measure, in presentation order.
    pub strategies: Vec<Strategy>,
    /// The row sweep.
    pub rows: Sweep,
    /// The optional column sweep (grids).
    pub columns: Option<Sweep>,
    /// What each run is measured against.
    pub reference: Reference,
    /// The per-point metric.
    pub metric: Metric,
    /// Text-rendering instructions.
    pub presentation: Presentation,
    /// Free-form note printed under the table (the paper's expectation).
    pub notes: String,
}

impl ScenarioSpec {
    /// Starts building a scenario with the given name.
    ///
    /// ```
    /// use dlb_core::scenario::{Axis, Reference, ScenarioSpec};
    /// use dlb_core::Strategy;
    ///
    /// let spec = ScenarioSpec::builder("skew-sweep")
    ///     .title("Skew sweep")
    ///     .machine(2, 4)
    ///     .strategies([Strategy::dynamic(), Strategy::fixed(0.0)])
    ///     .rows(Axis::Skew, [0.0, 0.5, 1.0])
    ///     .reference(Reference::SamePoint(Strategy::dynamic()))
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(spec.rows.values.len(), 3);
    /// assert!(spec.validate().is_ok());
    /// ```
    pub fn builder(name: impl Into<String>) -> ScenarioSpecBuilder {
        ScenarioSpecBuilder::new(name)
    }

    /// Returns a copy with the generated-workload parameters replaced
    /// (chain workloads are returned unchanged; mix workloads keep their
    /// scheduling knobs but replace the generation parameters). This is how
    /// the harness applies `--paper` / `HIERDB_*` environment overrides to
    /// bundled specs.
    pub fn with_generated_workload(
        mut self,
        queries: usize,
        relations: usize,
        scale: f64,
        seed: u64,
    ) -> Self {
        match &mut self.workload {
            WorkloadSpec::Generated { .. } => {
                self.workload = WorkloadSpec::Generated {
                    queries,
                    relations,
                    scale,
                    seed,
                };
            }
            WorkloadSpec::Mix(mix) => {
                mix.queries = queries;
                mix.relations = relations;
                mix.scale = scale;
                mix.seed = seed;
            }
            // For an open workload the generated set is the template pool;
            // the arrival count and process knobs are traffic, not workload,
            // so the override leaves them alone.
            WorkloadSpec::Open(open) => {
                open.templates = queries;
                open.relations = relations;
                open.scale = scale;
                open.seed = seed;
            }
            WorkloadSpec::Chain { .. } => {}
        }
        self
    }

    /// Checks the structural invariants of the spec.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| {
            Err(DlbError::InvalidConfig(format!(
                "scenario {}: {msg}",
                self.name
            )))
        };
        if self.name.is_empty() {
            return fail("empty name".to_string());
        }
        if self.strategies.is_empty() {
            return fail("no strategies".to_string());
        }
        if self.machine.nodes == 0 || self.machine.processors_per_node == 0 {
            return fail("machine must have at least 1x1 processors".to_string());
        }
        if self.machine.memory_per_node_mb == Some(0) {
            return fail("memory_per_node_mb must be positive".to_string());
        }
        for sweep in std::iter::once(&self.rows).chain(self.columns.as_ref()) {
            if sweep.values.is_empty() {
                return fail("empty sweep".to_string());
            }
            for &v in &sweep.values {
                if !v.is_finite() {
                    return fail(format!("non-finite {} value {v}", sweep.axis.label()));
                }
                if sweep.axis.is_integer() && (v < 1.0 || v.fract() != 0.0 || v > u32::MAX as f64) {
                    return fail(format!(
                        "{} values must be positive integers, got {v}",
                        sweep.axis.label()
                    ));
                }
            }
            // The concurrent-queries axis resizes a mix and the topology
            // axes reshape a mix's event stream; on any other workload they
            // have nothing to act on. Rejecting them here keeps
            // `scenario --export` / `run_scenario` on the error path instead
            // of a panic deeper in the driver.
            if (sweep.axis == Axis::ConcurrentQueries || sweep.axis.is_topology())
                && !self.workload.is_mix()
            {
                return fail(format!(
                    "the {} axis requires a mix workload",
                    sweep.axis.label()
                ));
            }
            // The arrival axes retune an open workload's arrival process; on
            // any other workload they have nothing to act on.
            if sweep.axis.is_arrival() && !self.workload.is_open() {
                return fail(format!(
                    "the {} axis requires an open workload",
                    sweep.axis.label()
                ));
            }
            if sweep.axis == Axis::ArrivalRate {
                if let Some(&v) = sweep.values.iter().find(|v| **v <= 0.0) {
                    return fail(format!("arrival_rate_qps values must be > 0, got {v}"));
                }
            }
            if sweep.axis == Axis::Burstiness {
                if let Some(&v) = sweep.values.iter().find(|v| !(0.0..1.0).contains(*v)) {
                    return fail(format!("burstiness values must lie in [0, 1), got {v}"));
                }
            }
            if sweep.axis == Axis::TemplateSkew {
                if let Some(&v) = sweep.values.iter().find(|v| !(0.0..1.0).contains(*v)) {
                    return fail(format!("template_skew values must lie in [0, 1), got {v}"));
                }
            }
            if sweep.axis == Axis::FailureTime {
                if let Some(&v) = sweep.values.iter().find(|v| **v < 0.0) {
                    return fail(format!("failure_time values must be >= 0, got {v}"));
                }
            }
            // Failing all nodes (or more) would leave no live node to finish
            // the mix; the engine's topology validator would reject it later,
            // but per point and with a less actionable message.
            if sweep.axis == Axis::FailedNodes {
                if let Some(&v) = sweep
                    .values
                    .iter()
                    .find(|v| **v >= self.machine.nodes as f64)
                {
                    return fail(format!(
                        "failed_nodes values must leave at least one live node \
                         (machine has {} nodes, got {v})",
                        self.machine.nodes
                    ));
                }
            }
            // A first-row reference compares per-query response times by
            // mix index; rows of different concurrency run different query
            // sets, so the comparison would be meaningless.
            if sweep.axis == Axis::ConcurrentQueries && self.reference == Reference::FirstRow {
                return fail(
                    "a first_row reference cannot span a concurrent_queries sweep \
                     (rows run different query sets); use a same_point reference"
                        .to_string(),
                );
            }
        }
        if let Some(cols) = &self.columns {
            if cols.axis == self.rows.axis {
                return fail("rows and columns sweep the same axis".to_string());
            }
        }
        // SP only exists on single-node machines: reject specs where any
        // point could be multi-node while SP is measured or referenced.
        let uses_sp = self.strategies.iter().any(|s| !s.queue_based())
            || matches!(self.reference, Reference::SamePoint(r) if !r.queue_based());
        if uses_sp {
            let multi_node = if let Some(sweep) = self.sweep_of(Axis::Nodes) {
                sweep.values.iter().any(|&v| v != 1.0)
            } else {
                self.machine.nodes != 1
            };
            if multi_node {
                return fail("SP (Synchronous) is only valid on single-node machines".to_string());
            }
        }
        match (&self.presentation, &self.workload) {
            (Presentation::Chain, w) if !matches!(w, WorkloadSpec::Chain { .. }) => {
                return fail("chain presentation requires a chain workload".to_string());
            }
            (Presentation::Chain, _) if self.columns.is_some() || self.rows.values.len() != 1 => {
                return fail("chain presentation requires a single sweep point".to_string());
            }
            (Presentation::Mix(_), w) if !w.is_mix() => {
                return fail("mix presentation requires a mix workload".to_string());
            }
            (Presentation::Open(_), w) if !w.is_open() => {
                return fail("open presentation requires an open workload".to_string());
            }
            (Presentation::Grid(_), _) if self.columns.is_none() => {
                return fail("grid presentation requires a column sweep".to_string());
            }
            // The grid's value columns are the column-axis values, so only
            // one strategy can be shown; reject instead of silently dropping
            // the rest at render time.
            (Presentation::Grid(_), _) if self.strategies.len() != 1 => {
                return fail(format!(
                    "grid presentations show exactly one strategy, got {}",
                    self.strategies.len()
                ));
            }
            (
                Presentation::Table(_)
                | Presentation::Balance(_)
                | Presentation::Mix(_)
                | Presentation::Open(_),
                _,
            ) if self.columns.is_some() => {
                return fail("column sweeps require the grid presentation".to_string());
            }
            _ => {}
        }
        if let WorkloadSpec::Chain { relations, .. } = self.workload {
            if relations < 2 {
                return fail("chain workloads need at least 2 relations".to_string());
            }
        }
        if let WorkloadSpec::Mix(mix) = &self.workload {
            if mix.queries == 0 {
                return fail("mix workloads need at least 1 query".to_string());
            }
            if mix.mode == MixMode::CoSimulated {
                // Co-simulation interleaves activation queues; SP has no
                // queues to interleave. Every placement policy is supported:
                // pinning policies re-home each query's plan onto its
                // placement mask inside the event loop.
                if self.strategies.iter().any(|s| !s.queue_based())
                    || matches!(self.reference, Reference::SamePoint(r) if !r.queue_based())
                {
                    return fail(
                        "co-simulated mixes require a queue-based strategy (DP or FP)".to_string(),
                    );
                }
            }
            if mix.relations < 2 {
                return fail("mix queries need at least 2 relations".to_string());
            }
            if !(mix.arrival_gap_secs.is_finite() && mix.arrival_gap_secs >= 0.0) {
                return fail(format!(
                    "mix arrival gap must be a non-negative number, got {}",
                    mix.arrival_gap_secs
                ));
            }
            if mix.priorities.contains(&0) {
                return fail("mix priorities must be ≥ 1".to_string());
            }
            if mix
                .skews
                .iter()
                .any(|&s| !(s.is_finite() && (0.0..=1.0).contains(&s)))
            {
                return fail("mix skew profiles must lie in [0, 1]".to_string());
            }
            // Topology events only exist inside the co-simulated event loop;
            // the analytic composition has nothing to inject them into.
            if !mix.topology.is_empty() && mix.mode != MixMode::CoSimulated {
                return fail("topology events require the co-simulated mix mode".to_string());
            }
            // A nodes sweep changes the machine the stream was validated
            // against (indices may fall out of range, live-set rules shift
            // per point) — reject the combination up front.
            if !mix.topology.is_empty() && self.sweep_of(Axis::Nodes).is_some() {
                return fail(
                    "topology events cannot be combined with a nodes sweep \
                     (the stream is validated against a fixed machine shape)"
                        .to_string(),
                );
            }
            if let Err(e) = dlb_exec::validate_topology(&mix.topology, self.machine.nodes) {
                return fail(format!("invalid topology stream: {e}"));
            }
            // The topology axes re-time / re-shape the base stream, so there
            // must be one to act on.
            for sweep in std::iter::once(&self.rows).chain(self.columns.as_ref()) {
                if sweep.axis.is_topology() && mix.topology.is_empty() {
                    return fail(format!(
                        "the {} axis requires the mix to carry at least one \
                         topology event to reshape",
                        sweep.axis.label()
                    ));
                }
            }
        }
        if let WorkloadSpec::Open(open) = &self.workload {
            // The stream's own parameter ranges (rate, burstiness, counts)
            // are checked by dlb-traffic; prefix its message with ours.
            if let Err(e) = open.arrivals().validate() {
                return fail(format!("invalid open workload: {e}"));
            }
            if open.concurrency == 0 {
                return fail("open workloads need at least 1 lane slot".to_string());
            }
            if open.relations < 2 {
                return fail("open templates need at least 2 relations".to_string());
            }
            // Front-end knob ranges (TTL > 0, finite non-negative fan-out)
            // are checked by dlb-frontend; prefix its message with ours.
            if let Err(e) = open.frontend().validate() {
                return fail(format!("invalid open front end: {e}"));
            }
            // The open engine interleaves activation queues; SP has none.
            if self.strategies.iter().any(|s| !s.queue_based())
                || matches!(self.reference, Reference::SamePoint(r) if !r.queue_based())
            {
                return fail(
                    "open workloads require a queue-based strategy (DP or FP)".to_string(),
                );
            }
            // Each row's percentiles summarize that row's own stream; a
            // first-row reference would compare different arrival sequences
            // sample by sample, which is meaningless.
            if self.reference == Reference::FirstRow && self.rows.axis.is_arrival() {
                return fail(
                    "a first_row reference cannot span an arrival sweep \
                     (rows run different arrival streams); use a same_point reference"
                        .to_string(),
                );
            }
        }
        if let Presentation::Table(style)
        | Presentation::Grid(style)
        | Presentation::Balance(style)
        | Presentation::Mix(style)
        | Presentation::Open(style) = &self.presentation
        {
            if !style.headers.is_empty() && style.headers.len() != self.strategies.len() {
                return fail(format!(
                    "{} column headers for {} strategies",
                    style.headers.len(),
                    self.strategies.len()
                ));
            }
        }
        Ok(())
    }

    /// The sweep (rows or columns) over `axis`, if any.
    pub fn sweep_of(&self, axis: Axis) -> Option<&Sweep> {
        if self.rows.axis == axis {
            Some(&self.rows)
        } else {
            self.columns.as_ref().filter(|c| c.axis == axis)
        }
    }
}

/// Builder for [`ScenarioSpec`]; `build` validates the result.
#[derive(Debug, Clone)]
pub struct ScenarioSpecBuilder {
    spec: ScenarioSpec,
    presentation_set: bool,
}

impl ScenarioSpecBuilder {
    fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        Self {
            spec: ScenarioSpec {
                title: name.clone(),
                name,
                description: String::new(),
                machine: MachineSpec::default(),
                options: ExecOptions::default(),
                workload: WorkloadSpec::default(),
                strategies: vec![Strategy::dynamic(), Strategy::fixed(0.0)],
                rows: Sweep::new(Axis::Skew, [0.0]),
                columns: None,
                reference: Reference::SamePoint(Strategy::dynamic()),
                metric: Metric::Relative,
                presentation: Presentation::Table(TableStyle::for_axis(Axis::Skew)),
                notes: String::new(),
            },
            presentation_set: false,
        }
    }

    /// Sets the display title.
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.spec.title = title.into();
        self
    }

    /// Sets the one-line description.
    pub fn description(mut self, description: impl Into<String>) -> Self {
        self.spec.description = description.into();
        self
    }

    /// Sets the base machine shape (memory per node keeps its current
    /// setting).
    pub fn machine(mut self, nodes: u32, processors_per_node: u32) -> Self {
        self.spec.machine.nodes = nodes;
        self.spec.machine.processors_per_node = processors_per_node;
        self
    }

    /// Sets the shared memory per SM-node, in megabytes.
    pub fn memory_per_node_mb(mut self, mb: u64) -> Self {
        self.spec.machine.memory_per_node_mb = Some(mb);
        self
    }

    /// Sets the base execution options.
    pub fn options(mut self, options: ExecOptions) -> Self {
        self.spec.options = options;
        self
    }

    /// Sets the workload.
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.spec.workload = workload;
        self
    }

    /// Sets the strategy set, in presentation order.
    pub fn strategies(mut self, strategies: impl IntoIterator<Item = Strategy>) -> Self {
        self.spec.strategies = strategies.into_iter().collect();
        self
    }

    /// Sets the row sweep.
    pub fn rows(mut self, axis: Axis, values: impl IntoIterator<Item = f64>) -> Self {
        self.spec.rows = Sweep::new(axis, values);
        self
    }

    /// Sets the column sweep (grids).
    pub fn columns(mut self, axis: Axis, values: impl IntoIterator<Item = f64>) -> Self {
        self.spec.columns = Some(Sweep::new(axis, values));
        self
    }

    /// Sets the reference.
    pub fn reference(mut self, reference: Reference) -> Self {
        self.spec.reference = reference;
        self
    }

    /// Sets the metric.
    pub fn metric(mut self, metric: Metric) -> Self {
        self.spec.metric = metric;
        self
    }

    /// Sets the presentation.
    pub fn presentation(mut self, presentation: Presentation) -> Self {
        self.spec.presentation = presentation;
        self.presentation_set = true;
        self
    }

    /// Sets the paper-expectation note.
    pub fn notes(mut self, notes: impl Into<String>) -> Self {
        self.spec.notes = notes.into();
        self
    }

    /// Validates and returns the spec. When no presentation was set
    /// explicitly, a default styled for the row axis is derived: a grid for
    /// column sweeps, the mix report for mix workloads, the open report for
    /// open workloads, a plain table otherwise.
    pub fn build(mut self) -> Result<ScenarioSpec> {
        if !self.presentation_set {
            self.spec.presentation = if self.spec.columns.is_some() {
                Presentation::Grid(TableStyle::for_axis(self.spec.rows.axis))
            } else if self.spec.workload.is_mix() {
                Presentation::Mix(TableStyle::for_axis(self.spec.rows.axis))
            } else if self.spec.workload.is_open() {
                Presentation::Open(TableStyle::for_axis(self.spec.rows.axis))
            } else {
                Presentation::Table(TableStyle::for_axis(self.spec.rows.axis))
            };
        }
        self.spec.validate()?;
        Ok(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_validate() {
        let spec = ScenarioSpec::builder("smoke").build().unwrap();
        assert_eq!(spec.name, "smoke");
        assert_eq!(spec.title, "smoke");
        assert_eq!(spec.machine, MachineSpec::default());
        assert!(matches!(spec.presentation, Presentation::Table(_)));
    }

    #[test]
    fn builder_derives_grid_presentation_for_column_sweeps() {
        let spec = ScenarioSpec::builder("grid")
            .machine(1, 8)
            .strategies([Strategy::fixed(0.0)])
            .rows(Axis::ErrorRate, [0.0, 0.1])
            .columns(Axis::ProcessorsPerNode, [8.0, 16.0])
            .build()
            .unwrap();
        assert!(matches!(spec.presentation, Presentation::Grid(_)));
    }

    #[test]
    fn validation_rejects_structural_nonsense() {
        // Empty strategy set.
        assert!(ScenarioSpec::builder("x").strategies([]).build().is_err());
        // Empty sweep.
        assert!(ScenarioSpec::builder("x")
            .rows(Axis::Skew, [])
            .build()
            .is_err());
        // Fractional node counts.
        assert!(ScenarioSpec::builder("x")
            .rows(Axis::Nodes, [1.5])
            .build()
            .is_err());
        // SP on a multi-node machine.
        assert!(ScenarioSpec::builder("x")
            .machine(4, 8)
            .strategies([Strategy::synchronous()])
            .build()
            .is_err());
        // SP reached through a nodes sweep.
        assert!(ScenarioSpec::builder("x")
            .machine(1, 8)
            .strategies([Strategy::synchronous()])
            .rows(Axis::Nodes, [1.0, 2.0])
            .build()
            .is_err());
        // Rows and columns on the same axis.
        assert!(ScenarioSpec::builder("x")
            .rows(Axis::Skew, [0.0])
            .columns(Axis::Skew, [0.1])
            .build()
            .is_err());
        // Chain presentation without a chain workload.
        assert!(ScenarioSpec::builder("x")
            .presentation(Presentation::Chain)
            .build()
            .is_err());
        // Grids can only render one strategy; more must be rejected rather
        // than silently dropped.
        assert!(ScenarioSpec::builder("x")
            .machine(1, 8)
            .strategies([Strategy::dynamic(), Strategy::fixed(0.0)])
            .rows(Axis::ErrorRate, [0.0, 0.1])
            .columns(Axis::ProcessorsPerNode, [8.0, 16.0])
            .build()
            .is_err());
    }

    #[test]
    fn mix_specs_validate_and_derive_the_mix_presentation() {
        let spec = ScenarioSpec::builder("mix")
            .workload(WorkloadSpec::Mix(MixSpec::default()))
            .rows(Axis::ConcurrentQueries, [2.0, 4.0])
            .build()
            .unwrap();
        assert!(matches!(spec.presentation, Presentation::Mix(_)));
        // Entries cycle priorities and skews, defaulting to 1 / base skew.
        let entries = MixSpec {
            arrival_gap_secs: 0.5,
            priorities: vec![2, 1],
            skews: vec![0.3],
            ..MixSpec::default()
        }
        .entries(3, 0.9);
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[2].arrival_secs, 1.0);
        assert_eq!(entries[0].priority, 2);
        assert_eq!(entries[1].priority, 1);
        assert_eq!(entries[2].priority, 2);
        assert!(entries.iter().all(|e| e.skew == 0.3));
        let defaults = MixSpec::default().entries(2, 0.9);
        assert!(defaults.iter().all(|e| e.priority == 1 && e.skew == 0.9));
    }

    #[test]
    fn mix_validation_rejects_unsupported_axes_and_bad_knobs() {
        // The concurrent-queries axis needs a mix workload.
        let err = ScenarioSpec::builder("x")
            .rows(Axis::ConcurrentQueries, [2.0])
            .build()
            .unwrap_err();
        assert!(
            matches!(err, DlbError::InvalidConfig(ref m) if m.contains("mix workload")),
            "{err}"
        );
        // The mix presentation needs a mix workload.
        assert!(ScenarioSpec::builder("x")
            .presentation(Presentation::Mix(TableStyle::for_axis(Axis::Skew)))
            .build()
            .is_err());
        // Chain presentation on a mix workload is rejected.
        assert!(ScenarioSpec::builder("x")
            .workload(WorkloadSpec::Mix(MixSpec::default()))
            .presentation(Presentation::Chain)
            .build()
            .is_err());
        // Bad mix knobs.
        for bad in [
            MixSpec {
                queries: 0,
                ..MixSpec::default()
            },
            MixSpec {
                arrival_gap_secs: -1.0,
                ..MixSpec::default()
            },
            MixSpec {
                priorities: vec![0],
                ..MixSpec::default()
            },
            MixSpec {
                skews: vec![2.0],
                ..MixSpec::default()
            },
        ] {
            assert!(
                ScenarioSpec::builder("x")
                    .workload(WorkloadSpec::Mix(bad.clone()))
                    .build()
                    .is_err(),
                "{bad:?}"
            );
        }
        // first_row across a concurrency sweep compares different query
        // sets — rejected.
        assert!(ScenarioSpec::builder("x")
            .workload(WorkloadSpec::Mix(MixSpec::default()))
            .rows(Axis::ConcurrentQueries, [2.0, 4.0])
            .reference(Reference::FirstRow)
            .build()
            .is_err());
        // Memory axis values must be positive integers; zero base memory is
        // rejected.
        assert!(ScenarioSpec::builder("x")
            .rows(Axis::MemoryPerNode, [0.5])
            .build()
            .is_err());
        let mut spec = ScenarioSpec::builder("x").build().unwrap();
        spec.machine.memory_per_node_mb = Some(0);
        assert!(spec.validate().is_err());
    }

    #[test]
    fn cosimulated_mixes_accept_every_placement_policy() {
        for policy in [MixPolicy::Fcfs, MixPolicy::RoundRobin, MixPolicy::LoadAware] {
            let spec = ScenarioSpec::builder("cosim")
                .workload(WorkloadSpec::Mix(MixSpec {
                    policy,
                    mode: MixMode::CoSimulated,
                    ..MixSpec::default()
                }))
                .build();
            assert!(spec.is_ok(), "{policy:?} must co-simulate");
        }
        // SP still has no activation queues to interleave.
        let sp = ScenarioSpec::builder("cosim-sp")
            .machine(1, 8)
            .strategies([Strategy::synchronous()])
            .reference(Reference::SamePoint(Strategy::synchronous()))
            .workload(WorkloadSpec::Mix(MixSpec {
                mode: MixMode::CoSimulated,
                ..MixSpec::default()
            }))
            .build();
        assert!(sp.is_err());
    }

    #[test]
    fn open_specs_validate_and_derive_the_open_presentation() {
        let spec = ScenarioSpec::builder("open")
            .workload(WorkloadSpec::Open(OpenSpec::default()))
            .rows(Axis::ArrivalRate, [10.0, 20.0])
            .build()
            .unwrap();
        assert!(matches!(spec.presentation, Presentation::Open(_)));
        assert!(spec.workload.is_open());
        // The derived arrival spec mirrors the workload's traffic knobs.
        let arrivals = OpenSpec::default().arrivals();
        assert_eq!(arrivals.queries, OpenSpec::default().queries);
        assert_eq!(arrivals.templates, OpenSpec::default().templates);
    }

    #[test]
    fn open_validation_rejects_unsupported_axes_and_bad_knobs() {
        // The arrival axes need an open workload.
        let err = ScenarioSpec::builder("x")
            .rows(Axis::ArrivalRate, [10.0])
            .build()
            .unwrap_err();
        assert!(
            matches!(err, DlbError::InvalidConfig(ref m) if m.contains("open workload")),
            "{err}"
        );
        assert!(ScenarioSpec::builder("x")
            .rows(Axis::Burstiness, [0.5])
            .build()
            .is_err());
        // Axis value ranges: rates positive, burstiness in [0, 1).
        assert!(ScenarioSpec::builder("x")
            .workload(WorkloadSpec::Open(OpenSpec::default()))
            .rows(Axis::ArrivalRate, [0.0])
            .build()
            .is_err());
        assert!(ScenarioSpec::builder("x")
            .workload(WorkloadSpec::Open(OpenSpec::default()))
            .rows(Axis::Burstiness, [1.0])
            .build()
            .is_err());
        assert!(ScenarioSpec::builder("x")
            .workload(WorkloadSpec::Open(OpenSpec::default()))
            .rows(Axis::TemplateSkew, [1.0])
            .build()
            .is_err());
        // The open presentation needs an open workload.
        assert!(ScenarioSpec::builder("x")
            .presentation(Presentation::Open(TableStyle::for_axis(Axis::Skew)))
            .build()
            .is_err());
        // SP has no activation queues to interleave arrivals into.
        assert!(ScenarioSpec::builder("x")
            .machine(1, 8)
            .strategies([Strategy::synchronous()])
            .reference(Reference::SamePoint(Strategy::synchronous()))
            .workload(WorkloadSpec::Open(OpenSpec::default()))
            .build()
            .is_err());
        // first_row across an arrival sweep compares different streams.
        assert!(ScenarioSpec::builder("x")
            .workload(WorkloadSpec::Open(OpenSpec::default()))
            .rows(Axis::ArrivalRate, [10.0, 20.0])
            .reference(Reference::FirstRow)
            .build()
            .is_err());
        // Bad open knobs.
        for bad in [
            OpenSpec {
                rate_qps: 0.0,
                ..OpenSpec::default()
            },
            OpenSpec {
                burstiness: 1.0,
                ..OpenSpec::default()
            },
            OpenSpec {
                queries: 0,
                ..OpenSpec::default()
            },
            OpenSpec {
                concurrency: 0,
                ..OpenSpec::default()
            },
            OpenSpec {
                templates: 0,
                ..OpenSpec::default()
            },
            OpenSpec {
                priority_classes: 0,
                ..OpenSpec::default()
            },
            OpenSpec {
                relations: 1,
                ..OpenSpec::default()
            },
            OpenSpec {
                template_skew: 1.0,
                ..OpenSpec::default()
            },
            OpenSpec {
                cache_ttl_secs: 0.0,
                ..OpenSpec::default()
            },
            OpenSpec {
                fanout_cost_secs: -0.5,
                ..OpenSpec::default()
            },
            OpenSpec {
                fanout_cost_secs: f64::INFINITY,
                ..OpenSpec::default()
            },
        ] {
            assert!(
                ScenarioSpec::builder("x")
                    .workload(WorkloadSpec::Open(bad.clone()))
                    .build()
                    .is_err(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn workload_override_maps_queries_to_the_open_template_pool() {
        let open = ScenarioSpec::builder("o")
            .workload(WorkloadSpec::Open(OpenSpec::default()))
            .build()
            .unwrap();
        let overridden = open.with_generated_workload(2, 5, 0.01, 7);
        let WorkloadSpec::Open(spec) = &overridden.workload else {
            panic!("override must keep the open workload");
        };
        assert_eq!(spec.templates, 2);
        assert_eq!(spec.relations, 5);
        assert_eq!(spec.scale, 0.01);
        assert_eq!(spec.seed, 7);
        // Traffic knobs are untouched.
        assert_eq!(spec.queries, OpenSpec::default().queries);
        assert_eq!(spec.rate_qps, OpenSpec::default().rate_qps);
    }

    #[test]
    fn memory_axis_is_valid_on_any_workload() {
        let spec = ScenarioSpec::builder("mem")
            .rows(Axis::MemoryPerNode, [64.0, 512.0])
            .build();
        assert!(spec.is_ok());
    }

    #[test]
    fn sp_is_accepted_on_single_node_sweeps() {
        let spec = ScenarioSpec::builder("sm")
            .machine(1, 16)
            .strategies([Strategy::synchronous(), Strategy::dynamic()])
            .reference(Reference::SamePoint(Strategy::synchronous()))
            .rows(Axis::ProcessorsPerNode, [16.0, 32.0])
            .build();
        assert!(spec.is_ok());
    }

    #[test]
    fn workload_override_leaves_chains_alone() {
        let generated = ScenarioSpec::builder("g").build().unwrap();
        let overridden = generated.with_generated_workload(2, 5, 0.01, 7);
        assert_eq!(
            overridden.workload,
            WorkloadSpec::Generated {
                queries: 2,
                relations: 5,
                scale: 0.01,
                seed: 7
            }
        );
        let chain = ScenarioSpec::builder("c")
            .workload(WorkloadSpec::Chain {
                relations: 5,
                build_rows: 100,
                probe_rows: 300,
            })
            .presentation(Presentation::Chain)
            .rows(Axis::Skew, [0.8])
            .build()
            .unwrap();
        let untouched = chain.clone().with_generated_workload(2, 5, 0.01, 7);
        assert_eq!(untouched, chain);
    }
}
