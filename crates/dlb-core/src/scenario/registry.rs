//! Bundled scenario specs: every figure of the paper's evaluation (§5),
//! expressed declaratively.
//!
//! The registry is the single source of truth the figure binaries, the
//! `scenario` runner and `bench_report` all draw from; adding a scenario here
//! (or shipping a JSON spec file) is how the evaluation grows new workloads.

use super::spec::{
    Axis, Metric, MixSpec, OpenSpec, Presentation, Reference, RowFmt, ScenarioSpec, TableStyle,
    WorkloadSpec,
};
use dlb_common::{DlbError, Result};
use dlb_exec::{ExecOptions, MixMode, MixPolicy, Strategy, TopologyEvent};
use dlb_traffic::ArrivalKind;

const DP: Strategy = Strategy::dynamic();
const FP: Strategy = Strategy::fixed(0.0);
const SP: Strategy = Strategy::synchronous();
const DIFFUSION: Strategy = Strategy::diffusion(1.0);
const THRESHOLD: Strategy = Strategy::threshold(2048.0, 256.0);

/// Every bundled scenario, in `all_figures` presentation order.
pub fn registry() -> Vec<ScenarioSpec> {
    vec![
        fig6(),
        fig7(),
        fig8(),
        fig9(),
        fig10(),
        chain53(),
        mix_contention(),
        mix_memory(),
        mix_cosim(),
        mix_cosim_placement(),
        mix_cosim_memory(),
        mix_failover(),
        mix_failover_frac(),
        open_poisson(),
        open_burst(),
        open_cache(),
        open_cache_skew(),
        strategy_tournament(),
        paper_base(),
    ]
}

/// Looks up a bundled scenario by name.
pub fn find(name: &str) -> Option<ScenarioSpec> {
    registry().into_iter().find(|s| s.name == name)
}

/// The names of the bundled scenarios, in registry order.
pub fn names() -> Vec<String> {
    registry().into_iter().map(|s| s.name).collect()
}

/// Exports the bundled scenario `name` as its normalized JSON spec text.
///
/// Every failure is a [`DlbError`] — an unknown name is
/// [`DlbError::NotFound`], a spec that does not validate (e.g. one using an
/// axis its workload does not support) surfaces the validation error — so
/// front ends like `scenario --export` report cleanly instead of panicking.
pub fn export(name: &str) -> Result<String> {
    let spec = find(name).ok_or_else(|| {
        DlbError::not_found(format!(
            "scenario {name:?} (registered: {})",
            names().join(", ")
        ))
    })?;
    spec.validate()?;
    Ok(spec.to_json())
}

fn table(row_header: &str, row_fmt: RowFmt, row_width: usize, cell_width: usize) -> TableStyle {
    TableStyle {
        row_header: row_header.to_string(),
        row_fmt,
        row_width,
        cell_width,
        headers: Vec::new(),
    }
}

/// Figure 6 — relative performance of SP, DP and FP on a single
/// shared-memory node, without data skew, for 16/32/64 processors (SP is the
/// reference).
pub fn fig6() -> ScenarioSpec {
    ScenarioSpec::builder("fig6")
        .title("Figure 6")
        .description("relative performance of SP, DP, FP (shared memory, no skew)")
        .machine(1, 16)
        .strategies([SP, DP, FP])
        .rows(Axis::ProcessorsPerNode, [16.0, 32.0, 64.0])
        .reference(Reference::SamePoint(SP))
        .metric(Metric::Relative)
        .presentation(Presentation::Table(table("procs", RowFmt::Int, 6, 8)))
        .notes(
            "paper: SP = 1.0 (best); DP within a few percent of SP; FP clearly worse,\n\
             and worse with fewer processors (discretization errors).",
        )
        .build()
        .expect("bundled fig6 spec is valid")
}

/// Figure 7 — impact of cost-model errors on Fixed Processing: relative
/// degradation versus error rate (0–30 %) for 8/16/32/64 processors. The
/// reference response time is SP's, as in the paper.
pub fn fig7() -> ScenarioSpec {
    ScenarioSpec::builder("fig7")
        .title("Figure 7")
        .description("impact of cost-model errors on FP (shared memory)")
        .machine(1, 8)
        .strategies([FP])
        .rows(Axis::ErrorRate, [0.0, 0.05, 0.10, 0.20, 0.30])
        .columns(Axis::ProcessorsPerNode, [8.0, 16.0, 32.0, 64.0])
        .reference(Reference::SamePoint(SP))
        .metric(Metric::Relative)
        .presentation(Presentation::Grid(table("error", RowFmt::Percent, 8, 8)))
        .notes(
            "paper: FP degrades as the error rate grows; with few processors the degradation\n\
             explodes past ~20% error, with many processors it grows more steadily.",
        )
        .build()
        .expect("bundled fig7 spec is valid")
}

/// Figure 8 — speed-up of SP, DP and FP on a single shared-memory node from
/// 1 to 64 processors (no skew).
pub fn fig8() -> ScenarioSpec {
    ScenarioSpec::builder("fig8")
        .title("Figure 8")
        .description("speed-up of SP, DP, FP (shared memory, no skew)")
        .machine(1, 1)
        .strategies([SP, DP, FP])
        .rows(Axis::ProcessorsPerNode, [1.0, 8.0, 16.0, 32.0, 48.0, 64.0])
        .reference(Reference::FirstRow)
        .metric(Metric::Speedup)
        .presentation(Presentation::Table(table("procs", RowFmt::Int, 6, 8)))
        .notes(
            "paper: SP and DP show near-linear speed-up to 32 processors and bend beyond\n\
             (memory-hierarchy overhead); FP stays clearly below both.",
        )
        .build()
        .expect("bundled fig8 spec is valid")
}

/// Figure 9 — impact of redistribution skew on Dynamic Processing with 64
/// processors: relative degradation versus Zipf factor 0 → 1 (reference is
/// the unskewed run).
pub fn fig9() -> ScenarioSpec {
    let style = TableStyle {
        headers: vec!["degradation".to_string()],
        ..table("skew", RowFmt::Fixed1, 6, 14)
    };
    ScenarioSpec::builder("fig9")
        .title("Figure 9")
        .description("impact of redistribution skew on DP (64 processors)")
        .machine(1, 64)
        .strategies([DP])
        .rows(Axis::Skew, [0.0, 0.2, 0.4, 0.6, 0.8, 1.0])
        .reference(Reference::FirstRow)
        .metric(Metric::Relative)
        .presentation(Presentation::Table(style))
        .notes(
            "paper: the impact of skew on DP is insignificant (well under 10% even at\n\
             skew factor 1), thanks to high fragmentation and shared activation queues.",
        )
        .build()
        .expect("bundled fig9 spec is valid")
}

/// Figure 10 — relative performance of DP versus FP on 4×8, 4×12 and 4×16
/// hierarchical configurations with redistribution skew 0.6 (DP is the
/// reference), plus the load-balancing traffic of each strategy.
pub fn fig10() -> ScenarioSpec {
    ScenarioSpec::builder("fig10")
        .title("Figure 10")
        .description("relative performance of FP and DP on hierarchical configurations (skew 0.6)")
        .machine(4, 8)
        .options(ExecOptions::with_skew(0.6))
        .strategies([DP, FP])
        .rows(Axis::ProcessorsPerNode, [8.0, 12.0, 16.0])
        .reference(Reference::SamePoint(DP))
        .metric(Metric::Relative)
        .presentation(Presentation::Balance(table(
            "config",
            RowFmt::NodesByProcs,
            8,
            8,
        )))
        .notes(
            "paper: FP is 14-39% slower than DP, its load-balancing traffic is 2-4x higher,\n\
             and its processor idle time is significant while DP's is almost null.",
        )
        .build()
        .expect("bundled fig10 spec is valid")
}

/// The §5.3 text experiment — a single maximum pipeline chain of five
/// operators on the 4×8 configuration with skew 0.8; the paper measured
/// roughly 9 MB of load-balancing traffic for FP versus 2.5 MB for DP.
pub fn chain53() -> ScenarioSpec {
    ScenarioSpec::builder("chain53")
        .title("§5.3 experiment")
        .description("5-operator pipeline chain")
        .machine(4, 8)
        .options(ExecOptions::with_skew(0.8))
        .workload(WorkloadSpec::Chain {
            relations: 5,
            build_rows: 20_000,
            probe_rows: 60_000,
        })
        .strategies([DP, FP])
        .rows(Axis::Skew, [0.8])
        .reference(Reference::SamePoint(DP))
        .metric(Metric::Relative)
        .presentation(Presentation::Chain)
        .build()
        .expect("bundled chain53 spec is valid")
}

/// Inter-query contention — DP versus FP as the number of concurrent
/// queries sharing the 4×8 machine grows, under load-aware placement with
/// mixed priorities and per-query skew profiles. The surveys motivating the
/// mix layer (Mandal & Pal; DynaHash) observe that strategy rankings shift
/// under concurrent competing workloads; this scenario measures exactly
/// that shift.
pub fn mix_contention() -> ScenarioSpec {
    ScenarioSpec::builder("mix-contention")
        .title("Mix contention")
        .description("DP vs FP under N concurrent queries (load-aware placement)")
        .machine(4, 8)
        .workload(WorkloadSpec::Mix(MixSpec {
            queries: 4,
            relations: 10,
            scale: 0.1,
            seed: 0xD1B_1996,
            arrival_gap_secs: 0.0,
            policy: MixPolicy::LoadAware,
            mode: MixMode::Composed,
            priorities: vec![2, 1],
            skews: vec![0.0, 0.3, 0.6, 0.9],
            topology: Vec::new(),
        }))
        .strategies([DP, FP])
        .rows(Axis::ConcurrentQueries, [2.0, 4.0, 6.0, 8.0])
        .reference(Reference::SamePoint(DP))
        .metric(Metric::Relative)
        .presentation(Presentation::Mix(table("queries", RowFmt::Int, 8, 8)))
        .notes(
            "expectation: FP's per-query disadvantage compounds as concurrency grows —\n\
             its longer solo times occupy the shared nodes longer, so every FP query\n\
             also waits longer behind the others.",
        )
        .build()
        .expect("bundled mix-contention spec is valid")
}

/// Inter-query memory admission — six simultaneous queries admitted FCFS
/// onto the whole 4×8 machine while the per-node memory limit shrinks: with
/// generous memory all queries share the machine at once, with tight memory
/// admission serializes them and response times stretch (the first row is
/// the generous-memory baseline).
pub fn mix_memory() -> ScenarioSpec {
    ScenarioSpec::builder("mix-memory")
        .title("Mix memory admission")
        .description("FCFS mix under a shrinking per-node memory limit")
        .machine(4, 8)
        .workload(WorkloadSpec::Mix(MixSpec {
            // Half scale: large enough working sets (a few hundred KB per
            // node and query) for MB-granular admission limits to bite.
            queries: 6,
            relations: 10,
            scale: 0.5,
            seed: 0xD1B_1996,
            arrival_gap_secs: 0.0,
            policy: MixPolicy::Fcfs,
            mode: MixMode::Composed,
            priorities: Vec::new(),
            skews: Vec::new(),
            topology: Vec::new(),
        }))
        .strategies([DP, FP])
        .rows(Axis::MemoryPerNode, [64.0, 8.0, 3.0, 2.0])
        .reference(Reference::FirstRow)
        .metric(Metric::Relative)
        .presentation(Presentation::Mix(table("mem MB", RowFmt::Int, 8, 8)))
        .notes(
            "expectation: 1.0 while every working set fits. Once the per-node limit\n\
             bites, admission waits appear (wait columns) — and partially serializing\n\
             the mix can even improve MEAN response versus full processor sharing,\n\
             while FP holds memory far longer than DP (its solo runs are slower).",
        )
        .build()
        .expect("bundled mix-memory spec is valid")
}

/// Inter-query co-simulation — the same contention question as
/// `mix-contention`, answered at full fidelity: 2→8 concurrent FCFS queries
/// are interleaved **inside one engine event loop** (query-tagged
/// activations, priority-aware local scheduling, steal decisions that see
/// cross-query load) instead of composing solo runs with the analytic
/// processor-sharing model. The rendering carries, per strategy, both the
/// co-simulated response times and the ratio against the composed model of
/// the *same* mix (`vs comp` columns), so the two fidelities are contrasted
/// row by row.
pub fn mix_cosim() -> ScenarioSpec {
    ScenarioSpec::builder("mix-cosim")
        .title("Mix co-simulation")
        .description("DP vs FP with N concurrent queries interleaved in one event loop")
        .machine(4, 8)
        .workload(WorkloadSpec::Mix(MixSpec {
            queries: 4,
            relations: 10,
            scale: 0.1,
            seed: 0xD1B_1996,
            arrival_gap_secs: 0.0,
            policy: MixPolicy::Fcfs,
            mode: MixMode::CoSimulated,
            priorities: vec![2, 1],
            skews: vec![0.0, 0.3, 0.6, 0.9],
            topology: Vec::new(),
        }))
        .strategies([DP, FP])
        .rows(Axis::ConcurrentQueries, [2.0, 4.0, 6.0, 8.0])
        .reference(Reference::SamePoint(DP))
        .metric(Metric::Relative)
        .presentation(Presentation::Mix(table("queries", RowFmt::Int, 8, 8)))
        .notes(
            "expectation: vs comp < 1 and falling with concurrency — composing solo runs\n\
             OVERestimates contention, because a solo run leaves processors idle (I/O,\n\
             pipeline stalls) that interleaved queries fill; meanwhile FP falls further\n\
             behind DP than the composed model predicts, its static thread allocations\n\
             colliding across queries where DP's shared queues absorb the mix.",
        )
        .build()
        .expect("bundled mix-cosim spec is valid")
}

/// Co-simulated pinning placements — the same concurrency sweep as
/// `mix-cosim`, but under **load-aware pinning**: each query is re-homed
/// onto one SM-node (its placement mask) inside the shared event loop, so
/// pinned queries really collide in their node's queues while other nodes
/// stay untouched. The `vs comp` columns contrast the co-simulation against
/// the analytic composition of the *same* placements, closing the
/// placement corner that was previously analytic-only (DynaHash studies
/// exactly this data-placement question for shared-nothing systems).
pub fn mix_cosim_placement() -> ScenarioSpec {
    ScenarioSpec::builder("mix-cosim-placement")
        .title("Mix co-sim placement")
        .description("DP vs FP with N queries pinned per node inside one event loop")
        .machine(4, 8)
        .workload(WorkloadSpec::Mix(MixSpec {
            queries: 4,
            relations: 10,
            scale: 0.1,
            seed: 0xD1B_1996,
            arrival_gap_secs: 0.0,
            policy: MixPolicy::LoadAware,
            mode: MixMode::CoSimulated,
            priorities: vec![2, 1],
            skews: vec![0.0, 0.3, 0.6, 0.9],
            topology: Vec::new(),
        }))
        .strategies([DP, FP])
        .rows(Axis::ConcurrentQueries, [2.0, 4.0, 6.0, 8.0])
        .reference(Reference::SamePoint(DP))
        .metric(Metric::Relative)
        .presentation(Presentation::Mix(table("queries", RowFmt::Int, 8, 8)))
        .notes(
            "expectation: pinning isolates queries while N <= nodes (vs comp ~ 1, no\n\
             cross-node interference to mis-model), then queries start sharing nodes and\n\
             the composed model drifts from the interleaved truth — idle-time filling\n\
             pushes vs comp below 1 exactly as in the whole-machine mix-cosim scenario.",
        )
        .build()
        .expect("bundled mix-cosim-placement spec is valid")
}

/// Co-simulated memory admission — the `mix-memory` question at full
/// fidelity: six simultaneous FCFS queries on the whole 4×8 machine while
/// the per-node memory limit shrinks, with admission running **inside** the
/// engine event loop (`QueryAdmit`/`QueryRelease` events, head-of-line FCFS
/// queueing against per-node free memory). The first row is the
/// generous-memory baseline; the `vs comp` columns show how far the
/// analytic admission model drifts from the simulated one once waits
/// appear.
pub fn mix_cosim_memory() -> ScenarioSpec {
    ScenarioSpec::builder("mix-cosim-memory")
        .title("Mix co-sim memory")
        .description("co-simulated FCFS admission under a shrinking per-node memory limit")
        .machine(4, 8)
        .workload(WorkloadSpec::Mix(MixSpec {
            // Half scale, like mix-memory: working sets of a few hundred KB
            // per node and query, so MB-granular admission limits bite.
            queries: 6,
            relations: 10,
            scale: 0.5,
            seed: 0xD1B_1996,
            arrival_gap_secs: 0.0,
            policy: MixPolicy::Fcfs,
            mode: MixMode::CoSimulated,
            priorities: Vec::new(),
            skews: Vec::new(),
            topology: Vec::new(),
        }))
        .strategies([DP, FP])
        .rows(Axis::MemoryPerNode, [64.0, 8.0, 3.0, 2.0])
        .reference(Reference::FirstRow)
        .metric(Metric::Relative)
        .presentation(Presentation::Mix(table("mem MB", RowFmt::Int, 8, 8)))
        .notes(
            "expectation: 1.0 while every working set fits. Once the limit bites, the\n\
             engine's in-loop admission produces real waits (wait columns) — smaller than\n\
             the composed model predicts, because interleaved queries finish (and release\n\
             memory) earlier than the analytic processor-sharing model assumes.",
        )
        .build()
        .expect("bundled mix-cosim-memory spec is valid")
}

/// Failover timing — a four-query co-simulated mix on the 4×8 machine while
/// node 3 crashes, swept over *when* the crash strikes (early, mid-build,
/// late). Cells carry the fault accounting and the fault-free contrast of
/// the same mix, so the rendering reports per-strategy response inflation
/// (`vs clean`), rebalance traffic and redone work. DP's shared activation
/// queues absorb the survivors' extra load; FP's static per-operator thread
/// allocations cannot, so the two strategies degrade differently.
pub fn mix_failover() -> ScenarioSpec {
    ScenarioSpec::builder("mix-failover")
        .title("Mix failover timing")
        .description("DP vs FP while node 3 crashes mid-mix, swept over the failure time")
        .machine(4, 8)
        .workload(WorkloadSpec::Mix(MixSpec {
            queries: 4,
            relations: 10,
            scale: 0.1,
            seed: 0xD1B_1996,
            arrival_gap_secs: 0.0,
            policy: MixPolicy::Fcfs,
            mode: MixMode::CoSimulated,
            priorities: vec![2, 1],
            skews: vec![0.0, 0.3, 0.6, 0.9],
            topology: vec![TopologyEvent::fail(0.15, 3)],
        }))
        .strategies([DP, FP])
        .rows(Axis::FailureTime, [0.05, 0.15, 0.4])
        .reference(Reference::SamePoint(DP))
        .metric(Metric::Relative)
        .presentation(Presentation::Mix(table("fail t", RowFmt::Fixed2, 8, 8)))
        .notes(
            "expectation: the earlier the crash, the more pending work is re-homed and\n\
             the larger the response inflation (vs clean); a crash after a query's\n\
             builds finish only re-homes probe activations. FP inflates more than DP —\n\
             its static allocations concentrate the dead node's share on fewer threads.",
        )
        .build()
        .expect("bundled mix-failover spec is valid")
}

/// Failover extent — the same co-simulated mix while 1, 2 or 3 of the 4
/// nodes crash simultaneously mid-run (the [`Axis::FailedNodes`] sweep
/// replaces the stream with that many failures at the base stream's event
/// time, highest node indices first). Degradation accounting shows the
/// rebalance traffic and response inflation growing with the failed
/// fraction, down to a single surviving node.
pub fn mix_failover_frac() -> ScenarioSpec {
    ScenarioSpec::builder("mix-failover-frac")
        .title("Mix failover extent")
        .description("DP vs FP while 1-3 of 4 nodes crash mid-mix")
        .machine(4, 8)
        .workload(WorkloadSpec::Mix(MixSpec {
            queries: 4,
            relations: 10,
            scale: 0.1,
            seed: 0xD1B_1996,
            arrival_gap_secs: 0.0,
            policy: MixPolicy::Fcfs,
            mode: MixMode::CoSimulated,
            priorities: vec![2, 1],
            skews: vec![0.0, 0.3, 0.6, 0.9],
            topology: vec![TopologyEvent::fail(0.15, 3)],
        }))
        .strategies([DP, FP])
        .rows(Axis::FailedNodes, [1.0, 2.0, 3.0])
        .reference(Reference::SamePoint(DP))
        .metric(Metric::Relative)
        .presentation(Presentation::Mix(table("failed", RowFmt::Int, 8, 8)))
        .notes(
            "expectation: rebalance traffic grows with the failed fraction — each crash\n\
             re-homes its queued activations and build state onto the shrinking survivor\n\
             set, and with 3 of 4 nodes down the whole mix serializes onto one node's\n\
             processors. Response inflation is noisier: re-homing reshapes the\n\
             interleaving, so individual points can even beat the clean run.",
        )
        .build()
        .expect("bundled mix-failover-frac spec is valid")
}

/// Open-system arrivals — DP versus FP on a 2×4 machine under a seeded
/// Poisson stream, swept over the offered arrival rate. Queries draw from a
/// small template pool, wait in the engine's FCFS admission queue for a lane
/// slot, and retire on completion; the rendering reports per-strategy
/// response percentiles (p50/p95/p99), mean admission wait, mean slowdown
/// against the solo baseline, and sustained throughput. As the offered rate
/// approaches saturation, queueing delay — not service time — dominates the
/// tail, and FP's longer service times push it into saturation first.
pub fn open_poisson() -> ScenarioSpec {
    ScenarioSpec::builder("open-poisson")
        .title("Open Poisson arrivals")
        .description("DP vs FP under a Poisson arrival stream, swept over the offered rate")
        .machine(2, 4)
        .workload(WorkloadSpec::Open(OpenSpec {
            kind: ArrivalKind::Poisson,
            rate_qps: 20.0,
            burstiness: 0.0,
            queries: 120,
            concurrency: 4,
            priority_classes: 1,
            templates: 3,
            relations: 8,
            scale: 0.05,
            seed: 0xD1B_1996,
            ..OpenSpec::default()
        }))
        .strategies([DP, FP])
        .rows(Axis::ArrivalRate, [10.0, 20.0, 40.0])
        .reference(Reference::SamePoint(DP))
        .metric(Metric::Relative)
        .presentation(Presentation::Open(table("rate", RowFmt::Fixed1, 8, 8)))
        .notes(
            "expectation: at low offered rates both strategies serve near their solo\n\
             times (slowdown ~ 1, waits ~ 0). As the rate climbs toward saturation the\n\
             admission queue builds, p95/p99 stretch far ahead of p50, and FP — whose\n\
             service times are longer — saturates earlier, inflating every percentile.",
        )
        .build()
        .expect("bundled open-poisson spec is valid")
}

/// Open-system burstiness — the same machine and template pool as
/// `open-poisson` at a fixed mean rate, swept over the burstiness of a
/// two-state MMPP arrival process (0 = Poisson, higher = longer and hotter
/// bursts at the same mean rate). Burstiness moves the tail percentiles
/// while the mean rate — and so the long-run utilization — stays fixed.
pub fn open_burst() -> ScenarioSpec {
    ScenarioSpec::builder("open-burst")
        .title("Open bursty arrivals")
        .description("DP vs FP under MMPP bursts at a fixed mean rate, swept over burstiness")
        .machine(2, 4)
        .workload(WorkloadSpec::Open(OpenSpec {
            kind: ArrivalKind::Bursty,
            rate_qps: 20.0,
            burstiness: 0.5,
            queries: 120,
            concurrency: 4,
            priority_classes: 1,
            templates: 3,
            relations: 8,
            scale: 0.05,
            seed: 0xD1B_1996,
            ..OpenSpec::default()
        }))
        .strategies([DP, FP])
        .rows(Axis::Burstiness, [0.0, 0.5, 0.8])
        .reference(Reference::SamePoint(DP))
        .metric(Metric::Relative)
        .presentation(Presentation::Open(table("burst", RowFmt::Fixed2, 8, 8)))
        .notes(
            "expectation: the mean rate is fixed, so mean-centric metrics move little —\n\
             the damage is in the tail. Bursts overrun the lane slots, queueing delay\n\
             concentrates inside burst windows, and p99 grows with burstiness while p50\n\
             barely moves; the burst queue punishes FP's longer service times hardest.",
        )
        .build()
        .expect("bundled open-burst spec is valid")
}

/// Open-system front end — the `open-poisson` machine and template pool with
/// a result cache and single-flight coalescing above the engine, swept over
/// the offered arrival rate. Repeats within the TTL window are answered from
/// the cache at the (small) fan-out cost, and concurrent identical arrivals
/// ride one engine execution as followers; the rendering adds the per-point
/// hit ratio and the effective-QPS multiplier (completed / engine queries).
pub fn open_cache() -> ScenarioSpec {
    ScenarioSpec::builder("open-cache")
        .title("Open front-end cache")
        .description("DP vs FP behind a result cache + coalescing, swept over the offered rate")
        .machine(2, 4)
        .workload(WorkloadSpec::Open(OpenSpec {
            kind: ArrivalKind::Poisson,
            rate_qps: 20.0,
            burstiness: 0.0,
            queries: 120,
            concurrency: 4,
            priority_classes: 1,
            templates: 3,
            relations: 8,
            scale: 0.05,
            seed: 0xD1B_1996,
            cache_capacity: 4,
            cache_ttl_secs: 0.8,
            coalesce: true,
            fanout_cost_secs: 0.002,
            ..OpenSpec::default()
        }))
        .strategies([DP, FP])
        .rows(Axis::ArrivalRate, [10.0, 20.0, 40.0])
        .reference(Reference::SamePoint(DP))
        .metric(Metric::Relative)
        .presentation(Presentation::Open(table("rate", RowFmt::Fixed1, 8, 8)))
        .notes(
            "expectation: with the template pool cached for most of each TTL window,\n\
             over half the stream is answered at the fan-out cost — p50 collapses to\n\
             milliseconds while p95/p99 stay engine-bound. The effective-QPS\n\
             multiplier grows with the offered rate (more arrivals share each engine\n\
             execution), so the engine sees a near-constant residual stream while\n\
             offered load quadruples, and FP's saturation point moves out with it.",
        )
        .build()
        .expect("bundled open-cache spec is valid")
}

/// Open-system hot-template skew — a single-entry cache with an unbounded
/// TTL over a larger template pool, swept over the probability that an
/// arrival targets the hot template 0. Skew concentrates arrivals on the one
/// cached template, so the hit ratio tracks the skew and the residual stream
/// the engine must execute shifts toward the cold templates — moving the
/// DP-vs-FP balance on what remains.
pub fn open_cache_skew() -> ScenarioSpec {
    ScenarioSpec::builder("open-cache-skew")
        .title("Open cache under template skew")
        .description("DP vs FP behind a hot-template cache, swept over template skew")
        .machine(2, 4)
        .workload(WorkloadSpec::Open(OpenSpec {
            kind: ArrivalKind::Poisson,
            rate_qps: 20.0,
            burstiness: 0.0,
            queries: 120,
            concurrency: 4,
            priority_classes: 1,
            templates: 6,
            relations: 8,
            scale: 0.05,
            seed: 0xD1B_1996,
            cache_capacity: 1,
            coalesce: true,
            fanout_cost_secs: 0.002,
            ..OpenSpec::default()
        }))
        .strategies([DP, FP])
        .rows(Axis::TemplateSkew, [0.0, 0.5, 0.9])
        .reference(Reference::SamePoint(DP))
        .metric(Metric::Relative)
        .presentation(Presentation::Open(table("t-skew", RowFmt::Fixed2, 8, 8)))
        .notes(
            "expectation: the single cache entry pins whichever template ran last, so\n\
             the hit ratio tracks the skew — the cold templates contend for the slot\n\
             at t-skew 0, while at 0.9 the hot template owns it and most of the\n\
             stream retires at the fan-out cost. The engine's residual work shifts\n\
             to the cold templates, and the DP-vs-FP ratio moves with the residual\n\
             mix rather than the offered one.",
        )
        .build()
        .expect("bundled open-cache-skew spec is valid")
}

/// Strategy tournament — every queue-based policy of the registered zoo side
/// by side on the paper's 4×8 machine, swept over redistribution skew, with
/// DP as the reference column. The error-rate dimension rides in the
/// strategy list as FP's two error realizations (`FP` / `FP@0.2` / `FP@0.5`),
/// so one table ranks the paper's strategies against the related-work
/// policies (Diffusion nearest-neighbour pulls, Threshold sender-initiated
/// pushes) under both dimensions the paper varies. SP is absent by
/// construction: it only defines itself on a single shared-memory node.
pub fn strategy_tournament() -> ScenarioSpec {
    ScenarioSpec::builder("strategy-tournament")
        .title("Strategy tournament")
        .description("the registered policy zoo ranked across skew, DP as reference")
        .machine(4, 8)
        .strategies([
            DP,
            FP,
            Strategy::fixed(0.2),
            Strategy::fixed(0.5),
            DIFFUSION,
            THRESHOLD,
        ])
        .rows(Axis::Skew, [0.0, 0.3, 0.6, 0.9])
        .reference(Reference::SamePoint(DP))
        .metric(Metric::Relative)
        .presentation(Presentation::Table(table("skew", RowFmt::Fixed1, 6, 10)))
        .notes(
            "expectation: DP = 1.0 by construction. FP trails and degrades with its\n\
             error rate; Diffusion tracks DP at low skew but pays for ring-limited\n\
             providers as skew concentrates load; Threshold's pushes help under heavy\n\
             skew but its passive receivers forgo DP's demand-driven steals.",
        )
        .build()
        .expect("bundled strategy-tournament spec is valid")
}

/// The paper's base hierarchical configuration (4×8, no skew), DP versus FP:
/// the default subject of `bench_report` and a template for user specs.
pub fn paper_base() -> ScenarioSpec {
    ScenarioSpec::builder("paper-base")
        .title("Paper base configuration")
        .description("DP vs FP on the paper's 4x8 hierarchical base system")
        .machine(4, 8)
        .strategies([DP, FP])
        .rows(Axis::Skew, [0.0])
        .reference(Reference::SamePoint(DP))
        .metric(Metric::Relative)
        .build()
        .expect("bundled paper-base spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_bundled_spec_validates_and_has_a_unique_name() {
        let specs = registry();
        assert!(specs.len() >= 7);
        let mut names: Vec<_> = specs.iter().map(|s| s.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "duplicate scenario names");
        for spec in &specs {
            spec.validate().unwrap();
        }
    }

    #[test]
    fn find_resolves_every_registered_name() {
        for name in names() {
            let spec = find(&name).unwrap();
            assert_eq!(spec.name, name);
        }
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn mix_scenarios_cover_the_new_axes() {
        assert_eq!(mix_contention().rows.axis, Axis::ConcurrentQueries);
        assert!(mix_contention().workload.is_mix());
        assert!(matches!(
            mix_contention().presentation,
            Presentation::Mix(_)
        ));
        assert_eq!(mix_memory().rows.axis, Axis::MemoryPerNode);
        assert!(mix_memory().workload.is_mix());
        // The co-simulated corner scenarios: pinning placements and memory
        // admission now run inside the event loop.
        let placement = mix_cosim_placement();
        let WorkloadSpec::Mix(mix) = &placement.workload else {
            panic!("mix-cosim-placement is a mix");
        };
        assert_eq!(mix.mode, MixMode::CoSimulated);
        assert_eq!(mix.policy, MixPolicy::LoadAware);
        let memory = mix_cosim_memory();
        assert_eq!(memory.rows.axis, Axis::MemoryPerNode);
        let WorkloadSpec::Mix(mix) = &memory.workload else {
            panic!("mix-cosim-memory is a mix");
        };
        assert_eq!(mix.mode, MixMode::CoSimulated);
        assert_eq!(mix.policy, MixPolicy::Fcfs);
    }

    #[test]
    fn open_scenarios_cover_the_arrival_axes() {
        let poisson = open_poisson();
        assert_eq!(poisson.rows.axis, Axis::ArrivalRate);
        assert!(poisson.workload.is_open());
        assert!(matches!(poisson.presentation, Presentation::Open(_)));
        let WorkloadSpec::Open(open) = &poisson.workload else {
            panic!("open-poisson is open");
        };
        assert_eq!(open.kind, ArrivalKind::Poisson);
        assert!(open.queries >= 100, "a meaningful arrival stream");
        let burst = open_burst();
        assert_eq!(burst.rows.axis, Axis::Burstiness);
        let WorkloadSpec::Open(open) = &burst.workload else {
            panic!("open-burst is open");
        };
        assert_eq!(open.kind, ArrivalKind::Bursty);
        // The arrival-axis scenarios keep the front end inert so their
        // golden captures stay on the historical engine path.
        for spec in [open_poisson(), open_burst()] {
            let WorkloadSpec::Open(open) = &spec.workload else {
                panic!("{} is open", spec.name);
            };
            assert!(!open.frontend().enabled(), "{} grew a front end", spec.name);
            assert_eq!(open.template_skew, 0.0);
        }
    }

    #[test]
    fn frontend_scenarios_cover_the_cache_and_skew_axes() {
        let cache = open_cache();
        assert_eq!(cache.rows.axis, Axis::ArrivalRate);
        let WorkloadSpec::Open(open) = &cache.workload else {
            panic!("open-cache is open");
        };
        assert!(open.frontend().enabled());
        assert!(
            open.cache_capacity >= open.templates,
            "cache holds the pool"
        );
        assert!(open.cache_ttl_secs.is_finite(), "hit ratio is rate-driven");
        assert!(open.coalesce);
        let skew = open_cache_skew();
        assert_eq!(skew.rows.axis, Axis::TemplateSkew);
        let WorkloadSpec::Open(open) = &skew.workload else {
            panic!("open-cache-skew is open");
        };
        assert_eq!(open.cache_capacity, 1, "one slot pins the hot template");
        assert_eq!(open.cache_ttl_secs, f64::INFINITY);
        assert!(open.templates > 3, "cold templates outnumber the cache");
    }

    #[test]
    fn export_returns_errors_instead_of_panicking() {
        assert!(export("fig6").is_ok());
        let err = export("no-such-scenario").unwrap_err();
        assert!(matches!(err, DlbError::NotFound(_)), "{err}");
        assert!(err.to_string().contains("registered"));
    }

    #[test]
    fn figures_cover_the_papers_axes() {
        assert_eq!(fig6().rows.axis, Axis::ProcessorsPerNode);
        assert_eq!(fig7().rows.axis, Axis::ErrorRate);
        assert_eq!(
            fig7().columns.as_ref().unwrap().axis,
            Axis::ProcessorsPerNode
        );
        assert_eq!(fig8().metric, Metric::Speedup);
        assert_eq!(fig9().rows.axis, Axis::Skew);
        assert_eq!(fig10().machine.nodes, 4);
        assert!(matches!(chain53().workload, WorkloadSpec::Chain { .. }));
    }
}
